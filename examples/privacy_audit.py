"""Auditing the w-event ε-LDP guarantee end to end.

Privacy claims deserve verification, not trust.  This example:

1. runs RetraSyn and prints the ledger: per-user spends, the maximum
   any-window total, and the formal verdict;
2. demonstrates the *mechanism-level* guarantee empirically — two users at
   different locations produce statistically indistinguishable OUE reports
   (likelihood ratio bounded by e^ε);
3. shows the accountant *rejecting* a protocol that would overspend.

Run:  python examples/privacy_audit.py
"""

import numpy as np

from repro import RetraSyn, RetraSynConfig, load_dataset
from repro.exceptions import PrivacyBudgetError
from repro.ldp.accountant import PrivacyAccountant
from repro.ldp.oue import OptimizedUnaryEncoding

EPSILON = 1.0
W = 10


def ledger_audit() -> None:
    data = load_dataset("tdrive", scale=0.03, seed=0)
    run = RetraSyn(RetraSynConfig(epsilon=EPSILON, w=W, seed=0)).run(data)
    acc = run.accountant
    print("== 1. ledger audit ==")
    print(f"guarantee: any {W} consecutive timestamps, total spend <= {EPSILON}")
    print(f"audit: {acc.summary()}")
    spends = [acc.total_spend(u) for u in range(len(data))]
    print(f"lifetime spend per user: mean {np.mean(spends):.3f}, "
          f"max {np.max(spends):.3f} "
          f"(lifetime exceeding eps is fine — the bound is per window)")
    assert acc.verify()


def mechanism_indistinguishability() -> None:
    print("\n== 2. mechanism-level indistinguishability ==")
    d = 32
    trials = 200_000
    # User A holds value 3, user B holds value 17. For any single output
    # bit, the probability ratio must be bounded by e^eps.
    oue_a = OptimizedUnaryEncoding(d, EPSILON, rng=1, mode="exact")
    oue_b = OptimizedUnaryEncoding(d, EPSILON, rng=2, mode="exact")
    reports_a = oue_a.perturb_many([3] * trials)
    reports_b = oue_b.perturb_many([17] * trials)
    worst = 0.0
    for bit in (3, 17):
        pa = reports_a[:, bit].mean()
        pb = reports_b[:, bit].mean()
        ratio = max(pa / pb, pb / pa)
        worst = max(worst, ratio)
        print(f"  Pr[bit {bit:2d} = 1]: user A {pa:.4f}, user B {pb:.4f} "
              f"(ratio {ratio:.3f})")
    print(f"  worst per-bit ratio {worst:.3f} <= e^eps = {np.exp(EPSILON):.3f}")
    assert worst <= np.exp(EPSILON) * 1.05  # sampling slack


def overspend_rejected() -> None:
    print("\n== 3. overspending is rejected, not logged ==")
    acc = PrivacyAccountant(epsilon=EPSILON, w=W)
    acc.spend(user_id=0, timestamp=5, epsilon=0.7)
    print(f"  user 0 spent 0.7 at t=5; window total {acc.window_spend(0, 5):.1f}")
    try:
        acc.spend(user_id=0, timestamp=9, epsilon=0.5)
    except PrivacyBudgetError as exc:
        print(f"  second spend raised PrivacyBudgetError: {exc}")
    else:
        raise AssertionError("overspend was not rejected!")


def main() -> None:
    ledger_audit()
    mechanism_indistinguishability()
    overspend_rejected()
    print("\nall audits passed.")


if __name__ == "__main__":
    main()
