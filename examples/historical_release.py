"""Publishing a historical trajectory database as a safe substitute.

Beyond streaming analytics, the accumulated synthetic database doubles as a
one-time historical release (paper Section V-B, "Historical Metrics"): an
analyst receives the synthetic trajectories, never the real ones, and can
study trip patterns, travel distances and location popularity.

This example synthesizes a T-Drive-like week of taxi trips, saves the
release to disk, reloads it as an independent analyst would, and reproduces
the paper's three trajectory-level analyses.

Run:  python examples/historical_release.py
"""

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import RetraSyn, RetraSynConfig, load_dataset
from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.metrics.kendall import kendall_tau
from repro.metrics.length import length_error, travel_distances
from repro.metrics.trip import trip_distribution, trip_error


def main() -> None:
    data = load_dataset("tdrive", scale=0.05, seed=0)
    run = RetraSyn(RetraSynConfig(epsilon=1.0, w=20, seed=0)).run(data)
    assert run.accountant.verify()

    # --- the curator publishes only the synthetic file ----------------- #
    out_dir = Path(tempfile.mkdtemp())
    release_path = out_dir / "tdrive_synthetic_release.npz"
    save_stream_dataset(run.synthetic, release_path)
    print(f"released synthetic database -> {release_path}")

    # --- the analyst loads the release; raw data never leaves users ---- #
    release = load_stream_dataset(release_path)
    print(f"analyst loaded {len(release)} synthetic trajectories\n")

    print("trajectory-level fidelity (synthetic vs real):")
    print(f"  kendall-tau popularity    {kendall_tau(data, release):7.4f}  (1 = perfect)")
    print(f"  trip (OD) error           {trip_error(data, release):7.4f}  (0 = perfect)")
    print(f"  travel-length error       {length_error(data, release):7.4f}  (0 = perfect)")

    # --- example analysis 1: most common trips ------------------------- #
    real_trips = trip_distribution(data)
    syn_trips = trip_distribution(release)
    print("\ntop-5 origin->destination trips:")
    print(f"  {'real':>24s}    {'synthetic':>24s}")
    for (rt, rc), (st, sc) in zip(
        real_trips.most_common(5), syn_trips.most_common(5)
    ):
        print(f"  {str(rt):>18s} x{rc:<5d} {str(st):>18s} x{sc:<5d}")

    # --- example analysis 2: travel-distance profile ------------------- #
    real_d = travel_distances(data)
    syn_d = travel_distances(release)
    print("\ntravel-distance quantiles (degrees):")
    for q in (0.25, 0.5, 0.9):
        print(f"  p{int(q*100):<3d} real {np.quantile(real_d, q):.4f}"
              f"   synthetic {np.quantile(syn_d, q):.4f}")

    # --- example analysis 3: visit share of the busiest cells ---------- #
    real_pop = data.cell_counts_matrix().sum(axis=0)
    syn_pop = release.cell_counts_matrix().sum(axis=0)
    order = np.argsort(real_pop)[::-1][:5]
    print("\nvisit share of the five busiest real cells:")
    for c in order:
        print(f"  cell {c:3d}  real {real_pop[c] / real_pop.sum():6.2%}"
              f"   synthetic {syn_pop[c] / syn_pop.sum():6.2%}")


if __name__ == "__main__":
    main()
