"""Scaling the collection path: batched OUE and the sharded curator.

The synthesis half of the pipeline was vectorized first
(`VectorizedSynthesizer`); this example exercises the matching collection
engines:

* ``oracle_mode="exact"`` perturbs all reports as one Bernoulli batch per
  timestamp (the literal protocol, minus the per-user Python loop);
* ``RetraSynConfig(n_shards=K)`` hash-partitions users across K independent
  collection shards whose aggregated counts merge before the global
  mobility model is built — ``shard_executor="process"`` runs each shard
  in its own worker process;
* ``engine="vectorized"`` with ``compile_mode="incremental"`` runs the
  columnar synthesis plane: DMU-dirtied model rows recompile in place and
  streams live in the struct-of-arrays ``TrajectoryStore``
  (``synthesis_shards=K`` additionally spreads generation over K threads
  on multi-core hosts).

The privacy ledger is verified for every engine: sharding never lets a
user double-spend inside a w-window, because each user lives in exactly
one shard.

Run:  python examples/sharded_scale.py
"""

import time

from repro import RetraSyn, RetraSynConfig, load_dataset
from repro.metrics.density import density_error


def main() -> None:
    data = load_dataset("oldenburg", scale=0.03, seed=0)
    print(f"stream: {len(data)} users, {data.n_timestamps} timestamps\n")
    print(f"{'engine':<34} {'user_side s/t':>13} {'density':>8} {'audit':>6}")

    engines = [
        ("exact-loop (per-user reference)", dict(oracle_mode="exact-loop")),
        ("exact (batched)", dict(oracle_mode="exact")),
        ("exact + 4 shards", dict(oracle_mode="exact", n_shards=4)),
        (
            "exact + 4 shards, process exec",
            dict(oracle_mode="exact", n_shards=4, shard_executor="process"),
        ),
        (
            "exact + incremental synthesis",
            dict(
                oracle_mode="exact", engine="vectorized",
                compile_mode="incremental",
            ),
        ),
    ]
    for label, overrides in engines:
        cfg = RetraSynConfig(epsilon=1.0, w=10, seed=0, **overrides)
        tic = time.perf_counter()
        run = RetraSyn(cfg).run(data)
        elapsed = time.perf_counter() - tic
        assert run.accountant.verify(), label
        print(
            f"{label:<34} "
            f"{run.timings['user_side'] / data.n_timestamps:>13.6f} "
            f"{density_error(data, run.synthetic):>8.4f} "
            f"{'ok':>6}   (total {elapsed:.2f}s)"
        )

    print(
        "\nAll engines satisfy the same w-event epsilon-LDP ledger; pick by "
        "population size:\n  fast mode for simulation, batched exact for "
        "protocol-faithful cost models,\n  shards once a single core no "
        "longer keeps up with the report volume."
    )


if __name__ == "__main__":
    main()
