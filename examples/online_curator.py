"""Driving RetraSyn as a live curator, one timestamp at a time.

The batch `RetraSyn.run(...)` API is convenient for experiments, but a real
deployment receives location reports as wall-clock time advances.  This
example simulates that loop with `OnlineRetraSyn`:

* every "minute" the curator receives the transition states of users who
  are able to report;
* the allocation strategy privately samples reporters, the DMU mechanism
  refreshes the mobility model, and the synthetic database advances;
* the curator publishes a *live snapshot* (current synthetic positions)
  immediately — the real-time release the paper is about;
* halfway through we also publish an intermediate historical release.

Run:  python examples/online_curator.py
"""

import numpy as np

from repro.core.online import OnlineRetraSyn
from repro.core.retrasyn import RetraSynConfig
from repro.datasets.registry import load_dataset
from repro.metrics.density import density_error
from repro.metrics.divergence import jensen_shannon_divergence


def main() -> None:
    data = load_dataset("tdrive", scale=0.04, seed=0)
    avg_len = data.stats()["average_length"]
    print(f"simulating a live feed of {len(data)} streams, "
          f"{data.n_timestamps} timestamps\n")

    curator = OnlineRetraSyn(
        data.grid,
        RetraSynConfig(epsilon=1.0, w=10, seed=0),
        lam=avg_len,
    )

    print(f"{'t':>4} {'reporters':>9} {'eps_t':>7} {'signif.':>8} "
          f"{'live_syn':>8} {'live_real':>9} {'snapshot JSD':>12}")
    for t in range(data.n_timestamps):
        step = curator.process_timestep(
            t,
            participants=data.participants_at(t),
            newly_entered=data.newly_entered_at(t),
            quitted=data.quitted_at(t),
            n_real_active=data.n_active_at(t),
        )
        # The published real-time artefact: current synthetic positions.
        if t % 5 == 0:
            snapshot = curator.live_snapshot()
            syn_hist = np.bincount(snapshot, minlength=data.grid.n_cells)
            real_hist = np.bincount(
                data.cells_at(t), minlength=data.grid.n_cells
            )
            jsd = jensen_shannon_divergence(real_hist, syn_hist)
            print(f"{t:>4} {step.n_reporters:>9} {step.epsilon_used:>7.3f} "
                  f"{step.n_significant:>8} {step.n_live_synthetic:>8} "
                  f"{data.n_active_at(t):>9} {jsd:>12.4f}")

        # An intermediate historical release, published mid-stream.
        if t == data.n_timestamps // 2:
            partial = curator.synthetic_dataset(t + 1, name="mid-release")
            print(f"\n  >> mid-stream release at t={t}: "
                  f"{len(partial)} synthetic streams, density error "
                  f"{density_error(data, partial, timestamps=range(t + 1)):.4f}\n")

    assert curator.accountant.verify()
    print(f"\nfinal privacy audit: {curator.accountant.summary()}")


if __name__ == "__main__":
    main()
