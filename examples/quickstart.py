"""Quickstart: private real-time trajectory synthesis in ~20 lines.

Generates a T-Drive-like taxi stream, runs RetraSyn under w-event ε-LDP,
verifies the privacy guarantee, and scores the synthetic database on all
eight utility metrics of the paper.

Run:  python examples/quickstart.py
"""

from repro import RetraSyn, RetraSynConfig, evaluate_all, load_dataset
from repro.metrics.registry import HIGHER_IS_BETTER


def main() -> None:
    # 1. A trajectory stream: taxis reporting their location every 10 min.
    data = load_dataset("tdrive", scale=0.05, seed=0)
    print(f"dataset: {data.stats()}")

    # 2. Synthesize privately: population division, adaptive allocation.
    config = RetraSynConfig(epsilon=1.0, w=20, division="population", seed=0)
    run = RetraSyn(config).run(data)

    # 3. The privacy ledger proves every user satisfied w-event eps-LDP.
    print(f"\nprivacy audit: {run.accountant.summary()}")

    # 4. The synthetic database is a drop-in substitute for the raw stream.
    syn = run.synthetic
    print(f"synthetic DB: {len(syn)} streams, {syn.n_timestamps} timestamps")

    # 5. Score it on the paper's eight metrics.
    print("\nutility (vs the raw stream):")
    for name, value in evaluate_all(data, syn, phi=10, rng=0).items():
        direction = "higher=better" if name in HIGHER_IS_BETTER else "lower=better"
        print(f"  {name:18s} {value:8.4f}   ({direction})")


if __name__ == "__main__":
    main()
