"""How the adaptive allocator reacts to a distribution shift.

Section III-E motivates data-dependent allocation: when mobility patterns
change abruptly (rush hour starts, an incident reroutes traffic), more
budget/users should be spent; when the stream is steady, approximation is
nearly free.  This example builds a stream whose dominant flow *reverses*
half-way through and compares Adaptive, Uniform, and Sample population
allocation — including the per-timestamp reporter counts that show Adaptive
spiking right after the shift.

Run:  python examples/allocation_strategies.py
"""

import numpy as np

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.synthetic import make_two_hotspot_stream
from repro.metrics.registry import evaluate_all

SHIFT_AT = 40


def sparkline(values, width=60) -> str:
    """Tiny text chart of a series."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if arr.size > width:
        # Average-pool into `width` buckets.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([arr[a:b].mean() if b > a else 0.0
                          for a, b in zip(edges[:-1], edges[1:])])
    hi = arr.max() or 1.0
    return "".join(blocks[int(v / hi * (len(blocks) - 1))] for v in arr)


def main() -> None:
    data = make_two_hotspot_stream(
        k=6, n_streams=2500, n_timestamps=80, shift_at=SHIFT_AT, seed=0
    )
    print(f"stream with a flow reversal at t={SHIFT_AT}: {data.stats()}\n")

    results = {}
    for allocator in ("adaptive", "uniform", "sample"):
        cfg = RetraSynConfig(epsilon=1.0, w=10, allocator=allocator, seed=0)
        run = RetraSyn(cfg).run(data)
        scores = evaluate_all(
            data, run.synthetic, phi=10,
            metrics=("transition_error", "query_error", "kendall_tau"), rng=0,
        )
        results[allocator] = (run, scores)

    print("reporters sampled per timestamp (watch the post-shift spike):")
    for allocator, (run, _s) in results.items():
        print(f"  {allocator:9s} |{sparkline(run.reporters_per_timestamp)}|")

    print(f"\n{'allocator':9s} {'transition_err':>14s} {'query_err':>10s} "
          f"{'kendall_tau':>12s}")
    for allocator, (_run, s) in results.items():
        print(f"{allocator:9s} {s['transition_error']:14.4f} "
              f"{s['query_error']:10.4f} {s['kendall_tau']:12.4f}")

    adaptive_run = results["adaptive"][0]
    before = np.mean(adaptive_run.reporters_per_timestamp[5:SHIFT_AT])
    after = np.mean(
        adaptive_run.reporters_per_timestamp[SHIFT_AT:SHIFT_AT + 10]
    )
    print(f"\nadaptive reporters/t: {before:.1f} before the shift, "
          f"{after:.1f} in the 10 steps after")


if __name__ == "__main__":
    main()
