"""The curator as a service: async ingestion, backpressure, resume.

`repro run` hands the curator a finished dataset; a deployment receives
reports one at a time, out of order, and must keep up. This example
replays a dataset through the async ingestion front-end
(`repro.stream.ingest` / `repro.serve`) three ways:

1. in-order replay — the baseline service loop;
2. shuffled arrival within a 2-timestamp reorder window — the watermark
   closes timestamps only when they are safe, and the assembler's
   canonical row order makes the synthetic output *identical* to run 1;
3. interrupted + resumed — the service checkpoints every 5 timestamps,
   is killed halfway, and a fresh process resumes from the checkpoint,
   finishing with the same synthetic stream bit for bit.

Run:  python examples/streaming_service.py
"""

import tempfile
from pathlib import Path

from repro import RetraSynConfig, load_dataset
from repro.serve import ServeSettings, serve_dataset


def fingerprint(run) -> list:
    return [(t.start_time, list(t.cells)) for t in run.synthetic.trajectories]


def main() -> None:
    data = load_dataset("oldenburg", scale=0.02, seed=0)
    print(f"stream: {len(data)} users, {data.n_timestamps} timestamps\n")
    cfg = RetraSynConfig(
        epsilon=1.0, w=10, n_shards=2, engine="vectorized", seed=0
    )

    # 1. plain in-order service replay
    in_order = serve_dataset(data, ServeSettings(config=cfg, queue_size=512))
    s = in_order.stats
    print(
        f"in-order : {s.n_timestamps} timestamps, {s.n_submitted} reports, "
        f"{s.backpressure_waits} backpressure waits"
    )

    # 2. out-of-order arrival within the watermark window
    shuffled = serve_dataset(
        data,
        ServeSettings(
            config=cfg, queue_size=512, max_lateness=2, shuffle=True
        ),
    )
    same = fingerprint(shuffled.run) == fingerprint(in_order.run)
    print(
        f"shuffled : {shuffled.stats.n_late_dropped} late drops, "
        f"identical synthetic stream: {same}"
    )
    assert same, "watermark reordering must not change the output"

    # 3. checkpoint halfway, resume in a "fresh process"
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "curator.ckpt")
        serve_dataset(
            data,
            ServeSettings(
                config=cfg, checkpoint_path=ckpt, checkpoint_every=5
            ),
        )
        resumed = serve_dataset(
            data,
            ServeSettings(config=cfg, checkpoint_path=ckpt, resume=True),
        )
        print(
            f"resumed  : from t={resumed.resumed_from_t}, audit "
            f"{'ok' if resumed.run.accountant.verify() else 'VIOLATED'}"
        )

    print("\nall three service modes agree with the batch pipeline semantics")


if __name__ == "__main__":
    main()
