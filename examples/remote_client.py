"""Remote curation over the versioned HTTP ingress.

A deployment runs the curator behind `repro serve --http PORT`; report
producers anywhere on the network drive it with `repro.api.Client`,
speaking the versioned wire schema (arrays travel in the columnar
`ReportBatch` format, base64-encoded — no pickle on the wire).

This example boots the ingress in-process (a background thread running
the same `HttpIngress` the CLI uses), replays a dataset through a
`Client`, and verifies the remote synthetic stream is *bit-identical*
to an equivalent in-process run — the property that makes local and
remote deployments interchangeable.

Run:  python examples/remote_client.py
"""

import asyncio
import threading

from repro import Client, SessionSpec, load_dataset
from repro.api.http import HttpIngress
from repro.api.session import create_session
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace


def start_server(session) -> HttpIngress:
    """The ingress on a daemon thread; returns once the socket is bound."""
    ingress = HttpIngress(session)  # port 0 = ephemeral
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await ingress.start()
            ready.set()
            await ingress.serve_until_shutdown()

        asyncio.run(main())

    threading.Thread(target=run, daemon=True).start()
    ready.wait(10)
    return ingress


def main() -> None:
    data = load_dataset("oldenburg", scale=0.02, seed=0)
    lam = max(1.0, average_length(data.trajectories))
    print(f"stream: {len(data)} users, {data.n_timestamps} timestamps")

    spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0, transport="ingest")
    ingress = start_server(create_session(spec, data.grid, lam=lam))
    print(f"ingress listening on http://{ingress.host}:{ingress.port}\n")

    # --- the remote side: everything below only talks HTTP ------------- #
    client = Client(ingress.host, ingress.port)
    hello = client.hello()
    print(f"negotiated schema v{hello['schema']}, method {hello['label']}")

    space = TransitionStateSpace(
        client.grid(), include_entering_quitting=hello["include_eq"]
    )
    view = ColumnarStreamView(data, space)
    for t in range(data.n_timestamps):
        client.submit_batch(
            t,
            view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )
        if t % 10 == 0:
            print(f"t={t:3d}  live synthetic streams: {client.snapshot().size}")

    client.close()
    remote = client.result()
    stats = client.stats()
    print(f"\nserver processed {stats['n_timestamps']} timestamps, "
          f"audit satisfied: {stats['privacy']['satisfied']}")
    client.shutdown_server()

    # --- the proof: remote == equivalent in-process session, bit for bit #
    local = create_session(spec, data.grid, lam=lam)
    local_view = ColumnarStreamView(data, local.curator.space)
    for t in range(data.n_timestamps):
        local.submit_batch(
            t,
            local_view.batch_at(t),
            newly_entered=local_view.newly_entered_at(t),
            quitted=local_view.quitted_at(t),
            n_real_active=local_view.n_active_at(t),
        )
        local.advance()
    local.close()
    local_run = local.result(data.n_timestamps)
    identical = [(t.start_time, list(t.cells)) for t in remote] == [
        (t.start_time, list(t.cells)) for t in local_run.synthetic
    ]
    print(f"remote synthetic == in-process session synthetic: {identical}")
    assert identical


if __name__ == "__main__":
    main()
