"""Real-time traffic monitoring on privately synthesized streams.

The paper's motivating application (Section I): a traffic authority wants
live congestion statistics from vehicle streams, but the vehicles will not
share raw locations.  RetraSyn maintains a synthetic database whose density
tracks the real stream; all monitoring queries run on the synthetic data at
zero extra privacy cost (post-processing).

This example:
1. streams an Oldenburg-style road-network dataset through RetraSyn;
2. at every 10th timestamp, finds the top-3 busiest cells ("congestion
   hotspots") in the synthetic database and compares them with the truth;
3. answers a fixed spatial range query ("vehicles currently downtown")
   over time and reports the tracking error.

Run:  python examples/traffic_monitoring.py
"""

import numpy as np

from repro import RetraSyn, RetraSynConfig, load_dataset
from repro.geo.point import BoundingBox
from repro.viz import density_heatmap, side_by_side


def top_cells(counts: np.ndarray, n: int = 3) -> list[int]:
    return np.argsort(counts)[::-1][:n].tolist()


def main() -> None:
    data = load_dataset("oldenburg", scale=0.03, seed=0)
    print(f"monitoring {data.stats()['size']} vehicle streams "
          f"over {data.n_timestamps} timestamps")

    run = RetraSyn(RetraSynConfig(epsilon=1.0, w=10, seed=0)).run(data)
    syn = run.synthetic
    assert run.accountant.verify(), "privacy guarantee violated!"

    real_counts = data.cell_counts_matrix()
    syn_counts = syn.cell_counts_matrix()

    # --- a live density snapshot, real vs synthetic -------------------- #
    t_view = data.n_timestamps // 2
    print(f"\ndensity at t={t_view} (left: real, right: synthetic):")
    print(side_by_side(
        density_heatmap(data.grid, real_counts[t_view]),
        density_heatmap(data.grid, syn_counts[t_view]),
    ))

    # --- live hotspot detection -------------------------------------- #
    print("\nlive congestion hotspots (synthetic vs real, every 10th t):")
    hits = total = 0
    for t in range(0, data.n_timestamps, 10):
        if real_counts[t].sum() == 0:
            continue
        real_top = top_cells(real_counts[t])
        syn_top = top_cells(syn_counts[t])
        overlap = len(set(real_top) & set(syn_top))
        hits += overlap
        total += 3
        print(f"  t={t:4d}  real top-3 {real_top}  synthetic top-3 {syn_top}"
              f"  overlap {overlap}/3")
    print(f"hotspot hit rate: {hits}/{total} = {hits / max(1, total):.0%}")

    # --- downtown occupancy tracking ---------------------------------- #
    bbox = data.grid.bbox
    downtown = BoundingBox(
        bbox.min_x + 0.35 * bbox.width,
        bbox.min_y + 0.35 * bbox.height,
        bbox.min_x + 0.65 * bbox.width,
        bbox.min_y + 0.65 * bbox.height,
    )
    cells = np.asarray(data.grid.cells_in_region(downtown))
    real_series = real_counts[:, cells].sum(axis=1)
    syn_series = syn_counts[:, cells].sum(axis=1)
    mask = real_series > 0
    rel_err = np.abs(real_series[mask] - syn_series[mask]) / real_series[mask]
    print(f"\ndowntown occupancy tracking over {mask.sum()} timestamps:")
    print(f"  mean relative error  {rel_err.mean():.3f}")
    print(f"  p90 relative error   {np.quantile(rel_err, 0.9):.3f}")


if __name__ == "__main__":
    main()
