"""Saturating load through the serve/HTTP ingress (ISSUE 6 acceptance).

One shared synthetic workload — hundreds of thousands of users emitting
enter/move/quit reports over a fixed horizon — is replayed against every
system boundary the curator exposes:

* ``inproc``     — straight into an ``IngestSession`` (no transport);
* ``http_v1``    — HTTP ingress, JSON v1 reference encoding;
* ``http_v2``    — HTTP ingress, binary frames + pipelining;
* ``ingest_v*``  — same two encodings with closes deferred, isolating
  the transport plane from the (shared) synthesis cost;
* ``subprocess`` — a real ``repro serve --http`` server process.

Gates at full scale (100k users):

* binary frames >= 2x JSON v1 sustained reports/sec on the transport
  plane (``binary_speedup_vs_json_v1``);
* every boundary's synthetic output bit-identical to the in-process
  reference (``remote_bit_identical``).

``--quick`` shrinks to 5k users and only requires bit-identical replay
(the CI ``serve-load-smoke`` gate).  The measured numbers are persisted
machine-readable as ``results/BENCH_serve.json``.
"""

from _util import run_once

from repro.bench.load import format_bench_serve, run_bench_serve


def test_serve_load(benchmark, quick_mode, save_artifact, save_json_artifact):
    out = run_once(benchmark, run_bench_serve, quick=quick_mode)

    save_artifact("serve_load", "\n".join(format_bench_serve(out)))
    save_json_artifact("BENCH_serve", out)

    assert out["remote_bit_identical"], out
    expected = {"inproc", "http_v1", "http_v2", "ingest_v1", "ingest_v2",
                "subprocess"}
    assert set(out["results"]) == expected, out
    if not quick_mode:
        assert out["binary_speedup_vs_json_v1"] >= 2.0, out
