"""Distributed shard plane throughput (ISSUE 7 acceptance).

Runs the same deterministic collection workload through all three shard
executors — ``serial`` (in-process), ``process`` (pipe pool), and
``distributed`` (socket-framed worker services with shard-local privacy
accountants) — at K∈{1,4}, plus the thread-vs-process synthesis slab
sweep, and persists ``results/BENCH_distributed.json``.

Gates:

* every executor's full-pipeline output bit-identical to serial, always;
* the synthesis process executor bit-identical to the thread path, always;
* every pipelining depth (``round_batch`` ∈ {1,4,8}) bit-identical to the
  per-timestamp protocol on the distributed executor, always;
* distributed >= 1.5x the in-process pool's collection-round throughput
  at K=4 / n=100k — enforced only on a multi-core host at full scale
  (single-core CI serializes the workers, so the ratio is report-only,
  mirroring the payload's own ``gate.enforced`` flag);
* fused rounds (depth >= 4) >= 2x the depth-1 round throughput on the
  small-batch distributed workload — same multi-core/full-scale
  enforcement policy, mirroring ``pipeline.gate.enforced``.
"""

import os

from _util import run_once

from repro.bench.distributed import (
    REQUIRED_PIPELINE_SPEEDUP,
    REQUIRED_SPEEDUP,
    format_bench_distributed,
    run_bench_distributed,
)


def test_distributed_shard_plane(
    benchmark, quick_mode, save_artifact, save_json_artifact
):
    out = run_once(benchmark, run_bench_distributed, quick=quick_mode)

    save_artifact("distributed", "\n".join(format_bench_distributed(out)))
    save_json_artifact("BENCH_distributed", out)

    assert out["bit_identical"], out
    assert out["synthesis"]["bit_identical"], out
    assert out["pipeline"]["bit_identical"], out
    assert set(out["collection"]) == {"K1", "K4"}, out
    depths = out["pipeline"]["round_batches"]
    assert 1 in depths and any(d >= 4 for d in depths), out
    if (os.cpu_count() or 1) > 1 and not quick_mode:
        assert out["gate"]["enforced"], out
        assert (
            out["gate"]["measured"] >= REQUIRED_SPEEDUP
        ), format_bench_distributed(out)
        assert out["pipeline"]["gate"]["enforced"], out
        assert (
            out["pipeline"]["gate"]["measured"] >= REQUIRED_PIPELINE_SPEEDUP
        ), format_bench_distributed(out)
