"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
laptop-friendly scale, measures its wall-clock with pytest-benchmark, prints
the formatted artefact, and writes it to ``benchmarks/results/``.

Scale is controlled by the REPRO_BENCH_SCALE environment variable
(default 0.02; the paper-shape results in EXPERIMENTS.md used 0.05+).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentSetting

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="CI smoke scale: small populations, relaxed speedup gates "
             "(used by the benchmark-smoke workflow job)",
    )


@pytest.fixture(scope="session")
def quick_mode(request) -> bool:
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def bench_setting() -> ExperimentSetting:
    """Laptop-scale defaults: smaller w and horizon than Table II, same shape."""
    return ExperimentSetting(
        epsilon=1.0, w=10, phi=10, k=6, scale=BENCH_SCALE, seed=0
    )


@pytest.fixture(scope="session")
def save_artifact():
    """Write a rendered table/figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


@pytest.fixture(scope="session")
def save_json_artifact():
    """Write a machine-readable result to benchmarks/results/<name>.json.

    Used by the acceptance-gate benchmarks so CI can persist measured
    speedups (e.g. ``BENCH_synthesis.json``) alongside the rendered text.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    return _save
