"""Diff a fresh serve-load run against the committed baseline.

CI's ``serve-load-smoke`` job regenerates ``BENCH_serve.json`` on every
push; this script fails the job when the run regresses against
``benchmarks/baselines/BENCH_serve.json`` (committed to the repo).

Absolute throughput is machine-dependent, so only **ratios** are
compared: each speedup key in the new run must stay within ``--floor``
(default 0.5x) of the committed baseline's value.  A halved
binary-vs-JSON speedup means the binary transport plane regressed
relative to the JSON one on the *same* machine — a signal that survives
hardware differences.  Bit-identity of the remote replay is an absolute
requirement regardless of speed.

Usage::

    python benchmarks/check_serve_baseline.py BENCH_serve.json \
        [--baseline benchmarks/baselines/BENCH_serve.json] [--floor 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Ratio keys compared against the baseline (present in every artifact).
RATIO_KEYS = ("binary_speedup_vs_json_v1", "e2e_speedup_http")

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_serve.json"


def check(new: dict, baseline: dict, floor: float) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures = []
    if not new.get("remote_bit_identical"):
        failures.append("remote replay is no longer bit-identical")
    for key in RATIO_KEYS:
        base = baseline.get(key)
        got = new.get(key)
        if base is None:
            continue
        if got is None:
            failures.append(f"{key} missing from the new run")
            continue
        if got < floor * base:
            failures.append(
                f"{key} regressed: {got:.2f}x vs baseline {base:.2f}x "
                f"(floor {floor:.2f}x of baseline = {floor * base:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="fresh BENCH_serve.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--floor", type=float, default=0.5,
                        help="minimum fraction of each baseline ratio")
    args = parser.parse_args(argv)

    new = json.loads(Path(args.artifact).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(new, baseline, args.floor)
    for key in RATIO_KEYS:
        print(
            f"{key}: {new.get(key)}x (baseline {baseline.get(key)}x)"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serve-load artifact within baseline envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
