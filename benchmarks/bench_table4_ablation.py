"""Table IV: ablation of DMU and entering/quitting events.

Shapes to verify: NoEQ destroys trajectory-level metrics (Length Error at
ln 2, degraded trip error) while full RetraSyn does not; AllUpdate updates
the whole model each round yet does not beat RetraSyn overall.
"""

from _util import run_once

from repro.experiments.table4 import format_table4, run_table4


def test_table4_ablation(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark, run_table4, bench_setting, datasets=("tdrive", "oldenburg")
    )
    save_artifact(
        "table4_ablation",
        format_table4(results),
    )
    for dataset, scores in results.items():
        # Entering/quitting ablation: length error pinned at ln 2.
        assert scores["NoEQ_p"]["length_error"] > 0.6, dataset
        assert scores["RetraSyn_p"]["length_error"] < 0.6, dataset
        # NoEQ must be no better than RetraSyn on trip error.
        assert (
            scores["RetraSyn_p"]["trip_error"]
            <= scores["NoEQ_p"]["trip_error"] + 0.05
        ), dataset
