"""Micro-benchmarks of the hot substrate operations.

These measure the primitives the complexity analysis (paper Section IV-B)
is about: user-side perturbation ``O(|S|)`` per user, curator aggregation,
grid discretisation, and one synthesis step.  Unlike the table/figure
benches these use pytest-benchmark's statistical timing (many rounds).
"""

import numpy as np
import pytest

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.synthesis import Synthesizer
from repro.core.fast_synthesis import VectorizedSynthesizer
from repro.geo.grid import unit_grid
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.stream.state_space import TransitionStateSpace


@pytest.fixture(scope="module")
def space10():
    return TransitionStateSpace(unit_grid(10))


def test_oue_collect_fast(benchmark, space10):
    """Aggregated collection over the full transition domain (fast mode)."""
    rng = np.random.default_rng(0)
    values = rng.integers(0, space10.size, size=5000)
    oracle = OptimizedUnaryEncoding(space10.size, 1.0, rng=0, mode="fast")
    benchmark(oracle.collect, values)


def test_oue_perturb_exact(benchmark, space10):
    """Literal per-user bit-vector perturbation (user-side cost)."""
    rng = np.random.default_rng(0)
    values = rng.integers(0, space10.size, size=500)
    oracle = OptimizedUnaryEncoding(space10.size, 1.0, rng=0, mode="exact")
    benchmark(oracle.perturb_many, values)


def test_grid_locate_many(benchmark):
    grid = unit_grid(18)
    rng = np.random.default_rng(0)
    xs = rng.uniform(-0.1, 1.1, 100_000)
    ys = rng.uniform(-0.1, 1.1, 100_000)
    benchmark(grid.locate_many, xs, ys)


def test_state_space_construction(benchmark):
    grid = unit_grid(18)
    benchmark(lambda: TransitionStateSpace(grid))


def _loaded_synthesizer(engine_cls, space, n_streams):
    rng = np.random.default_rng(0)
    model = GlobalMobilityModel(space)
    model.set_all(rng.random(space.size))
    syn = engine_cls(model, lam=15.0, rng=1)
    syn.spawn_from_entering(0, n_streams)
    return syn


def test_synthesis_step_object(benchmark, space10):
    syn = _loaded_synthesizer(Synthesizer, space10, 5000)
    t = [0]

    def step():
        t[0] += 1
        syn.step(t[0], target_size=5000)

    benchmark(step)


def test_synthesis_step_vectorized(benchmark, space10):
    syn = _loaded_synthesizer(VectorizedSynthesizer, space10, 5000)
    t = [0]

    def step():
        t[0] += 1
        syn.step(t[0], target_size=5000)

    benchmark(step)


def test_mobility_model_row_distributions(benchmark, space10):
    rng = np.random.default_rng(0)
    model = GlobalMobilityModel(space10)

    def rebuild_and_query():
        model.set_all(rng.random(space10.size))  # invalidates caches
        for origin in range(space10.n_cells):
            model.row_distribution(origin)

    benchmark(rebuild_and_query)
