"""Figure 5: utility versus evaluation time-range size phi.

Shape to verify: RetraSyn outperforms the baselines across phi, and its
hotspot NDCG does not degrade as the range grows (the paper reports
improvement for mid/long-term analysis).
"""

from _util import run_once

from repro.experiments.fig5 import format_fig5, run_fig5

PHIS = (5, 10, 20)


def test_fig5_phi(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark,
        run_fig5,
        bench_setting,
        phis=PHIS,
        datasets=("tdrive",),
    )
    save_artifact("fig5_phi", format_fig5(results))
    ndcg = results["tdrive"]["hotspot_ndcg"]
    # Averaged across the phi sweep, RetraSyn must lead the baselines
    # (single-phi cells are noisy at laptop scale).
    import numpy as np

    retra_mean = np.mean(
        [ndcg[m][p] for m in ("RetraSyn_b", "RetraSyn_p") for p in PHIS]
    )
    baseline_mean = np.mean(
        [ndcg[b][p] for b in ("LBD", "LBA", "LPD", "LPA") for p in PHIS]
    )
    assert retra_mean > baseline_mean, ndcg
    # Long ranges must not collapse RetraSyn's hotspot quality.
    assert ndcg["RetraSyn_p"][PHIS[-1]] >= ndcg["RetraSyn_p"][PHIS[0]] - 0.1
