"""DMU behaviour under a distribution shift (Section III-C motivation).

The paper motivates the DMU mechanism with changing traffic patterns
("during morning rush hours ... transitions between other regions might
experience considerable fluctuations").  This bench runs RetraSyn over a
stream whose dominant flow reverses mid-horizon and verifies that

* the DMU selects *more* significant transitions right after the shift
  than in the preceding steady state, and
* the synthetic transition distribution re-converges after the shift.
"""

import numpy as np
from _util import run_once

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.synthetic import make_two_hotspot_stream
from repro.metrics.divergence import jsd_from_counts

SHIFT_AT = 40
HORIZON = 80


def test_dmu_tracks_distribution_shift(benchmark, bench_setting, save_artifact):
    data = make_two_hotspot_stream(
        k=6, n_streams=3000, n_timestamps=HORIZON, shift_at=SHIFT_AT, seed=0
    )

    def run():
        return RetraSyn(
            RetraSynConfig(epsilon=1.0, w=bench_setting.w, seed=0)
        ).run(data)

    result = run_once(benchmark, run)
    sig = np.asarray(result.significant_per_timestamp, dtype=float)
    rep = np.asarray(result.reporters_per_timestamp, dtype=float)
    act = data.active_counts().astype(float)
    rate = np.where(act > 0, rep / np.maximum(act, 1.0), 0.0)
    rate_steady = rate[10:SHIFT_AT].mean()
    rate_after = rate[SHIFT_AT:SHIFT_AT + 12].mean()

    # Post-shift synthetic transition fidelity: compare the last quarter.
    from collections import Counter

    real_tr: Counter = Counter()
    syn_tr: Counter = Counter()
    for t in range(3 * HORIZON // 4, HORIZON):
        real_tr.update(data.transitions_at(t))
        syn_tr.update(result.synthetic.transitions_at(t))
    post_shift_jsd = jsd_from_counts(real_tr, syn_tr)

    save_artifact(
        "dmu_tracking",
        "DMU + adaptive allocation under a mid-stream flow reversal\n"
        f"  reporter rate, steady state:               {rate_steady:.4f}\n"
        f"  reporter rate, post-shift:                 {rate_after:.4f}\n"
        f"  significant transitions/round (steady):    "
        f"{sig[10:SHIFT_AT][rep[10:SHIFT_AT] > 0].mean():.1f}\n"
        f"  post-shift transition JSD (last quarter):  {post_shift_jsd:.4f}",
    )
    # The deviation signal must raise the allocation after the reversal
    # (reporter-rate signal; raw selection counts are noise-dominated at
    # laptop populations, see EXPERIMENTS.md).
    assert rate_after > rate_steady * 1.02, (rate_steady, rate_after)
    # And the model must re-converge: the synthetic transition distribution
    # tracks the *reversed* flows in the final quarter.
    assert post_shift_jsd < 0.6
