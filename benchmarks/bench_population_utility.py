"""Extension experiment: utility improves with population size (Eq. 3).

Shape to verify: density error at full population is no worse than at a
quarter of the population — the 1/n variance law surfacing as utility.
"""

from dataclasses import replace

from _util import run_once

from repro.experiments.population_utility import (
    format_population_utility,
    run_population_utility,
)


def test_population_utility(benchmark, bench_setting, save_artifact):
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.05))
    results = run_once(
        benchmark,
        run_population_utility,
        setting,
        fractions=(0.25, 1.0),
        datasets=("tdrive",),
        n_repeats=3,
    )
    save_artifact(
        "population_utility", format_population_utility(results)
    )
    per_metric = results["tdrive"]
    for metric, cells in per_metric.items():
        assert cells[1.0] <= cells[0.25] + 0.02, (metric, cells)
