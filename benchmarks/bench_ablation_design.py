"""Ablations of DESIGN.md's design choices (beyond the paper's Table IV).

1. **Quit mass in the movement denominator** (Eq. 6): removing the f_iQ
   term makes movement rows over-confident and termination uncalibrated.
2. **Length reweighting lambda** (Eq. 8): lambda = average length versus a
   tiny lambda (aggressive termination) and a huge lambda (near-immortal
   streams) — trajectory length fidelity must peak near the paper's choice.
3. **Exact vs fast OUE execution**: identical estimates in distribution;
   fast mode must not change utility beyond noise while being cheaper on
   the curator's wall clock for large populations.
"""

import numpy as np
from _util import run_once

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.registry import load_dataset
from repro.metrics.length import length_error, travel_distances


def _run_with_lambda(data, lam, seed=0):
    cfg = RetraSynConfig(epsilon=1.0, w=10, lam=lam, seed=seed)
    return RetraSyn(cfg).run(data)


def test_lambda_reweighting_controls_lengths(benchmark, bench_setting, save_artifact):
    data = load_dataset("tdrive", scale=bench_setting.scale, seed=0)
    avg_len = data.stats()["average_length"]

    def sweep():
        return {
            lam: length_error(data, _run_with_lambda(data, lam).synthetic)
            for lam in (avg_len * 0.2, avg_len, avg_len * 20)
        }

    errors = run_once(benchmark, sweep)
    lines = ["Ablation — lambda (Eq. 8 length reweighting) vs length error"]
    for lam, err in errors.items():
        lines.append(f"  lambda={lam:8.2f}  length_error={err:.4f}")
    save_artifact("ablation_lambda", "\n".join(lines))
    lams = list(errors)
    # The paper's choice (lambda = average length) beats the huge lambda,
    # which suppresses termination and inflates trajectory lengths.
    assert errors[lams[1]] <= errors[lams[2]] + 0.02, errors


def test_quit_mass_in_denominator(benchmark, bench_setting, save_artifact):
    """Compare synthetic length profiles with and without Eq. 6's f_iQ term.

    Without the quit mass, movement probabilities are renormalised over
    moves only and the per-step termination probability collapses, so
    synthetic trajectories run systematically longer.
    """
    from repro.core.mobility_model import GlobalMobilityModel
    from repro.core.synthesis import Synthesizer
    from repro.stream.state_space import TransitionStateSpace

    data = load_dataset("tdrive", scale=bench_setting.scale, seed=0)
    space = TransitionStateSpace(data.grid)
    # Noise-free frequencies: isolate the modelling choice from LDP noise.
    counts = np.zeros(space.size)
    n = 0
    for t in range(data.n_timestamps):
        for _uid, s in data.participants_at(t):
            counts[space.index_of(s)] += 1
            n += 1
    freqs = counts / n

    def simulate(drop_quit_mass: bool):
        f = freqs.copy()
        if drop_quit_mass:
            f[space.quit_indices] = 0.0
        model = GlobalMobilityModel(space)
        model.set_all(f)
        syn = Synthesizer(model, lam=data.stats()["average_length"], rng=0)
        syn.spawn_from_entering(0, 300)
        for t in range(1, data.n_timestamps):
            syn.step(t)
        from repro.stream.stream import StreamDataset

        return StreamDataset(
            data.grid, syn.all_trajectories(), n_timestamps=data.n_timestamps
        )

    def both():
        return simulate(False), simulate(True)

    with_quit, without_quit = run_once(benchmark, both)
    real_mean = travel_distances(data).mean()
    mean_with = travel_distances(with_quit).mean()
    mean_without = travel_distances(without_quit).mean()
    save_artifact(
        "ablation_quit_mass",
        "Ablation — Eq. 6 quit mass in movement denominator\n"
        f"  real mean travel distance       {real_mean:.4f}\n"
        f"  with quit mass (paper)          {mean_with:.4f}\n"
        f"  without quit mass               {mean_without:.4f}",
    )
    # Dropping the quit term must push lengths further from the truth.
    assert abs(mean_with - real_mean) <= abs(mean_without - real_mean)


def test_exact_vs_fast_oracle(benchmark, bench_setting, save_artifact):
    data = load_dataset("tdrive", scale=bench_setting.scale, seed=0)

    def run_both():
        out = {}
        for mode in ("exact", "fast"):
            cfg = RetraSynConfig(epsilon=1.0, w=10, oracle_mode=mode, seed=0)
            run = RetraSyn(cfg).run(data)
            out[mode] = (
                length_error(data, run.synthetic),
                run.timings["user_side"],
            )
        return out

    out = run_once(benchmark, run_both)
    save_artifact(
        "ablation_oracle_mode",
        "Ablation — exact vs fast OUE execution\n"
        f"  exact: length_error={out['exact'][0]:.4f} "
        f"user_side={out['exact'][1]:.4f}s\n"
        f"  fast:  length_error={out['fast'][0]:.4f} "
        f"user_side={out['fast'][1]:.4f}s",
    )
    # Utility must agree within noise; fast mode must not be slower overall.
    assert abs(out["exact"][0] - out["fast"][0]) < 0.15
    assert out["fast"][1] <= out["exact"][1] * 1.5
