"""Figure 7: scalability with dataset size.

Shapes to verify: per-timestamp runtime grows with the number of streams,
roughly linearly (Pearson r close to 1 across the size sweep).
"""

from dataclasses import replace

from _util import run_once

from repro.experiments.fig7 import format_fig7, linearity_score, run_fig7

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def test_fig7_scalability(benchmark, bench_setting, save_artifact):
    # Timing trends need enough streams to rise above scheduler noise:
    # use at least 5% scale regardless of the suite-wide default.
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.05))
    results = run_once(
        benchmark,
        run_fig7,
        setting,
        fractions=FRACTIONS,
        datasets=("tdrive", "oldenburg"),
    )
    save_artifact("fig7_scalability", format_fig7(results))
    for method, per_dataset in results.items():
        for dataset, per_frac in per_dataset.items():
            assert per_frac[1.0] > per_frac[0.25], (method, dataset)
            assert linearity_score(per_frac) > 0.7, (method, dataset, per_frac)
