"""Diff a fresh distributed-bench run against the committed baseline.

CI's ``distributed-smoke`` job regenerates ``BENCH_distributed.json`` on
every push; this script fails the job when the run regresses against
``benchmarks/baselines/BENCH_distributed.json`` (committed to the repo).

Absolute throughput is machine-dependent, so only **ratios** are
compared: the distributed-vs-process executor speedup at the largest
swept K and every pipelined depth's speedup over the per-timestamp
protocol must stay within ``--floor`` (default 0.5x) of the committed
baseline's value.  Ratio regressions are *report-only on a single-core
host* (the workers serialize there, so the ratios carry no signal —
mirroring the artifact's own gate policy); bit-identity of every
executor, every synthesis slab path and every pipelining depth is an
absolute requirement regardless of speed or core count.

Usage::

    python benchmarks/check_distributed_baseline.py BENCH_distributed.json \
        [--baseline benchmarks/baselines/BENCH_distributed.json] [--floor 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).parent / "baselines" / "BENCH_distributed.json"
)


def _ratios(payload: dict) -> dict[str, float]:
    """The machine-portable ratio keys of one artifact."""
    out: dict[str, float] = {}
    ks = sorted(int(k[1:]) for k in payload.get("collection", {}))
    if ks:
        row = payload["collection"][f"K{ks[-1]}"]
        out[f"K{ks[-1]}_speedup_distributed_vs_process"] = row[
            "speedup_distributed_vs_process"
        ]
    pipe = payload.get("pipeline", {})
    for depth in pipe.get("round_batches", []):
        if depth > 1:
            out[f"pipeline_depth{depth}_speedup_vs_depth1"] = pipe["results"][
                f"depth{depth}"
            ]["speedup_vs_depth1"]
    return out


def check(new: dict, baseline: dict, floor: float) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures = []
    if not new.get("bit_identical"):
        failures.append("executor outputs are no longer bit-identical")
    if not new.get("synthesis", {}).get("bit_identical"):
        failures.append("synthesis slab executors are no longer bit-identical")
    if not new.get("pipeline", {}).get("bit_identical"):
        failures.append(
            "pipelined depths are no longer bit-identical to depth 1"
        )
    multi_core = (new.get("cpu_count") or 1) > 1
    new_ratios, base_ratios = _ratios(new), _ratios(baseline)
    for key, base in base_ratios.items():
        got = new_ratios.get(key)
        if got is None:
            failures.append(f"{key} missing from the new run")
            continue
        if got < floor * base:
            message = (
                f"{key} regressed: {got:.2f}x vs baseline {base:.2f}x "
                f"(floor {floor:.2f}x of baseline = {floor * base:.2f}x)"
            )
            if multi_core:
                failures.append(message)
            else:
                print(f"report-only (single-core host): {message}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="fresh BENCH_distributed.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--floor", type=float, default=0.5,
                        help="minimum fraction of each baseline ratio")
    args = parser.parse_args(argv)

    new = json.loads(Path(args.artifact).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(new, baseline, args.floor)
    new_ratios, base_ratios = _ratios(new), _ratios(baseline)
    for key in sorted(set(new_ratios) | set(base_ratios)):
        print(
            f"{key}: {new_ratios.get(key)}x (baseline {base_ratios.get(key)}x)"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("distributed artifact within baseline envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
