"""Table III: overall utility of all methods across privacy budgets.

Regenerates the paper's main comparison — 6 methods x 4 epsilons x 8
metrics per dataset — at laptop scale.  The shape to verify: RetraSyn_b/p
lead every metric, RetraSyn improves with epsilon, baselines fluctuate, and
the baselines' Length Error pins at ln 2 = 0.6931.
"""

from _util import run_once

from repro.experiments.table3 import format_table3, run_table3


def bench_dataset(benchmark, bench_setting, save_artifact, dataset: str):
    results = run_once(
        benchmark,
        run_table3,
        bench_setting,
        epsilons=(0.5, 1.0, 1.5, 2.0),
        datasets=(dataset,),
    )
    save_artifact(f"table3_{dataset}", format_table3(results))
    return results


def test_table3_tdrive(benchmark, bench_setting, save_artifact):
    results = bench_dataset(benchmark, bench_setting, save_artifact, "tdrive")
    scores = results["tdrive"]
    # Headline shape: RetraSyn beats every baseline on density error at eps=1.
    retra = scores["density_error"]["RetraSyn_p"][1.0]
    for baseline in ("LBD", "LBA", "LPD", "LPA"):
        assert retra < scores["density_error"][baseline][1.0]
    # Baselines' length error pinned at ln 2.
    for baseline in ("LBD", "LBA", "LPD", "LPA"):
        assert abs(scores["length_error"][baseline][1.0] - 0.6931) < 0.05


def test_table3_oldenburg(benchmark, bench_setting, save_artifact):
    results = bench_dataset(benchmark, bench_setting, save_artifact, "oldenburg")
    scores = results["oldenburg"]
    retra = scores["query_error"]["RetraSyn_p"][1.0]
    assert retra < max(
        scores["query_error"][b][1.0] for b in ("LBD", "LBA", "LPD", "LPA")
    )


def test_table3_sanjoaquin(benchmark, bench_setting, save_artifact):
    results = bench_dataset(benchmark, bench_setting, save_artifact, "sanjoaquin")
    scores = results["sanjoaquin"]
    retra = scores["hotspot_ndcg"]["RetraSyn_p"][1.0]
    assert retra > min(
        scores["hotspot_ndcg"][b][1.0] for b in ("LBD", "LBA", "LPD", "LPA")
    )
