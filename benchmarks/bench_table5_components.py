"""Table V: component efficiency of RetraSyn_p.

Shape to verify: real-time synthesis dominates the per-timestamp cost and
mobility-model construction / DMU are negligible, as in the paper.
"""

from _util import run_once

from repro.experiments.table5 import format_table5, run_table5


def test_table5_components(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark,
        run_table5,
        bench_setting,
        datasets=("tdrive", "oldenburg", "sanjoaquin"),
        oracle_mode="exact",  # user-side cost reflects the literal protocol
    )
    save_artifact("table5_components", format_table5(results))
    for dataset, comps in results.items():
        assert comps["synthesis"] >= comps["dmu"], dataset
        assert comps["synthesis"] >= comps["model_construction"], dataset
        assert comps["total"] > 0, dataset
