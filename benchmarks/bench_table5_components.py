"""Table V: component efficiency of RetraSyn_p.

Shape to verify: real-time synthesis dominates the per-timestamp cost and
mobility-model construction / DMU are negligible, as in the paper.
"""

from _util import run_once

from repro.experiments.table5 import format_table5, run_table5


def test_table5_components(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark,
        run_table5,
        bench_setting,
        datasets=("tdrive", "oldenburg", "sanjoaquin"),
        oracle_mode="exact",  # batched literal protocol (engine default)
    )
    save_artifact("table5_components", format_table5(results))
    for dataset, comps in results.items():
        assert comps["synthesis"] >= comps["dmu"], dataset
        assert comps["synthesis"] >= comps["model_construction"], dataset
        assert comps["total"] > 0, dataset


def test_table5_collection_engines(benchmark, bench_setting, save_artifact):
    """Table V user-side column across collection engines, measured not claimed."""

    def run_engines():
        out = {}
        out["exact-loop"] = run_table5(
            bench_setting, datasets=("tdrive",), oracle_mode="exact-loop"
        )
        out["exact"] = run_table5(
            bench_setting, datasets=("tdrive",), oracle_mode="exact"
        )
        out["exact+4shards"] = run_table5(
            bench_setting, datasets=("tdrive",), oracle_mode="exact", n_shards=4
        )
        return out

    out = run_once(benchmark, run_engines)
    lines = ["Table V user-side cost by collection engine (tdrive, s/timestamp)"]
    for label, results in out.items():
        lines.append(f"  {label:<14} {results['tdrive']['user_side']:.6f}")
    save_artifact("table5_collection_engines", "\n".join(lines))
    # The batched path must not be slower than the per-user reference loop.
    assert (
        out["exact"]["tdrive"]["user_side"]
        <= out["exact-loop"]["tdrive"]["user_side"]
    ), out
