"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round.

    The experiments are end-to-end pipeline sweeps; repeating them for
    statistical timing would multiply the harness runtime without adding
    information, so each is measured exactly once.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
