"""Figure 4: utility versus window size w.

Shape to verify: RetraSyn leads the baselines at every w, with a mild
decline as w grows (more timestamps share the same budget).
"""

from _util import run_once

from repro.experiments.fig4 import format_fig4, run_fig4

WINDOWS = (5, 10, 20)


def test_fig4_window(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark,
        run_fig4,
        bench_setting,
        windows=WINDOWS,
        datasets=("tdrive",),
        metrics=("transition_error", "query_error", "trip_error"),
    )
    save_artifact("fig4_window", format_fig4(results))
    per_method = results["tdrive"]["transition_error"]
    for w in WINDOWS:
        retra = min(per_method["RetraSyn_b"][w], per_method["RetraSyn_p"][w])
        baseline_best = min(
            per_method[b][w] for b in ("LBD", "LBA", "LPD", "LPA")
        )
        # RetraSyn at least matches the best baseline at every window size.
        assert retra <= baseline_best + 0.05, (w, per_method)
