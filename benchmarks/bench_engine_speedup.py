"""Engine acceleration: synthesis *and* collection (Section VII future work).

Six measurements:

* object vs. vectorized synthesis engine (per-timestamp synthesis cost);
* per-user-loop vs. batched exact-mode OUE collection at n=100k users —
  the ISSUE 1 acceptance gate (>= 5x);
* unsharded vs. sharded collection engine on a full pipeline run;
* object vs. columnar report plane over the persistent shard worker pool —
  the ISSUE 2 acceptance gate (>= 3x end-to-end collection at n=100k);
* dict-ledger vs. columnar privacy accountant at n=100k reporters —
  the ISSUE 3 acceptance gate (>= 5x ``spend_many`` throughput, with
  bit-identical pipeline output in both modes at K=1 and K=4);
* the synthesis plane under model churn at 100k live streams on a 4096-cell
  grid — the ISSUE 4 acceptance gate (incremental compile + columnar store
  >= 5x the object ``Synthesizer`` and >= 2x the previous
  ``VectorizedSynthesizer``, i.e. ``compile_mode="full-loop"``), persisted
  machine-readable as ``results/BENCH_synthesis.json``.

Each verifies that acceleration does not change utility / statistics.
``--quick`` (a benchmarks-only pytest option) shrinks the report-plane,
accountant and synthesis-plane measurements to smoke scale with relaxed
gates, which is what the CI smoke job runs.
"""

import time
from dataclasses import replace

import numpy as np
import pytest
from _util import run_once

from repro.core.fast_synthesis import VectorizedSynthesizer
from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.core.synthesis import Synthesizer
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_random_walks
from repro.geo.grid import unit_grid
from repro.ldp.accountant import make_accountant
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.metrics.registry import evaluate_all
from repro.stream.events import TransitionState
from repro.stream.reports import KIND_ENTER, KIND_MOVE, ReportBatch
from repro.stream.state_space import TransitionStateSpace


def test_vectorized_engine_speedup(benchmark, bench_setting, save_artifact):
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.05))
    data = load_dataset("sanjoaquin", scale=setting.scale, seed=0)

    def run_both():
        out = {}
        for engine in ("object", "vectorized"):
            cfg = RetraSynConfig(
                epsilon=1.0, w=setting.w, engine=engine, seed=0
            )
            run = RetraSyn(cfg).run(data)
            scores = evaluate_all(
                data, run.synthetic, phi=setting.phi,
                metrics=("density_error", "length_error"), rng=0,
            )
            out[engine] = {
                "synthesis_s_per_t": run.timings["synthesis"] / data.n_timestamps,
                **scores,
            }
        return out

    out = run_once(benchmark, run_both)
    speedup = (
        out["object"]["synthesis_s_per_t"]
        / max(out["vectorized"]["synthesis_s_per_t"], 1e-12)
    )
    save_artifact(
        "engine_speedup",
        "Synthesis engine acceleration (future-work feature)\n"
        f"  object:     {out['object']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['object']['density_error']:.4f} "
        f"length={out['object']['length_error']:.4f}\n"
        f"  vectorized: {out['vectorized']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['vectorized']['density_error']:.4f} "
        f"length={out['vectorized']['length_error']:.4f}\n"
        f"  speedup:    {speedup:.2f}x",
    )
    # Acceleration must not distort utility.
    assert abs(
        out["object"]["density_error"] - out["vectorized"]["density_error"]
    ) < 0.1
    # And should actually accelerate on this population size.
    assert speedup > 1.0, out


def test_batched_collection_speedup(benchmark, save_artifact):
    """ISSUE 1 acceptance: batched exact OUE >= 5x the per-user loop at 100k."""
    n_users, domain, epsilon = 100_000, 200, 1.0
    rng = np.random.default_rng(0)
    values = rng.integers(0, domain, size=n_users)

    def measure():
        out = {}
        for mode in ("exact-loop", "exact"):
            oracle = OptimizedUnaryEncoding(domain, epsilon, rng=0, mode=mode)
            tic = time.perf_counter()
            ones = oracle.simulate_ones(values)
            out[mode] = {
                "seconds": time.perf_counter() - tic,
                # Sanity: the two paths estimate the same uniform histogram.
                "mean_est": float(oracle.debias(ones, n_users).mean()),
            }
        return out

    out = run_once(benchmark, measure)
    speedup = out["exact-loop"]["seconds"] / max(out["exact"]["seconds"], 1e-12)
    save_artifact(
        "collection_speedup",
        f"Batched exact-mode OUE collection (n={n_users}, d={domain})\n"
        f"  per-user loop: {out['exact-loop']['seconds']:.3f} s   "
        f"mean est {out['exact-loop']['mean_est']:.1f}\n"
        f"  batched:       {out['exact']['seconds']:.3f} s   "
        f"mean est {out['exact']['mean_est']:.1f}\n"
        f"  speedup:       {speedup:.1f}x",
    )
    # Uniform values -> n/d per position; the position-mean estimator has
    # std ~ sqrt(n q(1-q)/d)/(p-q) ~ 43 here, so allow a few sigma.
    expected = n_users / domain
    for mode in ("exact-loop", "exact"):
        assert out[mode]["mean_est"] == pytest.approx(expected, abs=200)
    assert speedup >= 5.0, out


def _random_mobility(n_users, grid, n_rounds, rng):
    """Per-round (origin, destination) arrays for a synthetic population."""
    n_cells = grid.n_cells
    deg = np.asarray([len(grid.neighbor_lists[c]) for c in range(n_cells)])
    pad = np.zeros((n_cells, deg.max()), dtype=np.int64)
    for c in range(n_cells):
        pad[c, : deg[c]] = grid.neighbor_lists[c]
    uids = np.arange(n_users, dtype=np.int64)
    cur = rng.integers(0, n_cells, size=n_users)
    start_cells = cur.copy()
    rounds = []
    for _ in range(n_rounds):
        nxt = pad[cur, (rng.random(n_users) * deg[cur]).astype(np.int64)]
        rounds.append((cur, nxt))
        cur = nxt
    return uids, start_cells, rounds


def test_columnar_report_plane_speedup(benchmark, quick_mode, save_artifact):
    """ISSUE 2 acceptance: columnar report plane >= 3x the object path.

    Both runs drive the *same* sharded curator (persistent worker pool,
    identical seed, so identical sampled reporter sets) over identical
    mobility; only the report representation differs.  The object path
    pays what the seed pipeline paid every round — one TransitionState
    per user plus the per-user encode — while the columnar path slices
    pre-encoded index arrays.  ``--quick`` shrinks to n=10k and only
    requires the columnar path to not be slower (the CI smoke gate).
    """
    n_users = 10_000 if quick_mode else 100_000
    n_rounds = 3 if quick_mode else 4
    min_speedup = 1.0 if quick_mode else 3.0
    grid = unit_grid(6)
    data_rng = np.random.default_rng(0)
    uids, start_cells, rounds = _random_mobility(
        n_users, grid, n_rounds, data_rng
    )

    def build_curator():
        cfg = RetraSynConfig(
            epsilon=1.0, w=10, n_shards=2, shard_executor="process",
            engine="vectorized", seed=0, track_privacy=False,
        )
        return ShardedOnlineRetraSyn(grid, cfg, lam=10.0)

    def run_object():
        curator = build_curator()
        try:
            # t=0 (arrivals) is warm-up for both paths, untimed.
            enters = [
                (int(u), TransitionState.enter(int(c)))
                for u, c in zip(uids, start_cells)
            ]
            curator.process_timestep(0, enters, newly_entered=uids,
                                     n_real_active=1_000)
            tic = time.perf_counter()
            for i, (origins, dests) in enumerate(rounds):
                participants = [
                    (int(u), TransitionState.move(int(o), int(d)))
                    for u, o, d in zip(uids, origins, dests)
                ]
                curator.process_timestep(i + 1, participants,
                                         n_real_active=1_000)
            seconds = time.perf_counter() - tic
            reporters = sum(curator.reporters_per_timestamp[1:])
        finally:
            curator.close()
        return seconds, reporters

    def run_columnar():
        curator = build_curator()
        space = curator.space
        try:
            enter_idx = space.enter_indices[start_cells]
            batch0 = ReportBatch.from_arrays(
                uids, enter_idx, np.full(n_users, KIND_ENTER)
            )
            curator.process_timestep(0, batch0, newly_entered=uids,
                                     n_real_active=1_000)
            tic = time.perf_counter()
            for i, (origins, dests) in enumerate(rounds):
                batch = ReportBatch.from_arrays(
                    uids,
                    space.move_index_lookup(origins, dests),
                    np.full(n_users, KIND_MOVE),
                )
                curator.process_timestep(i + 1, batch, n_real_active=1_000)
            seconds = time.perf_counter() - tic
            reporters = sum(curator.reporters_per_timestamp[1:])
        finally:
            curator.close()
        return seconds, reporters

    def measure():
        obj_s, obj_reporters = run_object()
        col_s, col_reporters = run_columnar()
        # Same seed + same mobility => the two runs sample identical
        # reporter volumes; anything else means the paths diverged.
        assert obj_reporters == col_reporters, (obj_reporters, col_reporters)
        return {"object_s": obj_s, "columnar_s": col_s,
                "n_reporters": obj_reporters}

    out = run_once(benchmark, measure)
    speedup = out["object_s"] / max(out["columnar_s"], 1e-12)
    save_artifact(
        "columnar_report_plane",
        f"Columnar report plane vs object path "
        f"(n={n_users}, {n_rounds} rounds, K=2 persistent process pool)\n"
        f"  object:   {out['object_s']:.3f} s   "
        f"({out['n_reporters']} reports collected)\n"
        f"  columnar: {out['columnar_s']:.3f} s\n"
        f"  speedup:  {speedup:.1f}x"
        + ("   [--quick smoke scale]" if quick_mode else ""),
    )
    assert speedup >= min_speedup, out


def test_spend_many_speedup(benchmark, quick_mode, save_artifact):
    """ISSUE 3 acceptance: columnar ledger >= 5x object spend_many at 100k.

    Budget-division shape: every reporter spends ε/w at every timestamp,
    keeping each window exactly full — the worst case for the dict ledger
    (every spend rescans the user's record list) and the common case for
    the ring buffer (one masked row-sum per batch).  Both ledgers must
    agree on every audit number afterwards.  A second phase replays a
    small end-to-end pipeline under both accountant modes at K=1 and K=4
    and requires bit-identical synthetic streams.
    """
    n_users = 10_000 if quick_mode else 100_000
    w, eps = 20, 1.0
    n_rounds = 8 if quick_mode else 25
    min_speedup = 1.0 if quick_mode else 5.0
    uids = np.arange(n_users, dtype=np.int64)

    def measure():
        out = {}
        for mode in ("object", "columnar"):
            acc = make_accountant(eps, w, mode=mode)
            tic = time.perf_counter()
            for t in range(n_rounds):
                acc.spend_many(uids, t, eps / w)
            out[mode] = {
                "seconds": time.perf_counter() - tic,
                "summary": acc.summary(),
            }
        # The two ledgers must reach identical audit verdicts.
        so, sc = out["object"]["summary"], out["columnar"]["summary"]
        assert so["n_users"] == sc["n_users"] == n_users
        assert so["satisfied"] and sc["satisfied"]
        assert so["max_window_spend"] == pytest.approx(sc["max_window_spend"])

        # Bit-identical pipeline output in both modes, K=1 and K=4.
        data = make_random_walks(k=4, n_streams=80, n_timestamps=12, seed=3)
        for n_shards in (1, 4):
            prints = {}
            for mode in ("object", "columnar"):
                run = RetraSyn(
                    RetraSynConfig(
                        epsilon=1.0, w=5, seed=0, n_shards=n_shards,
                        accountant_mode=mode,
                    )
                ).run(data)
                prints[mode] = [
                    (tr.start_time, list(tr.cells))
                    for tr in run.synthetic.trajectories
                ]
                assert run.accountant.verify()
            assert prints["object"] == prints["columnar"], n_shards
        return out

    out = run_once(benchmark, measure)
    speedup = out["object"]["seconds"] / max(out["columnar"]["seconds"], 1e-12)
    save_artifact(
        "accountant_speedup",
        f"Columnar privacy ledger vs dict reference "
        f"(n={n_users} reporters, w={w}, {n_rounds} rounds)\n"
        f"  object:   {out['object']['seconds']:.3f} s\n"
        f"  columnar: {out['columnar']['seconds']:.3f} s\n"
        f"  speedup:  {speedup:.1f}x   "
        f"(pipeline output bit-identical at K=1 and K=4)"
        + ("   [--quick smoke scale]" if quick_mode else ""),
    )
    assert speedup >= min_speedup, out


def test_synthesis_plane_speedup(
    benchmark, quick_mode, save_artifact, save_json_artifact
):
    """ISSUE 4 acceptance: the incremental, columnar synthesis plane.

    All engines advance the same number of live streams under identical
    per-round model churn (a DMU-shaped ``update_selected`` on ~2% of the
    state space before every step — the cadence at which the previous
    vectorized engine re-ran its O(|C|) Python compile loop).  Gates at
    full scale (100k live streams, 64x64 grid = 4096 cells):

    * ``compile_mode="incremental"`` >= 5x the object ``Synthesizer``;
    * ``compile_mode="incremental"`` >= 2x ``compile_mode="full-loop"``
      (the seed implementation's per-cell compile, i.e. the previous
      ``VectorizedSynthesizer``).

    ``--quick`` shrinks to 2k streams on a 256-cell grid and only gates
    against the object engine at >= 1x.  The measured numbers are
    persisted as ``results/BENCH_synthesis.json``.
    """
    n_streams = 2_000 if quick_mode else 100_000
    k = 16 if quick_mode else 64
    n_rounds = 3 if quick_mode else 5
    gate_vs_object = 1.0 if quick_mode else 5.0
    gate_vs_full_loop = None if quick_mode else 2.0
    grid = unit_grid(k)
    space = TransitionStateSpace(grid)
    churn = max(1, space.size // 50)

    def run_engine(make_syn):
        data_rng = np.random.default_rng(0)
        model = GlobalMobilityModel(space)
        model.set_all(data_rng.random(space.size))
        syn = make_syn(model)
        syn.spawn_from_entering(0, n_streams)
        tic = time.perf_counter()
        for t in range(1, n_rounds + 1):
            idx = data_rng.choice(space.size, size=churn, replace=False)
            model.update_selected(idx, data_rng.random(space.size))
            syn.step(t, target_size=n_streams)
        seconds = time.perf_counter() - tic
        lengths = syn.store.lengths()
        return {
            "s_per_t": seconds / n_rounds,
            "mean_length": float(lengths.mean()),
            "n_streams": int(syn.store.n_total),
        }

    def measure():
        out = {
            "object": run_engine(lambda m: Synthesizer(m, lam=10.0, rng=0)),
            "full-loop": run_engine(
                lambda m: VectorizedSynthesizer(
                    m, lam=10.0, rng=0, compile_mode="full-loop"
                )
            ),
            "incremental": run_engine(
                lambda m: VectorizedSynthesizer(
                    m, lam=10.0, rng=0, compile_mode="incremental"
                )
            ),
            "incremental+2shards": run_engine(
                lambda m: VectorizedSynthesizer(
                    m, lam=10.0, rng=0, compile_mode="incremental",
                    synthesis_shards=2,
                )
            ),
        }
        # Acceleration must not change the generative law: every engine
        # tracks the same target size and produces comparable lengths
        # (exact distribution equivalence is property-tested in
        # tests/core/test_fast_synthesis.py).
        base = out["object"]["mean_length"]
        for name, row in out.items():
            assert row["mean_length"] == pytest.approx(base, rel=0.15), name
        return out

    out = run_once(benchmark, measure)
    vs_object = out["object"]["s_per_t"] / max(out["incremental"]["s_per_t"], 1e-12)
    vs_full_loop = (
        out["full-loop"]["s_per_t"] / max(out["incremental"]["s_per_t"], 1e-12)
    )
    lines = [
        f"Synthesis plane (n={n_streams} live streams, {k}x{k} grid, "
        f"{churn}-state model churn per round)"
        + ("   [--quick smoke scale]" if quick_mode else "")
    ]
    for name in ("object", "full-loop", "incremental", "incremental+2shards"):
        lines.append(f"  {name:<20} {out[name]['s_per_t']:.6f} s/timestamp")
    lines.append(f"  speedup vs object:     {vs_object:.1f}x")
    lines.append(f"  speedup vs full-loop:  {vs_full_loop:.1f}x")
    save_artifact("synthesis_plane", "\n".join(lines))
    save_json_artifact(
        "BENCH_synthesis",
        {
            "n_streams": n_streams,
            "n_cells": grid.n_cells,
            "n_rounds": n_rounds,
            "quick": quick_mode,
            "s_per_timestamp": {
                name: row["s_per_t"] for name, row in out.items()
            },
            "speedup_vs_object": vs_object,
            "speedup_vs_full_loop": vs_full_loop,
        },
    )
    assert vs_object >= gate_vs_object, out
    if gate_vs_full_loop is not None:
        assert vs_full_loop >= gate_vs_full_loop, out


def test_sharded_collection_engine(benchmark, bench_setting, save_artifact):
    """Sharded engine: same utility as unsharded, timing reported per K."""
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.02))
    data = load_dataset("oldenburg", scale=setting.scale, seed=0)

    def run_all():
        out = {}
        for n_shards in (1, 4):
            cfg = RetraSynConfig(
                epsilon=1.0, w=setting.w, n_shards=n_shards,
                oracle_mode="exact", seed=0,
            )
            run = RetraSyn(cfg).run(data)
            scores = evaluate_all(
                data, run.synthetic, phi=setting.phi,
                metrics=("density_error", "length_error"), rng=0,
            )
            out[n_shards] = {
                "user_side_s_per_t": run.timings["user_side"] / data.n_timestamps,
                "privacy_ok": run.accountant.verify(),
                **scores,
            }
        return out

    out = run_once(benchmark, run_all)
    lines = [f"Sharded collection engine (oracle_mode=exact, {data.name})"]
    for k, row in out.items():
        lines.append(
            f"  K={k}: user_side {row['user_side_s_per_t']:.6f} s/timestamp  "
            f"density={row['density_error']:.4f} length={row['length_error']:.4f}"
        )
    save_artifact("sharded_engine", "\n".join(lines))
    for row in out.values():
        assert row["privacy_ok"]
    # Sharding must not distort utility.
    assert abs(out[1]["density_error"] - out[4]["density_error"]) < 0.1
