"""Synthesis-engine acceleration (the paper's Section VII future work).

Compares the per-timestamp synthesis cost of the reference object-based
engine against the vectorized engine on a larger-than-default population,
verifying that acceleration does not change utility.
"""

from dataclasses import replace

from _util import run_once

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.registry import load_dataset
from repro.metrics.registry import evaluate_all


def test_vectorized_engine_speedup(benchmark, bench_setting, save_artifact):
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.05))
    data = load_dataset("sanjoaquin", scale=setting.scale, seed=0)

    def run_both():
        out = {}
        for engine in ("object", "vectorized"):
            cfg = RetraSynConfig(
                epsilon=1.0, w=setting.w, engine=engine, seed=0
            )
            run = RetraSyn(cfg).run(data)
            scores = evaluate_all(
                data, run.synthetic, phi=setting.phi,
                metrics=("density_error", "length_error"), rng=0,
            )
            out[engine] = {
                "synthesis_s_per_t": run.timings["synthesis"] / data.n_timestamps,
                **scores,
            }
        return out

    out = run_once(benchmark, run_both)
    speedup = (
        out["object"]["synthesis_s_per_t"]
        / max(out["vectorized"]["synthesis_s_per_t"], 1e-12)
    )
    save_artifact(
        "engine_speedup",
        "Synthesis engine acceleration (future-work feature)\n"
        f"  object:     {out['object']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['object']['density_error']:.4f} "
        f"length={out['object']['length_error']:.4f}\n"
        f"  vectorized: {out['vectorized']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['vectorized']['density_error']:.4f} "
        f"length={out['vectorized']['length_error']:.4f}\n"
        f"  speedup:    {speedup:.2f}x",
    )
    # Acceleration must not distort utility.
    assert abs(
        out["object"]["density_error"] - out["vectorized"]["density_error"]
    ) < 0.1
    # And should actually accelerate on this population size.
    assert speedup > 1.0, out
