"""Engine acceleration: synthesis *and* collection (Section VII future work).

Three measurements:

* object vs. vectorized synthesis engine (per-timestamp synthesis cost);
* per-user-loop vs. batched exact-mode OUE collection at n=100k users —
  the ISSUE 1 acceptance gate (>= 5x);
* unsharded vs. sharded collection engine on a full pipeline run.

Each verifies that acceleration does not change utility / statistics.
"""

import time
from dataclasses import replace

import numpy as np
import pytest
from _util import run_once

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.registry import load_dataset
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.metrics.registry import evaluate_all


def test_vectorized_engine_speedup(benchmark, bench_setting, save_artifact):
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.05))
    data = load_dataset("sanjoaquin", scale=setting.scale, seed=0)

    def run_both():
        out = {}
        for engine in ("object", "vectorized"):
            cfg = RetraSynConfig(
                epsilon=1.0, w=setting.w, engine=engine, seed=0
            )
            run = RetraSyn(cfg).run(data)
            scores = evaluate_all(
                data, run.synthetic, phi=setting.phi,
                metrics=("density_error", "length_error"), rng=0,
            )
            out[engine] = {
                "synthesis_s_per_t": run.timings["synthesis"] / data.n_timestamps,
                **scores,
            }
        return out

    out = run_once(benchmark, run_both)
    speedup = (
        out["object"]["synthesis_s_per_t"]
        / max(out["vectorized"]["synthesis_s_per_t"], 1e-12)
    )
    save_artifact(
        "engine_speedup",
        "Synthesis engine acceleration (future-work feature)\n"
        f"  object:     {out['object']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['object']['density_error']:.4f} "
        f"length={out['object']['length_error']:.4f}\n"
        f"  vectorized: {out['vectorized']['synthesis_s_per_t']:.6f} s/timestamp  "
        f"density={out['vectorized']['density_error']:.4f} "
        f"length={out['vectorized']['length_error']:.4f}\n"
        f"  speedup:    {speedup:.2f}x",
    )
    # Acceleration must not distort utility.
    assert abs(
        out["object"]["density_error"] - out["vectorized"]["density_error"]
    ) < 0.1
    # And should actually accelerate on this population size.
    assert speedup > 1.0, out


def test_batched_collection_speedup(benchmark, save_artifact):
    """ISSUE 1 acceptance: batched exact OUE >= 5x the per-user loop at 100k."""
    n_users, domain, epsilon = 100_000, 200, 1.0
    rng = np.random.default_rng(0)
    values = rng.integers(0, domain, size=n_users)

    def measure():
        out = {}
        for mode in ("exact-loop", "exact"):
            oracle = OptimizedUnaryEncoding(domain, epsilon, rng=0, mode=mode)
            tic = time.perf_counter()
            ones = oracle.simulate_ones(values)
            out[mode] = {
                "seconds": time.perf_counter() - tic,
                # Sanity: the two paths estimate the same uniform histogram.
                "mean_est": float(oracle.debias(ones, n_users).mean()),
            }
        return out

    out = run_once(benchmark, measure)
    speedup = out["exact-loop"]["seconds"] / max(out["exact"]["seconds"], 1e-12)
    save_artifact(
        "collection_speedup",
        f"Batched exact-mode OUE collection (n={n_users}, d={domain})\n"
        f"  per-user loop: {out['exact-loop']['seconds']:.3f} s   "
        f"mean est {out['exact-loop']['mean_est']:.1f}\n"
        f"  batched:       {out['exact']['seconds']:.3f} s   "
        f"mean est {out['exact']['mean_est']:.1f}\n"
        f"  speedup:       {speedup:.1f}x",
    )
    # Uniform values -> n/d per position; the position-mean estimator has
    # std ~ sqrt(n q(1-q)/d)/(p-q) ~ 43 here, so allow a few sigma.
    expected = n_users / domain
    for mode in ("exact-loop", "exact"):
        assert out[mode]["mean_est"] == pytest.approx(expected, abs=200)
    assert speedup >= 5.0, out


def test_sharded_collection_engine(benchmark, bench_setting, save_artifact):
    """Sharded engine: same utility as unsharded, timing reported per K."""
    setting = replace(bench_setting, scale=max(bench_setting.scale, 0.02))
    data = load_dataset("oldenburg", scale=setting.scale, seed=0)

    def run_all():
        out = {}
        for n_shards in (1, 4):
            cfg = RetraSynConfig(
                epsilon=1.0, w=setting.w, n_shards=n_shards,
                oracle_mode="exact", seed=0,
            )
            run = RetraSyn(cfg).run(data)
            scores = evaluate_all(
                data, run.synthetic, phi=setting.phi,
                metrics=("density_error", "length_error"), rng=0,
            )
            out[n_shards] = {
                "user_side_s_per_t": run.timings["user_side"] / data.n_timestamps,
                "privacy_ok": run.accountant.verify(),
                **scores,
            }
        return out

    out = run_once(benchmark, run_all)
    lines = [f"Sharded collection engine (oracle_mode=exact, {data.name})"]
    for k, row in out.items():
        lines.append(
            f"  K={k}: user_side {row['user_side_s_per_t']:.6f} s/timestamp  "
            f"density={row['density_error']:.4f} length={row['length_error']:.4f}"
        )
    save_artifact("sharded_engine", "\n".join(lines))
    for row in out.values():
        assert row["privacy_ok"]
    # Sharding must not distort utility.
    assert abs(out[1]["density_error"] - out[4]["density_error"]) < 0.1
