"""Extension experiment: streaming RetraSyn vs one-shot LDPTrace-style
historical release (see experiments/historical.py for the framing).

Shape to verify: the streaming framework remains competitive on the
historical metrics despite never seeing full trajectories, and both stay
far from the baselines' ln 2 length-error ceiling.
"""

from _util import run_once

from repro.experiments.historical import format_historical, run_historical


def test_streaming_vs_historical(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark, run_historical, bench_setting, datasets=("tdrive",)
    )
    save_artifact("historical_comparison", format_historical(results))
    scores = results["tdrive"]
    streaming = scores["RetraSyn_p (streaming)"]
    one_shot = scores["LDPTrace (one-shot)"]
    # Both approaches model trajectory termination: neither may collapse to
    # the never-terminating baselines' ln 2 ceiling.
    assert streaming["length_error"] < 0.5
    assert one_shot["length_error"] < 0.5
    # Streaming must stay in the historical method's ballpark on trip
    # structure (within 0.2 JSD) while additionally supporting real time.
    assert streaming["trip_error"] <= one_shot["trip_error"] + 0.2
