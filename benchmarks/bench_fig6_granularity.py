"""Figure 6: impact of the discretisation granularity K.

Shapes to verify: per-timestamp runtime grows with K (larger transition
domain), and a mid-range K is never beaten by the coarsest *and* the finest
simultaneously (the paper's U-shaped utility curve).
"""

from _util import run_once

from repro.experiments.fig6 import format_fig6, run_fig6

KS = (2, 6, 10)


def test_fig6_granularity(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark,
        run_fig6,
        bench_setting,
        ks=KS,
        datasets=("tdrive",),
        methods=("RetraSyn_p",),
    )
    save_artifact("fig6_granularity", format_fig6(results))
    cells = results["RetraSyn_p"]["tdrive"]
    # Runtime grows with the grid (larger state domain to perturb/update).
    assert cells[KS[-1]]["runtime_per_ts"] > cells[KS[0]]["runtime_per_ts"]
    # Finer granularity inflates perturbation noise: at laptop-scale
    # populations the finest grid must not be the best of the sweep.
    errors = {k: cells[k]["query_error"] for k in KS}
    assert errors[KS[-1]] >= min(errors.values()), errors
