"""Figure 3: allocation-strategy comparison.

Shape to verify: the adaptive strategies are competitive on every metric
(the paper reports them as the most robust choice overall).
"""

from _util import run_once

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_allocation(benchmark, bench_setting, save_artifact):
    results = run_once(
        benchmark, run_fig3, bench_setting, datasets=("tdrive", "oldenburg")
    )
    save_artifact("fig3_allocation", format_fig3(results))
    for dataset, per_strategy in results.items():
        errs = {s: v["transition_error"] for s, v in per_strategy.items()}
        best = min(errs.values())
        adaptive = min(errs["Adaptive_b"], errs["Adaptive_p"])
        # The paper reports Adaptive as robust rather than uniformly best
        # (Sample wins transition error on Oldenburg, Section V-D): require
        # Adaptive to stay within a small margin of the best strategy.
        assert adaptive <= best + 0.1, (dataset, errs)
