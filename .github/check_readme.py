"""Docs check: every path README.md links or mentions must exist.

Two rules, applied to README.md and every doc under docs/:

* every relative markdown link target must exist in the repo;
* every `path`-looking inline-code span (contains a `/` or ends in .py/.md
  and points inside the repo) must exist.

Keeps the module map and quickstart honest as the tree evolves.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
DOCS = [
    ROOT / "README.md",
    ROOT / "docs" / "ARCHITECTURE.md",
    ROOT / "docs" / "STREAMING.md",
    ROOT / "docs" / "API.md",
    ROOT / "docs" / "ANALYSIS.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#]+)\)")
CODE_RE = re.compile(r"`([A-Za-z0-9_./-]+\.(?:py|md))`")


def main() -> int:
    missing: list[str] = []
    for doc in DOCS:
        text = doc.read_text()
        targets = set(LINK_RE.findall(text)) | set(CODE_RE.findall(text))
        for target in sorted(targets):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = (doc.parent / target).resolve()
            if not path.exists() and not (ROOT / target).exists():
                missing.append(f"{doc.relative_to(ROOT)}: {target}")
    if missing:
        print("Dangling documentation references:")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print(f"checked {len(DOCS)} docs: all referenced paths exist")
    return 0


if __name__ == "__main__":
    sys.exit(main())
