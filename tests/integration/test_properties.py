"""Property-based tests over randomly generated stream scenarios.

These exercise whole-pipeline invariants under hypothesis-driven
configurations: privacy accounting, synthesis structural validity, and
metric boundedness must hold for *every* sampled configuration.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.synthetic import make_random_walks
from repro.metrics.divergence import LN2
from repro.metrics.registry import evaluate_all

slow_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def pipeline_configs(draw):
    return RetraSynConfig(
        epsilon=draw(st.sampled_from((0.5, 1.0, 2.0))),
        w=draw(st.sampled_from((2, 4, 7))),
        division=draw(st.sampled_from(("budget", "population"))),
        allocator=draw(st.sampled_from(("adaptive", "uniform", "sample"))),
        update_strategy=draw(st.sampled_from(("dmu", "all"))),
        engine=draw(st.sampled_from(("object", "vectorized"))),
        seed=draw(st.integers(0, 1000)),
    )


@st.composite
def small_streams(draw):
    return make_random_walks(
        k=draw(st.sampled_from((3, 5))),
        n_streams=draw(st.integers(20, 80)),
        n_timestamps=draw(st.integers(10, 25)),
        mean_length=draw(st.sampled_from((4.0, 8.0))),
        seed=draw(st.integers(0, 1000)),
    )


class TestPipelineInvariants:
    @given(cfg=pipeline_configs(), data=small_streams())
    @slow_settings
    def test_privacy_always_holds(self, cfg, data):
        """No sampled configuration may ever break w-event ε-LDP."""
        run = RetraSyn(cfg).run(data)
        assert run.accountant.verify(), (cfg, run.accountant.summary())

    @given(cfg=pipeline_configs(), data=small_streams())
    @slow_settings
    def test_synthetic_structurally_valid(self, cfg, data):
        run = RetraSyn(cfg).run(data)
        syn = run.synthetic
        grid = data.grid
        assert syn.n_timestamps == data.n_timestamps
        for traj in syn.trajectories:
            assert len(traj) >= 1
            assert 0 <= traj.start_time < syn.n_timestamps
            assert traj.end_time < syn.n_timestamps
            for c in traj.cells:
                assert 0 <= c < grid.n_cells
            for a, b in traj.transitions():
                assert grid.are_adjacent(a, b)

    @given(cfg=pipeline_configs(), data=small_streams())
    @slow_settings
    def test_size_tracking_with_eq(self, cfg, data):
        if not cfg.model_entering_quitting:
            return
        run = RetraSyn(cfg).run(data)
        assert np.array_equal(
            data.active_counts(), run.synthetic.active_counts()
        )

    @given(data=small_streams(), seed=st.integers(0, 100))
    @slow_settings
    def test_metrics_bounded(self, data, seed):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=4, seed=seed)).run(data)
        scores = evaluate_all(data, run.synthetic, phi=5, rng=seed)
        assert 0.0 <= scores["density_error"] <= LN2 + 1e-9
        assert 0.0 <= scores["transition_error"] <= LN2 + 1e-9
        assert 0.0 <= scores["trip_error"] <= LN2 + 1e-9
        assert 0.0 <= scores["length_error"] <= LN2 + 1e-9
        assert 0.0 <= scores["hotspot_ndcg"] <= 1.0 + 1e-9
        assert 0.0 <= scores["pattern_f1"] <= 1.0 + 1e-9
        assert -1.0 <= scores["kendall_tau"] <= 1.0
        assert scores["query_error"] >= 0.0
