"""Cross-module integration tests: full pipelines on the paper's datasets."""

import numpy as np
import pytest

from repro import (
    RetraSyn,
    RetraSynConfig,
    evaluate_all,
    load_dataset,
    make_baseline,
)
from repro.metrics.divergence import LN2


@pytest.fixture(scope="module")
def tdrive():
    return load_dataset("tdrive", scale=0.04, seed=0)


@pytest.fixture(scope="module")
def oldenburg():
    return load_dataset("oldenburg", scale=0.02, seed=0)


class TestRetraSynBeatsBaseline:
    """The paper's headline claim at laptop scale: RetraSyn wins."""

    @pytest.fixture(scope="class")
    def scores(self, tdrive):
        ours = RetraSyn(RetraSynConfig(epsilon=1.0, w=10, seed=0)).run(tdrive)
        lpd = make_baseline("lpd", epsilon=1.0, w=10, seed=0).run(tdrive)
        return (
            evaluate_all(tdrive, ours.synthetic, phi=10, rng=0),
            evaluate_all(tdrive, lpd.synthetic, phi=10, rng=0),
        )

    def test_density_error(self, scores):
        assert scores[0]["density_error"] < scores[1]["density_error"]

    def test_query_error(self, scores):
        assert scores[0]["query_error"] < scores[1]["query_error"]

    def test_hotspot_ndcg(self, scores):
        assert scores[0]["hotspot_ndcg"] > scores[1]["hotspot_ndcg"]

    def test_transition_error(self, scores):
        assert scores[0]["transition_error"] < scores[1]["transition_error"]

    def test_trip_error(self, scores):
        assert scores[0]["trip_error"] < scores[1]["trip_error"]

    def test_length_error(self, scores):
        assert scores[0]["length_error"] < scores[1]["length_error"]

    def test_baseline_length_error_pinned(self, scores):
        assert scores[1]["length_error"] == pytest.approx(LN2, abs=0.05)


class TestPrivacyAcrossScenarios:
    @pytest.mark.parametrize("division", ["budget", "population"])
    @pytest.mark.parametrize("w", [5, 10])
    def test_retrasyn_w_event_ldp(self, oldenburg, division, w):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=w, division=division, seed=0)
        ).run(oldenburg)
        assert run.accountant.verify()
        assert run.accountant.max_window_spend() <= 1.0 + 1e-9

    @pytest.mark.parametrize("strategy", ["lbd", "lba", "lpd", "lpa"])
    def test_baselines_w_event_ldp(self, oldenburg, strategy):
        run = make_baseline(strategy, epsilon=1.0, w=5, seed=0).run(oldenburg)
        assert run.accountant.verify()


class TestEpsilonTrend:
    def test_retrasyn_improves_with_budget(self, tdrive):
        """Paper Section V-C: RetraSyn utility improves as ε grows."""
        errs = []
        for eps in (0.3, 4.0):
            run = RetraSyn(RetraSynConfig(epsilon=eps, w=10, seed=0)).run(tdrive)
            scores = evaluate_all(
                tdrive, run.synthetic, phi=10,
                metrics=("density_error", "transition_error"), rng=0,
            )
            errs.append(scores)
        assert errs[1]["density_error"] < errs[0]["density_error"]
        assert errs[1]["transition_error"] < errs[0]["transition_error"]


class TestDynamicPopulation:
    def test_size_tracking_on_growing_dataset(self, oldenburg):
        """Oldenburg's population grows every timestamp; T_syn must track."""
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(oldenburg)
        real = oldenburg.active_counts()
        syn = run.synthetic.active_counts()
        assert np.array_equal(real, syn)

    def test_synthetic_is_valid_stream_dataset(self, oldenburg):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(oldenburg)
        syn = run.synthetic
        # Round-trip through persistence as a structural validity check.
        import tempfile
        from pathlib import Path

        from repro.datasets.io import load_stream_dataset, save_stream_dataset

        with tempfile.TemporaryDirectory() as d:
            p = Path(d) / "syn.npz"
            save_stream_dataset(syn, p)
            loaded = load_stream_dataset(p)
            assert len(loaded) == len(syn)
