"""Additional hypothesis property tests on the substrates."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geo.trajectory import CellTrajectory
from repro.ldp.accountant import PrivacyAccountant
from repro.ldp.oue import OptimizedUnaryEncoding, oue_variance
from repro.stream.stream import split_on_gaps

relaxed = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestOUEProperties:
    @given(
        d=st.integers(2, 40),
        eps=st.floats(0.2, 4.0),
        seed=st.integers(0, 10_000),
    )
    @relaxed
    def test_estimated_counts_sum_near_n(self, d, eps, seed):
        """Debiased counts are unbiased, so their total concentrates on n."""
        n = 400
        rng = np.random.default_rng(seed)
        values = rng.integers(0, d, size=n)
        est = OptimizedUnaryEncoding(d, eps, rng=seed).collect(values)
        # Paper Eq. 3 (oue_variance) is the f -> 0 approximation: only the
        # q-noise of the n - n_i non-reporters.  For small domains the
        # reporters' own p(1-p) flip noise dominates (at d=2 every element
        # holds half the population), so bound with the exact debiased
        # count variance per element instead.
        p, q = 0.5, 1.0 / (np.exp(eps) + 1.0)
        counts = np.bincount(values, minlength=d).astype(float)
        var = (counts * p * (1 - p) + (n - counts) * q * (1 - q)) / (p - q) ** 2
        sigma_total = np.sqrt(var.sum())
        assert sigma_total >= np.sqrt(d * oue_variance(eps, n)) * n * 0.99
        assert abs(est.sum() - n) < 6 * sigma_total + 1e-9

    @given(d=st.integers(2, 30), eps=st.floats(0.2, 4.0))
    @relaxed
    def test_domain_positions_symmetric(self, d, eps):
        """No domain position is privileged: zero-frequency positions have
        identical estimate distributions (spot-check the mean)."""
        n = 300
        runs = np.stack([
            OptimizedUnaryEncoding(d, eps, rng=i).collect([0] * n)
            for i in range(30)
        ])
        means = runs.mean(axis=0)[1:]  # all true-zero positions
        spread = means.max() - means.min()
        assert spread < 0.8 * n  # loose; catches systematic bias only


class TestAccountantProperties:
    @given(
        spends=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 30), st.floats(0.0, 0.3)),
            max_size=60,
        ),
        w=st.integers(1, 8),
    )
    @relaxed
    def test_non_strict_verify_matches_manual_check(self, spends, w):
        """verify() must agree with a brute-force window check."""
        eps = 1.0
        acc = PrivacyAccountant(eps, w, strict=False)
        ledger: dict[int, list[tuple[int, float]]] = {}
        for uid, t, amount in spends:
            acc.spend(uid, t, amount)
            ledger.setdefault(uid, []).append((t, amount))

        def manual_ok() -> bool:
            for uid, records in ledger.items():
                times = sorted({t for t, _a in records})
                for t0 in times:
                    total = sum(
                        a for t, a in records if t0 <= t <= t0 + w - 1
                    )
                    if total > eps + 1e-9:
                        return False
            return True

        assert acc.verify() == manual_ok()

    @given(
        amounts=st.lists(st.floats(0.01, 0.2), min_size=1, max_size=40),
        w=st.integers(2, 6),
    )
    @relaxed
    def test_strict_mode_never_admits_violation(self, amounts, w):
        from repro.exceptions import PrivacyBudgetError

        acc = PrivacyAccountant(1.0, w, strict=True)
        for t, a in enumerate(amounts):
            try:
                acc.spend(0, t, a)
            except PrivacyBudgetError:
                pass
        assert acc.verify()


class TestSplitOnGapsProperties:
    @given(
        times=st.lists(st.integers(0, 60), min_size=1, max_size=40, unique=True),
        seed=st.integers(0, 1000),
    )
    @relaxed
    def test_streams_partition_the_reports(self, times, seed):
        """Every report lands in exactly one stream, order preserved,
        no stream contains a time gap."""
        rng = np.random.default_rng(seed)
        times = sorted(times)
        cells = rng.integers(0, 16, size=len(times))
        streams = split_on_gaps(0, list(zip(times, cells.tolist())))
        # Reconstruct (time, cell) pairs from the streams.
        rebuilt = []
        for s in streams:
            for i, c in enumerate(s.cells):
                rebuilt.append((s.start_time + i, c))
        assert rebuilt == list(zip(times, cells.tolist()))
        # Gap-free within each stream by construction of rebuilt times.
        for s in streams:
            assert len(s) >= 1


class TestTrajectoryProperties:
    @given(
        start=st.integers(0, 20),
        cells=st.lists(st.integers(0, 15), min_size=1, max_size=30),
        lo=st.integers(0, 50),
        span=st.integers(0, 50),
    )
    @relaxed
    def test_subsequence_is_contiguous_slice(self, start, cells, lo, span):
        traj = CellTrajectory(start, cells)
        sub = traj.subsequence(lo, lo + span)
        assert len(sub) <= len(cells)
        if sub:
            # The subsequence must appear contiguously in the cells.
            joined = ",".join(map(str, cells))
            assert ",".join(map(str, sub)) in joined
