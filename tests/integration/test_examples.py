"""Every example script must run to completion as a real subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 3, SCRIPTS
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
