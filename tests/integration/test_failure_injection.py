"""Failure-injection and edge-case robustness tests.

Pathological stream scenarios the pipelines must survive without crashing
or breaking the privacy guarantee: empty streams, single users, mass quits,
data deserts, extreme parameter settings — and a real server process
killed mid-round under load, resumed from its checkpoint.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.ldp_ids import make_baseline
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.geo.grid import unit_grid
from repro.geo.trajectory import CellTrajectory
from repro.metrics.registry import evaluate_all
from repro.stream.stream import StreamDataset


def _run_all_methods(data, w=3):
    runs = []
    for division in ("budget", "population"):
        runs.append(
            RetraSyn(
                RetraSynConfig(epsilon=1.0, w=w, division=division, seed=0)
            ).run(data)
        )
    for strategy in ("lbd", "lpa"):
        runs.append(make_baseline(strategy, epsilon=1.0, w=w, seed=0).run(data))
    return runs


class TestDegenerateDatasets:
    def test_empty_dataset(self):
        data = StreamDataset(unit_grid(4), [], n_timestamps=10)
        for run in _run_all_methods(data):
            assert run.synthetic.n_timestamps == 10
            assert run.accountant.verify()

    def test_single_user_single_point(self):
        data = StreamDataset(
            unit_grid(4), [CellTrajectory(0, [5], user_id=0)], n_timestamps=5
        )
        for run in _run_all_methods(data):
            assert run.accountant.verify()

    def test_single_user_long_stream(self):
        cells = [5] * 20
        data = StreamDataset(
            unit_grid(4), [CellTrajectory(0, cells, user_id=0)], n_timestamps=22
        )
        for run in _run_all_methods(data, w=4):
            assert run.accountant.verify()

    def test_all_users_quit_simultaneously(self):
        """Everyone stops reporting at t=5; the stream goes dark."""
        trajs = [
            CellTrajectory(0, [i % 16] * 5, user_id=i) for i in range(40)
        ]
        data = StreamDataset(unit_grid(4), trajs, n_timestamps=20)
        for run in _run_all_methods(data):
            assert run.accountant.verify()
            # Synthetic population must also collapse to zero with EQ.
            if hasattr(run.config, "model_entering_quitting"):
                counts = run.synthetic.active_counts()
                assert counts[10] == 0

    def test_gap_then_resume(self):
        """A burst, a silent gap, then a second burst of fresh users."""
        first = [CellTrajectory(0, [1, 2], user_id=i) for i in range(20)]
        second = [
            CellTrajectory(12, [5, 6], user_id=100 + i) for i in range(20)
        ]
        data = StreamDataset(unit_grid(4), first + second, n_timestamps=20)
        for run in _run_all_methods(data):
            assert run.accountant.verify()

    def test_one_timestamp_horizon(self):
        data = StreamDataset(
            unit_grid(4),
            [CellTrajectory(0, [3], user_id=0)],
            n_timestamps=1,
        )
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=1, seed=0)).run(data)
        assert run.accountant.verify()
        assert run.synthetic.n_active_at(0) == 1


class TestExtremeParameters:
    def test_w_equals_one_event_level(self, walk_data):
        """w=1 degenerates to event-level privacy (Section II-B)."""
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=1, seed=0)).run(walk_data)
        assert run.accountant.verify()

    def test_w_larger_than_horizon(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=walk_data.n_timestamps * 2, seed=0)
        ).run(walk_data)
        assert run.accountant.verify()

    def test_tiny_epsilon(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=0.01, w=4, seed=0)).run(walk_data)
        assert run.accountant.verify()
        scores = evaluate_all(
            walk_data, run.synthetic, phi=5, metrics=("density_error",), rng=0
        )
        assert np.isfinite(scores["density_error"])

    def test_huge_epsilon(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=50.0, w=4, seed=0)).run(walk_data)
        assert run.accountant.verify()

    def test_k1_grid(self):
        """A single-cell world: everything is a self-loop."""
        trajs = [CellTrajectory(0, [0] * 6, user_id=i) for i in range(30)]
        data = StreamDataset(unit_grid(1), trajs, n_timestamps=10)
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=3, seed=0)).run(data)
        assert run.accountant.verify()
        for traj in run.synthetic.trajectories:
            assert set(traj.cells) == {0}

    def test_extreme_lambda_values(self, walk_data):
        for lam in (0.01, 1e6):
            run = RetraSyn(
                RetraSynConfig(epsilon=1.0, w=4, lam=lam, seed=0)
            ).run(walk_data)
            assert run.accountant.verify()

    def test_p_max_one(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=4, p_max=1.0, seed=0)
        ).run(walk_data)
        assert run.accountant.verify()


class TestAdversarialShapes:
    def test_everyone_in_one_cell(self):
        # Enough users that the OUE signal dominates the per-state noise
        # (with only dozens of reporters, eps=1 noise swamps a 100+-state
        # domain — that regime is exercised by test_tiny_epsilon instead).
        trajs = [CellTrajectory(0, [4] * 8, user_id=i) for i in range(800)]
        data = StreamDataset(unit_grid(3), trajs, n_timestamps=12)
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=3, seed=0)).run(data)
        syn_counts = run.synthetic.cell_counts_matrix().sum(axis=0)
        # The dominant cell must dominate the synthetic data too.
        assert np.argmax(syn_counts) == 4

    def test_population_explosion(self):
        """Population doubles every few timestamps."""
        trajs = []
        uid = 0
        for wave in range(5):
            for _ in range(2 ** wave * 5):
                trajs.append(
                    CellTrajectory(wave * 3, [wave % 16] * 4, user_id=uid)
                )
                uid += 1
        data = StreamDataset(unit_grid(4), trajs, n_timestamps=20)
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=4, seed=0)).run(data)
        assert run.accountant.verify()
        assert np.array_equal(
            data.active_counts(), run.synthetic.active_counts()
        )

    def test_alternating_flash_crowds(self):
        """Users appear only on even timestamps (worst case for recycling)."""
        trajs = []
        uid = 0
        for t in range(0, 20, 2):
            for _ in range(10):
                trajs.append(CellTrajectory(t, [uid % 16], user_id=uid))
                uid += 1
        data = StreamDataset(unit_grid(4), trajs, n_timestamps=22)
        for run in _run_all_methods(data, w=4):
            assert run.accountant.verify()


_LISTEN_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")
_RESUME_RE = re.compile(r"resumed at t=(\d+)")


class TestServerCrashRecovery:
    """SIGKILL a ``repro serve --http`` process mid-round under load.

    The server checkpoints after every closed timestamp
    (``--checkpoint-every 1``).  Killing it loses whatever was buffered
    inside the open watermark window; a restarted server with
    ``--resume`` must pick up at the first unclosed timestamp, accept a
    replay of everything from there, and produce a synthetic database
    bitwise identical to an uninterrupted run — the checkpoint carries
    the engine's full RNG state, so recovery is not merely approximate.
    """

    EPSILON, W, SEED = 1.0, 5, 3

    @staticmethod
    def _workload():
        from repro.bench.load import LoadSpec, seed_dataset, synthetic_rounds

        spec = LoadSpec(
            n_users=250, horizon=8, k=4,
            epsilon=TestServerCrashRecovery.EPSILON,
            w=TestServerCrashRecovery.W,
            seed=TestServerCrashRecovery.SEED,
        )
        return seed_dataset(spec), synthetic_rounds(spec)

    def _boot(self, dataset_path, checkpoint=None, resume=False):
        """Start a server subprocess; returns (proc, port, resumed_t)."""
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--input", str(dataset_path), "--http", "0",
            "--epsilon", str(self.EPSILON), "--w", str(self.W),
            "--seed", str(self.SEED), "--no-audit",
        ]
        if checkpoint is not None:
            cmd += ["--checkpoint", str(checkpoint), "--checkpoint-every", "1"]
        if resume:
            cmd += ["--resume"]
        repo_src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(repo_src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        port = resumed_t = None
        seen = []
        for _ in range(50):
            line = proc.stdout.readline()
            if not line:
                break
            seen.append(line)
            m = _RESUME_RE.search(line)
            if m:
                resumed_t = int(m.group(1))
            m = _LISTEN_RE.search(line)
            if m:
                port = int(m.group(1))
                break
        if port is None:  # pragma: no cover - diagnostic path
            proc.kill()
            raise RuntimeError(f"server did not start: {''.join(seen)!r}")
        return proc, port, resumed_t

    @staticmethod
    def _drain(client, rounds):
        for t, batch, entered, quitted, n_active in rounds:
            client.submit_batch(t, batch, entered, quitted, n_active)

    @staticmethod
    def _finish(client, proc):
        """Flush, fetch the synthetic database, stop the server."""
        client.close()
        synthetic = client.result()
        client.shutdown_server()
        proc.wait(timeout=30)
        return [
            (tr.start_time, list(tr.cells)) for tr in synthetic.trajectories
        ]

    def test_kill_mid_round_resume_is_bit_identical(self, tmp_path):
        from repro.api.client import Client
        from repro.datasets.io import save_stream_dataset

        seed_data, rounds = self._workload()
        dataset_path = tmp_path / "crash_seed.npz"
        save_stream_dataset(seed_data, dataset_path)

        # Uninterrupted reference run.
        proc, port, _ = self._boot(dataset_path)
        try:
            client = Client("127.0.0.1", port)
            client.hello()
            self._drain(client, rounds)
            reference = self._finish(client, proc)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Interrupted run: full rounds 0..4, then half of round 5 —
        # the kill lands with reports buffered in the open window.
        ckpt = tmp_path / "crash.ckpt"
        kill_round = 5
        proc, port, _ = self._boot(dataset_path, checkpoint=ckpt)
        try:
            client = Client("127.0.0.1", port)
            client.hello()
            self._drain(client, rounds[:kill_round])
            t, batch, entered, quitted, n_active = rounds[kill_round]
            half = batch.take(np.arange(len(batch) // 2))
            client.submit_batch(t, half, entered, quitted, n_active)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        client.disconnect()
        assert ckpt.exists(), "no checkpoint survived the crash"

        # Resume and replay everything from the first unclosed timestamp.
        proc, port, resumed_t = self._boot(
            dataset_path, checkpoint=ckpt, resume=True
        )
        try:
            assert resumed_t is not None, "server did not announce a resume"
            # At least one timestamp closed pre-kill, none past the kill.
            assert 0 < resumed_t <= kill_round
            client = Client("127.0.0.1", port)
            client.hello()
            self._drain(client, rounds[resumed_t:])
            recovered = self._finish(client, proc)
        finally:
            if proc.poll() is None:
                proc.kill()

        assert recovered == reference


def _boot_server(
    dataset_path, *, epsilon=1.0, w=5, seed=3,
    checkpoint=None, resume=False, extra=(),
):
    """Start a ``repro serve --http`` subprocess; (proc, port, resumed_t)."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--input", str(dataset_path), "--http", "0",
        "--epsilon", str(epsilon), "--w", str(w),
        "--seed", str(seed), "--no-audit",
    ]
    if checkpoint is not None:
        cmd += ["--checkpoint", str(checkpoint), "--checkpoint-every", "1"]
    if resume:
        cmd += ["--resume"]
    cmd += list(extra)
    repo_src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo_src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    port = resumed_t = None
    seen = []
    for _ in range(50):
        line = proc.stdout.readline()
        if not line:
            break
        seen.append(line)
        m = _RESUME_RE.search(line)
        if m:
            resumed_t = int(m.group(1))
        m = _LISTEN_RE.search(line)
        if m:
            port = int(m.group(1))
            break
    if port is None:  # pragma: no cover - diagnostic path
        proc.kill()
        raise RuntimeError(f"server did not start: {''.join(seen)!r}")
    return proc, port, resumed_t


class TestGracefulDrain:
    """SIGTERM a loaded ``repro serve --http`` server: it must stop
    accepting, finish the buffered rounds, write a final checkpoint, exit
    0 — and a ``--resume`` replay of the remaining rounds must be bitwise
    identical to a run that was never interrupted."""

    EPSILON, W, SEED = 1.0, 5, 3

    def _workload(self):
        from repro.bench.load import LoadSpec, seed_dataset, synthetic_rounds

        spec = LoadSpec(
            n_users=250, horizon=8, k=4,
            epsilon=self.EPSILON, w=self.W, seed=self.SEED,
        )
        return seed_dataset(spec), synthetic_rounds(spec)

    def test_probes_and_metrics_then_sigterm_exits_clean(self, tmp_path):
        """The CI ops-smoke shape: boot a real server subprocess, scrape
        /healthz, /readyz and /metrics, SIGTERM it, assert exit 0."""
        import http.client
        import signal

        from repro.api.client import Client
        from repro.datasets.io import save_stream_dataset

        seed_data, rounds = self._workload()
        dataset_path = tmp_path / "ops_seed.npz"
        save_stream_dataset(seed_data, dataset_path)

        def get(port, path):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                return response.status, response.read().decode()
            finally:
                conn.close()

        proc, port, _ = _boot_server(dataset_path)
        try:
            assert get(port, "/healthz") == (200, "ok\n")
            assert get(port, "/readyz") == (200, "ready\n")
            client = Client("127.0.0.1", port)
            client.hello()
            for t, batch, entered, quitted, n_active in rounds[:4]:
                client.submit_batch(t, batch, entered, quitted, n_active)
            status, body = get(port, "/metrics")
            assert status == 200
            assert "retrasyn_ingest_backlog" in body
            assert "retrasyn_round_seconds_count" in body
            assert "retrasyn_privacy_spend_events_total" in body
            client.disconnect()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_sigterm_drains_checkpoints_and_resumes_bitwise(self, tmp_path):
        import signal

        from repro.api.client import Client
        from repro.datasets.io import save_stream_dataset

        seed_data, rounds = self._workload()
        dataset_path = tmp_path / "drain_seed.npz"
        save_stream_dataset(seed_data, dataset_path)

        def submit(client, some_rounds):
            for t, batch, entered, quitted, n_active in some_rounds:
                client.submit_batch(t, batch, entered, quitted, n_active)

        # Uninterrupted reference run.
        proc, port, _ = _boot_server(dataset_path)
        try:
            client = Client("127.0.0.1", port)
            client.hello()
            submit(client, rounds)
            client.close()
            reference = [
                (tr.start_time, list(tr.cells))
                for tr in client.result().trajectories
            ]
            client.shutdown_server()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Load the server with 6 of 8 rounds, then SIGTERM it.
        ckpt = tmp_path / "drain.ckpt"
        stop_round = 6
        proc, port, _ = _boot_server(dataset_path, checkpoint=ckpt)
        try:
            client = Client("127.0.0.1", port)
            client.hello()
            submit(client, rounds[:stop_round])
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        client.disconnect()
        assert rc == 0, "drained server must exit cleanly"
        assert ckpt.exists(), "drain did not write the final checkpoint"

        # Resume: the drain flushed every submitted round, so the server
        # picks up exactly where the stream stopped.
        proc, port, resumed_t = _boot_server(
            dataset_path, checkpoint=ckpt, resume=True
        )
        try:
            assert resumed_t == stop_round
            client = Client("127.0.0.1", port)
            client.hello()
            submit(client, rounds[resumed_t:])
            client.close()
            recovered = [
                (tr.start_time, list(tr.cells))
                for tr in client.result().trajectories
            ]
            client.shutdown_server()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        assert recovered == reference


class TestCheckpointRotationRecovery:
    """``--checkpoint-keep N`` + a torn newest generation: resume falls
    back to the previous intact generation instead of refusing to start."""

    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        from repro.api.client import Client
        from repro.bench.load import LoadSpec, seed_dataset, synthetic_rounds
        from repro.core.persistence import checkpoint_candidates
        from repro.datasets.io import save_stream_dataset

        spec = LoadSpec(n_users=150, horizon=6, k=4, epsilon=1.0, w=5, seed=3)
        seed_data, rounds = seed_dataset(spec), synthetic_rounds(spec)
        dataset_path = tmp_path / "rot_seed.npz"
        save_stream_dataset(seed_data, dataset_path)

        ckpt = tmp_path / "rot.ckpt"
        proc, port, _ = _boot_server(
            dataset_path, checkpoint=ckpt, extra=["--checkpoint-keep", "3"],
        )
        try:
            client = Client("127.0.0.1", port)
            client.hello()
            for t, batch, entered, quitted, n_active in rounds[:5]:
                client.submit_batch(t, batch, entered, quitted, n_active)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        client.disconnect()

        generations = checkpoint_candidates(ckpt)
        generations = [p for p in generations if p.exists()]
        assert len(generations) >= 2, "rotation kept too few generations"
        newest = generations[0]
        newest.write_bytes(b"torn mid-write")

        proc, port, resumed_t = _boot_server(
            dataset_path, checkpoint=ckpt, resume=True,
            extra=["--checkpoint-keep", "3"],
        )
        try:
            assert resumed_t is not None, "fallback resume did not happen"
            # One generation behind the (corrupted) newest checkpoint.
            assert 0 < resumed_t < 5
        finally:
            proc.kill()
            proc.wait(timeout=30)


class TestHungShardWorker:
    """A SIGSTOPped worker must surface as a timeout naming the shard,
    not block the curator forever on a socket read."""

    def test_sigstop_worker_times_out_with_named_shard(self, walk_data):
        import signal

        from repro.core.sharded import ShardedOnlineRetraSyn
        from repro.exceptions import ShardWorkerError

        cfg = RetraSynConfig(
            epsilon=1.0, w=4, seed=0, n_shards=2,
            shard_executor="distributed", shard_round_timeout=2.0,
        )
        curator = ShardedOnlineRetraSyn(walk_data.grid, cfg, lam=5.0)

        def _step(t):
            curator.process_timestep(
                t,
                participants=walk_data.participants_at(t),
                newly_entered=walk_data.newly_entered_at(t),
                quitted=walk_data.quitted_at(t),
                n_real_active=walk_data.n_active_at(t),
            )

        victim = None
        try:
            for t in range(3):
                _step(t)
            victim = curator._pool._procs[1]
            os.kill(victim.pid, signal.SIGSTOP)
            with pytest.raises(
                ShardWorkerError, match=r"shard 1.*did not answer"
            ):
                for t in range(3, walk_data.n_timestamps):
                    _step(t)
        finally:
            if victim is not None and victim.is_alive():
                try:
                    os.kill(victim.pid, signal.SIGCONT)
                except ProcessLookupError:  # pragma: no cover
                    pass
            curator.close()


class TestShardWorkerDeath:
    """A shard worker killed mid-run surfaces as a typed ShardWorkerError.

    Both multiprocess pools — the pipe-based ``ShardWorkerPool`` and the
    socket-framed ``ShardSocketPool`` — must detect the dead peer on the
    next round trip and raise :class:`~repro.exceptions.ShardWorkerError`
    naming the shard, instead of dying on a bare EOF/EPIPE.
    """

    @pytest.mark.parametrize("executor", ["process", "distributed"])
    def test_sigkill_one_worker_mid_round(self, walk_data, executor):
        import signal

        from repro.core.sharded import ShardedOnlineRetraSyn
        from repro.exceptions import ShardWorkerError

        cfg = RetraSynConfig(
            epsilon=1.0, w=4, seed=0, n_shards=2, shard_executor=executor
        )
        curator = ShardedOnlineRetraSyn(walk_data.grid, cfg, lam=5.0)

        def _step(t):
            curator.process_timestep(
                t,
                participants=walk_data.participants_at(t),
                newly_entered=walk_data.newly_entered_at(t),
                quitted=walk_data.quitted_at(t),
                n_real_active=walk_data.n_active_at(t),
            )

        try:
            for t in range(3):
                _step(t)
            victim = curator._pool._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(ShardWorkerError, match="shard 1"):
                for t in range(3, walk_data.n_timestamps):
                    _step(t)
        finally:
            curator.close()
