"""The per-user adaptive budget allocator (``allocator="adaptive-user"``):
it consults the ledger's ``remaining_many`` and never violates any user's
w-event bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import (
    AdaptiveBudgetAllocator,
    AdaptiveUserBudgetAllocator,
    AllocationContext,
    make_budget_allocator,
    make_population_allocator,
)
from repro.core.online import OnlineRetraSyn
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView


def _context_with_signal(k=8):
    """A context whose deviation is positive (so Eq. 10 is non-trivial)."""
    context = AllocationContext()
    rng = np.random.default_rng(0)
    for _ in range(4):
        freqs = rng.random(k)
        context.record_collection(freqs / freqs.sum())
        context.record_significant_ratio(0.3)
    return context


class TestAllocatorUnit:
    def test_factory_builds_it_for_budget_division_only(self):
        alloc = make_budget_allocator("adaptive-user", 1.0, 10, alpha=4.0)
        assert isinstance(alloc, AdaptiveUserBudgetAllocator)
        assert alloc.alpha == 4.0
        with pytest.raises(ConfigurationError):
            make_population_allocator("adaptive-user", 10)

    def test_without_per_user_info_it_matches_plain_adaptive(self):
        context = _context_with_signal()
        plain = AdaptiveBudgetAllocator(1.0, 5)
        per_user = AdaptiveUserBudgetAllocator(1.0, 5)
        for committed in (0.2, 0.1):
            plain.commit(committed)
            per_user.commit(committed)
        t = 3
        assert per_user.propose_for(t, context, None) == pytest.approx(
            plain.propose(t, context)
        )
        assert per_user.propose(t, context) == pytest.approx(
            plain.propose(t, context)
        )

    def test_bootstrap_round_spends_eps_over_w(self):
        alloc = AdaptiveUserBudgetAllocator(1.0, 5)
        assert alloc.propose_for(0, AllocationContext(), None) == 0.2

    def test_scales_by_the_minimum_participant_remaining(self):
        context = _context_with_signal()
        alloc = AdaptiveUserBudgetAllocator(1.0, 5)
        base = alloc.propose_for(3, context, np.asarray([0.5, 0.8]))
        tighter = alloc.propose_for(3, context, np.asarray([0.25, 0.8]))
        assert tighter == pytest.approx(base / 2)

    def test_fresh_participants_unlock_more_than_the_schedule(self):
        """After heavy schedule spends, a batch of fresh users (full ε
        remaining) may be billed more than the schedule-level remainder —
        the whole point of consulting the ledger per user."""
        context = _context_with_signal()
        plain = AdaptiveBudgetAllocator(1.0, 4)
        per_user = AdaptiveUserBudgetAllocator(1.0, 4)
        for committed in (0.5, 0.4):
            plain.commit(committed)
            per_user.commit(committed)
        fresh = np.asarray([1.0, 1.0, 0.95])
        assert per_user.propose_for(5, context, fresh) > plain.propose(
            5, context
        )

    def test_commit_beyond_schedule_window_is_allowed(self):
        alloc = AdaptiveUserBudgetAllocator(1.0, 2)
        alloc.commit(0.9)
        alloc.commit(0.9)  # plain adaptive's tracker would refuse this
        assert alloc.tracker.window_history()[-2:] == [0.9, 0.9]

    def test_empty_remaining_falls_back_to_schedule(self):
        context = _context_with_signal()
        alloc = AdaptiveUserBudgetAllocator(1.0, 5)
        assert alloc.propose_for(
            2, context, np.empty(0)
        ) == pytest.approx(alloc.propose_for(2, context, None))


class TestEngineIntegration:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_full_run_satisfies_the_ledger(self, walk_data, n_shards):
        config = RetraSynConfig(
            epsilon=1.0, w=8, division="budget", allocator="adaptive-user",
            n_shards=n_shards, seed=0,
        )
        run = RetraSyn(config).run(walk_data)
        summary = run.accountant.summary()
        assert summary["satisfied"] is True
        assert summary["max_window_spend"] <= 1.0 + 1e-9

    def test_engine_consults_remaining_many(self, walk_data):
        config = RetraSynConfig(
            epsilon=1.0, w=8, division="budget", allocator="adaptive-user",
            seed=0,
        )
        curator = OnlineRetraSyn(
            walk_data.grid, config,
            lam=max(1.0, average_length(walk_data.trajectories)),
        )
        consulted = []
        original = curator.accountant.remaining_many

        def spy(user_ids, timestamp):
            consulted.append(int(timestamp))
            return original(user_ids, timestamp)

        curator.accountant.remaining_many = spy
        view = ColumnarStreamView(walk_data, curator.space)
        for t in range(6):
            curator.process_timestep(
                t,
                participants=view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        assert consulted == list(range(6))

    def test_sharded_engine_consults_remaining_many(self, walk_data):
        config = RetraSynConfig(
            epsilon=1.0, w=8, division="budget", allocator="adaptive-user",
            n_shards=2, seed=0,
        )
        curator = ShardedOnlineRetraSyn(
            walk_data.grid, config,
            lam=max(1.0, average_length(walk_data.trajectories)),
        )
        consulted = []
        original = curator.accountant.remaining_many

        def spying_remaining_many(ids, t):
            consulted.append(int(t))
            return original(ids, t)

        curator.accountant.remaining_many = spying_remaining_many
        view = ColumnarStreamView(walk_data, curator.space)
        try:
            for t in range(4):
                curator.process_timestep(
                    t,
                    participants=view.batch_at(t),
                    newly_entered=view.newly_entered_at(t),
                    quitted=view.quitted_at(t),
                    n_real_active=view.n_active_at(t),
                )
        finally:
            curator.close()
        assert consulted == list(range(4))

    def test_runs_without_audit_by_falling_back(self, walk_data):
        config = RetraSynConfig(
            epsilon=1.0, w=8, division="budget", allocator="adaptive-user",
            track_privacy=False, seed=0,
        )
        run = RetraSyn(config).run(walk_data)
        assert run.accountant is None
        assert run.synthetic.n_timestamps == walk_data.n_timestamps

    def test_cli_flag_accepts_adaptive_user(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "run", "--input", "x.npz", "--out", "y.npz",
            "--method", "RetraSyn_b", "--allocator", "adaptive-user",
        ])
        assert args.allocator == "adaptive-user"
        # serve exposes the division directly, so the allocator choice is
        # reachable there too
        args = build_parser().parse_args([
            "serve", "--input", "x.npz",
            "--division", "budget", "--allocator", "adaptive-user",
        ])
        assert args.division == "budget"

    def test_serve_cli_runs_adaptive_user(self, tmp_path):
        from repro.cli import main
        from repro.datasets.io import save_stream_dataset
        from repro.datasets.synthetic import make_random_walks

        data = make_random_walks(k=5, n_streams=40, n_timestamps=12, seed=1)
        path = tmp_path / "walks.npz"
        save_stream_dataset(data, path)
        assert main([
            "serve", "--input", str(path), "--division", "budget",
            "--allocator", "adaptive-user", "--w", "6", "--seed", "0",
        ]) == 0
