"""ISSUE 9 acceptance: pipelined multi-timestamp rounds ≡ per-timestamp.

``round_batch > 1`` lets the coordinator coalesce several closed
timestamps into one shard round — fused ``-many`` frames for the
schedule-division allocators, fused submit + per-timestamp advance for
the adaptive ones — and overlaps synthesis of round ``t`` with the
collection of round ``t+1``.  None of that may be observable in the
output: for a fixed seed every depth must synthesize the identical
stream, return the identical :class:`TimestepResult` sequence and agree
on the privacy ledger with the depth-1 protocol, on every executor and
under both allocator families, including a checkpoint/restore that cuts
a pipeline batch in half.
"""

import pytest

from repro.core.persistence import load_checkpoint, save_checkpoint
from repro.core.retrasyn import RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def stream():
    # 17 timestamps: not a multiple of either tested depth, so every
    # pipelined drive ends on a partial tail group.
    return make_random_walks(k=4, n_streams=90, n_timestamps=17, seed=2)


def _make(stream, executor, n_shards=2, **overrides):
    cfg = RetraSynConfig(
        epsilon=1.0, w=5, seed=42, n_shards=n_shards,
        shard_executor=executor, **overrides,
    )
    return ShardedOnlineRetraSyn(stream.grid, cfg, lam=5.0)


def _rounds(stream):
    return [
        (
            t,
            stream.participants_at(t),
            stream.newly_entered_at(t),
            stream.quitted_at(t),
            stream.n_active_at(t),
        )
        for t in range(stream.n_timestamps)
    ]


def _drive(stream, curator, depth):
    """Feed the whole stream in ``depth``-sized groups; fingerprint it."""
    rounds = _rounds(stream)
    results = []
    try:
        for lo in range(0, len(rounds), depth):
            results.extend(curator.process_timesteps(rounds[lo : lo + depth]))
        syn = curator.synthetic_dataset(stream.n_timestamps)
        cells = [(tr.start_time, list(tr.cells)) for tr in syn.trajectories]
        summary = (
            curator.accountant.summary()
            if curator.accountant is not None
            else None
        )
        return {"cells": cells, "results": results, "ledger": summary}
    finally:
        curator.close()


DEPTHS = [pytest.param(3, id="depth3"), pytest.param(8, id="depth8")]
EXECUTORS = ["serial", "process", "distributed"]


class TestDepthsBitIdentical:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_executor_sweep(self, stream, executor, depth):
        reference = _drive(stream, _make(stream, executor), 1)
        pipelined = _drive(stream, _make(stream, executor), depth)
        assert pipelined == reference

    @pytest.mark.parametrize(
        "overrides",
        [
            pytest.param(
                {"division": "population", "allocator": alloc},
                id=f"population-{alloc}",
            )
            for alloc in ("uniform", "sample", "random", "adaptive")
        ]
        + [
            pytest.param(
                {"division": "budget", "allocator": alloc},
                id=f"budget-{alloc}",
            )
            for alloc in ("uniform", "sample", "adaptive", "adaptive-user")
        ],
    )
    def test_allocator_families_distributed(self, stream, overrides):
        """Every allocator, fused frames where eligible, depth 8 ≡ 1.

        The schedule-division allocators take the fully fused path
        (``shard-submit-many`` + ``shard-advance-many``); the adaptive
        ones degrade to fused submit + per-timestamp advance; budget
        ``adaptive-user`` needs per-user remainders and stays on the
        per-timestamp protocol entirely.  All must be unobservable.
        """
        reference = _drive(
            stream, _make(stream, "distributed", **overrides), 1
        )
        pipelined = _drive(
            stream, _make(stream, "distributed", **overrides), 8
        )
        assert pipelined == reference

    def test_depth_beyond_stream_length(self, stream):
        whole = _drive(stream, _make(stream, "serial"), stream.n_timestamps + 5)
        reference = _drive(stream, _make(stream, "serial"), 1)
        assert whole == reference


class TestCheckpointMidPipelineBatch:
    @pytest.mark.parametrize("resume_depth", [1, 8])
    def test_restore_cuts_a_batch(self, stream, tmp_path, resume_depth):
        """Checkpoint after t=5 with depth 3, resume at a different depth.

        The restored engine continues from timestamp 6 — the middle of
        what an uninterrupted depth-8 drive would have treated as one
        fused group — and must still reproduce the depth-1 run exactly.
        """
        reference = _drive(stream, _make(stream, "distributed"), 1)

        rounds = _rounds(stream)
        first = _make(stream, "distributed")
        for lo in (0, 3):
            first.process_timesteps(rounds[lo : lo + 3])
        path = tmp_path / "pipelined.ckpt"
        save_checkpoint(first, path)
        first.close()

        resumed = load_checkpoint(path)
        results = []
        try:
            assert resumed._last_t == 5
            for lo in range(6, len(rounds), resume_depth):
                results.extend(
                    resumed.process_timesteps(rounds[lo : lo + resume_depth])
                )
            syn = resumed.synthetic_dataset(stream.n_timestamps)
            cells = [
                (tr.start_time, list(tr.cells)) for tr in syn.trajectories
            ]
            summary = resumed.accountant.summary()
        finally:
            resumed.close()

        assert cells == reference["cells"]
        assert results == reference["results"][6:]
        assert summary == reference["ledger"]


class TestPipelineValidation:
    def test_round_batch_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(round_batch=0)

    def test_non_consecutive_timestamps_rejected(self, stream):
        rounds = _rounds(stream)
        curator = _make(stream, "serial")
        try:
            with pytest.raises(ConfigurationError):
                curator.process_timesteps([rounds[0], rounds[2]])
        finally:
            curator.close()

    def test_gap_after_earlier_groups_rejected(self, stream):
        rounds = _rounds(stream)
        curator = _make(stream, "distributed")
        try:
            curator.process_timesteps(rounds[0:3])
            with pytest.raises(ConfigurationError):
                curator.process_timesteps(rounds[4:6])
        finally:
            curator.close()
