"""Tests for the end-to-end RetraSyn pipeline (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_defaults_match_table2(self):
        cfg = RetraSynConfig()
        assert cfg.epsilon == 1.0
        assert cfg.w == 20
        assert cfg.alpha == 8.0
        assert cfg.kappa == 5
        assert cfg.p_max == 0.6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"division": "bogus"},
            {"allocator": "bogus"},
            {"update_strategy": "bogus"},
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"w": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(**kwargs)

    def test_labels(self):
        assert RetraSynConfig(division="population").label == "RetraSyn_p"
        assert RetraSynConfig(division="budget").label == "RetraSyn_b"
        assert RetraSynConfig(update_strategy="all").label == "AllUpdate_p"
        assert RetraSynConfig(model_entering_quitting=False).label == "NoEQ_p"


class TestPopulationDivision:
    def test_privacy_guarantee_verified(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(walk_data)
        assert run.accountant is not None
        assert run.accountant.verify()
        assert run.accountant.summary()["max_window_spend"] <= 1.0 + 1e-9

    def test_each_user_reports_at_most_once_per_window(self, walk_data):
        # Object-mode ledger: the per-user spend history this test walks
        # only exists in the dict reference (columnar keeps the window).
        w = 4
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=w, seed=1, accountant_mode="object")
        ).run(walk_data)
        acc = run.accountant
        for uid in range(len(walk_data)):
            spends = sorted(
                r.timestamp for r in acc._spends.get(uid, [])
            )
            gaps = [b - a for a, b in zip(spends, spends[1:])]
            assert all(g >= w for g in gaps)

    def test_synthetic_size_tracks_real(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(walk_data)
        real = walk_data.active_counts()
        syn = run.synthetic.active_counts()
        assert np.array_equal(real, syn)

    def test_synthetic_respects_adjacency(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(walk_data)
        grid = walk_data.grid
        for traj in run.synthetic.trajectories:
            for a, b in traj.transitions():
                assert grid.are_adjacent(a, b)

    def test_reporters_counted(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(walk_data)
        assert len(run.reporters_per_timestamp) == walk_data.n_timestamps
        assert sum(run.reporters_per_timestamp) > 0

    def test_deterministic_given_seed(self, walk_data):
        r1 = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=42)).run(walk_data)
        r2 = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=42)).run(walk_data)
        c1 = [t.cells for t in r1.synthetic.trajectories]
        c2 = [t.cells for t in r2.synthetic.trajectories]
        assert c1 == c2

    def test_different_seeds_differ(self, walk_data):
        r1 = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=1)).run(walk_data)
        r2 = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=2)).run(walk_data)
        c1 = [t.cells for t in r1.synthetic.trajectories]
        c2 = [t.cells for t in r2.synthetic.trajectories]
        assert c1 != c2


class TestBudgetDivision:
    def test_privacy_guarantee_verified(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, division="budget", seed=0)
        ).run(walk_data)
        assert run.accountant.verify()

    def test_all_allocators_satisfy_privacy(self, walk_data):
        for allocator in ("adaptive", "uniform", "sample"):
            for division in ("budget", "population"):
                run = RetraSyn(
                    RetraSynConfig(
                        epsilon=1.0, w=4, division=division,
                        allocator=allocator, seed=0,
                    )
                ).run(walk_data)
                assert run.accountant.verify(), (allocator, division)

    def test_sample_reports_only_at_window_starts(self, walk_data):
        w = 5
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=w, division="budget",
                           allocator="sample", seed=0)
        ).run(walk_data)
        for t, n in enumerate(run.reporters_per_timestamp):
            if t % w != 0:
                assert n == 0


class TestTimings:
    def test_components_recorded(self, walk_data):
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=0)).run(walk_data)
        for key in ("user_side", "model_construction", "dmu", "synthesis"):
            assert key in run.timings
            assert run.timings[key] >= 0.0
        avg = run.avg_time_per_timestamp()
        assert avg["total"] > 0.0

    def test_exact_oracle_mode_runs(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, oracle_mode="exact", seed=0)
        ).run(walk_data)
        assert run.accountant.verify()


class TestModelQuality:
    def test_learns_lane_direction(self):
        """With generous budget the synthetic flow matches the lane."""
        from repro.datasets.synthetic import make_lane_stream

        data = make_lane_stream(k=4, n_streams=800, n_timestamps=20, seed=7)
        run = RetraSyn(RetraSynConfig(epsilon=6.0, w=2, seed=0)).run(data)
        # Count rightward vs leftward transitions along the lane row.
        right = left = 0
        for traj in run.synthetic.trajectories:
            for a, b in traj.transitions():
                ra, ca = data.grid.cell_to_rowcol(a)
                rb, cb = data.grid.cell_to_rowcol(b)
                if ra != 0 or rb != 0:
                    continue
                if cb == ca + 1:
                    right += 1
                elif cb == ca - 1:
                    left += 1
        assert right > 3 * max(left, 1)

    def test_tracking_privacy_optional(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, seed=0, track_privacy=False)
        ).run(walk_data)
        assert run.accountant is None
