"""Tests for the global mobility model (Eq. 6)."""

import numpy as np
import pytest

from repro.core.mobility_model import GlobalMobilityModel
from repro.exceptions import ConfigurationError
from repro.stream.state_space import TransitionStateSpace
from repro.geo.grid import unit_grid


@pytest.fixture
def model4(space4):
    return GlobalMobilityModel(space4)


class TestUpdates:
    def test_starts_empty(self, model4):
        assert np.all(model4.frequencies == 0)

    def test_set_all(self, model4, space4):
        f = np.linspace(0, 1, space4.size)
        model4.set_all(f)
        assert np.allclose(model4.frequencies, f)

    def test_set_all_copies(self, model4, space4):
        f = np.zeros(space4.size)
        model4.set_all(f)
        f[0] = 99.0
        assert model4.frequencies[0] == 0.0

    def test_shape_mismatch_rejected(self, model4):
        with pytest.raises(ConfigurationError):
            model4.set_all(np.zeros(3))
        with pytest.raises(ConfigurationError):
            model4.update_selected([0], np.zeros(3))

    def test_update_selected_only_touches_selection(self, model4, space4):
        base = np.full(space4.size, 0.5)
        model4.set_all(base)
        fresh = np.full(space4.size, 0.9)
        model4.update_selected([0, 2], fresh)
        f = model4.frequencies
        assert f[0] == 0.9 and f[2] == 0.9
        assert f[1] == 0.5 and f[3] == 0.5

    def test_empty_selection_noop(self, model4, space4):
        model4.set_all(np.full(space4.size, 0.5))
        v = model4.version
        model4.update_selected([], np.zeros(space4.size))
        assert model4.version == v

    def test_version_bumps(self, model4, space4):
        v0 = model4.version
        model4.set_all(np.zeros(space4.size))
        assert model4.version == v0 + 1
        model4.update_selected([1], np.ones(space4.size))
        assert model4.version == v0 + 2


class TestRowDistribution:
    def test_eq6_with_quit_mass(self, space4):
        """Pr(m_ij) = f_ij / (sum_out + f_iQ); Pr(quit|i) = f_iQ / (same)."""
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        origin = 5
        out = space4.out_move_indices(origin)
        f[out] = 1.0  # each outgoing move has frequency 1
        f[space4.index_of_quit(origin)] = 3.0
        model.set_all(f)
        probs, quit = model.row_distribution(origin)
        denom = len(out) + 3.0
        assert probs == pytest.approx(np.full(len(out), 1.0 / denom))
        assert quit == pytest.approx(3.0 / denom)
        assert probs.sum() + quit == pytest.approx(1.0)

    def test_negative_estimates_clipped(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        origin = 5
        out = space4.out_move_indices(origin)
        f[out[0]] = -0.5  # debiased estimates can be negative
        f[out[1]] = 1.0
        model.set_all(f)
        probs, _quit = model.row_distribution(origin)
        assert probs[0] == 0.0
        assert probs[1] == 1.0

    def test_massless_row_uniform(self, space4):
        model = GlobalMobilityModel(space4)
        probs, quit = model.row_distribution(7)
        assert probs == pytest.approx(np.full(probs.size, 1.0 / probs.size))
        assert quit == 0.0

    def test_no_eq_space_has_no_quit(self, space4_noeq):
        model = GlobalMobilityModel(space4_noeq)
        f = np.ones(space4_noeq.size)
        model.set_all(f)
        probs, quit = model.row_distribution(0)
        assert quit == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_cache_invalidated_on_update(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        f[space4.out_move_indices(0)[0]] = 1.0
        model.set_all(f)
        p1, _q = model.row_distribution(0)
        f2 = np.zeros(space4.size)
        f2[space4.out_move_indices(0)[1]] = 1.0
        model.set_all(f2)
        p2, _q = model.row_distribution(0)
        assert not np.allclose(p1, p2)


class TestEnterQuitDistributions:
    def test_enter_distribution_normalised(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        f[space4.index_of_enter(0)] = 3.0
        f[space4.index_of_enter(1)] = 1.0
        model.set_all(f)
        e = model.enter_distribution()
        assert e[0] == pytest.approx(0.75)
        assert e[1] == pytest.approx(0.25)
        assert e.sum() == pytest.approx(1.0)

    def test_empty_enter_uniform_fallback(self, space4):
        model = GlobalMobilityModel(space4)
        e = model.enter_distribution()
        assert e == pytest.approx(np.full(space4.n_cells, 1.0 / space4.n_cells))

    def test_quit_distribution(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        f[space4.index_of_quit(3)] = 2.0
        model.set_all(f)
        q = model.quit_distribution()
        assert q[3] == pytest.approx(1.0)
        assert q.sum() == pytest.approx(1.0)


class TestTransitionMatrix:
    def test_off_domain_zero(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.ones(space4.size)
        model.set_all(f)
        mat = model.transition_matrix()
        grid = unit_grid(4)
        for a in range(16):
            for b in range(16):
                if not grid.are_adjacent(a, b):
                    assert mat[a, b] == 0.0

    def test_rows_sum_to_one_minus_quit(self, space4):
        model = GlobalMobilityModel(space4)
        rng = np.random.default_rng(0)
        model.set_all(rng.random(space4.size))
        mat = model.transition_matrix()
        for origin in range(space4.n_cells):
            _p, quit = model.row_distribution(origin)
            assert mat[origin].sum() == pytest.approx(1.0 - quit)


class TestTransitionMatrixVectorized:
    """The padded assembly must match a per-origin row_distribution loop."""

    def _reference(self, model):
        n = model.space.n_cells
        mat = np.zeros((n, n))
        for origin in range(n):
            probs, _quit = model.row_distribution(origin)
            for dest, p in zip(model.space.out_destinations(origin), probs):
                mat[origin, dest] = p
        return mat

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_row_distribution_loop(self, space4, seed):
        model = GlobalMobilityModel(space4)
        rng = np.random.default_rng(seed)
        # Include negative estimates and exact zeros.
        model.set_all(rng.normal(0.2, 1.0, size=space4.size))
        np.testing.assert_allclose(
            model.transition_matrix(), self._reference(model)
        )

    def test_massless_and_quit_only_rows(self, space4):
        model = GlobalMobilityModel(space4)
        f = np.zeros(space4.size)
        f[space4.index_of_quit(5)] = 1.0  # row 5: all mass on quitting
        model.set_all(f)  # every other row: massless -> uniform
        np.testing.assert_allclose(
            model.transition_matrix(), self._reference(model)
        )

    def test_no_eq_space(self, space4_noeq):
        model = GlobalMobilityModel(space4_noeq)
        rng = np.random.default_rng(1)
        model.set_all(rng.random(space4_noeq.size))
        np.testing.assert_allclose(
            model.transition_matrix(), self._reference(model)
        )


class TestDirtyJournal:
    def test_up_to_date_version_is_clean(self, model4):
        assert model4.dirty_origins_since(model4.version).size == 0

    def test_set_all_invalidates_everything(self, model4, space4):
        v = model4.version
        model4.set_all(np.ones(space4.size))
        assert model4.dirty_origins_since(v) is None

    def test_update_selected_names_origin_rows(self, model4, space4):
        model4.set_all(np.ones(space4.size))
        v = model4.version
        idx = [space4.index_of_move(5, 6), space4.index_of_quit(9)]
        model4.update_selected(idx, np.full(space4.size, 2.0))
        assert model4.dirty_origins_since(v).tolist() == [5, 9]

    def test_enter_states_dirty_no_rows(self, model4, space4):
        model4.set_all(np.ones(space4.size))
        v = model4.version
        model4.update_selected(
            [space4.index_of_enter(3)], np.full(space4.size, 2.0)
        )
        assert model4.dirty_origins_since(v).size == 0

    def test_dirty_sets_accumulate_across_bumps(self, model4, space4):
        model4.set_all(np.ones(space4.size))
        v = model4.version
        f = np.full(space4.size, 2.0)
        model4.update_selected([space4.index_of_move(1, 2)], f)
        model4.update_selected([space4.index_of_move(2, 1)], f)
        assert model4.dirty_origins_since(v).tolist() == [1, 2]

    def test_future_version_unknown(self, model4):
        assert model4.dirty_origins_since(model4.version + 1) is None

    def test_journal_overrun_degrades_to_full(self, model4, space4):
        from repro.core.mobility_model import _DIRTY_LOG_LIMIT

        model4.set_all(np.ones(space4.size))
        v = model4.version
        f = np.full(space4.size, 2.0)
        for _ in range(_DIRTY_LOG_LIMIT + 1):
            model4.update_selected([space4.index_of_move(0, 1)], f)
        assert model4.dirty_origins_since(v) is None
        # A recent enough baseline is still answerable.
        assert model4.dirty_origins_since(model4.version - 1).tolist() == [0]


class TestModelRecovery:
    def test_learns_lane_transitions_from_clean_counts(self, lane_data):
        """Feeding true frequencies must recover the deterministic lane."""
        space = TransitionStateSpace(lane_data.grid)
        counts = np.zeros(space.size)
        n = 0
        for t in range(lane_data.n_timestamps):
            for _uid, s in lane_data.participants_at(t):
                counts[space.index_of(s)] += 1
                n += 1
        model = GlobalMobilityModel(space)
        model.set_all(counts / n)
        # From any lane cell (row 0, col < k-1), the dominant move is +1 col.
        k = lane_data.grid.k
        for col in range(k - 2):
            origin = lane_data.grid.rowcol_to_cell(0, col)
            probs = model.movement_probs(origin)
            dests = space.out_destinations(origin)
            best = dests[int(np.argmax(probs))]
            assert best == lane_data.grid.rowcol_to_cell(0, col + 1)
