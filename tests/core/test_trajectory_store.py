"""Tests for the columnar trajectory store.

The store must round-trip bit-identical ``CellTrajectory`` views against a
plain object reference driven by the same operation sequence, grow
transparently in both dimensions, and serve array accessors that agree
with object-side computations.
"""

import pickle

import numpy as np
import pytest

from repro.core.synthesis import Synthesizer
from repro.core.trajectory_store import TrajectoryStore
from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.trajectory import CellTrajectory


class _ObjectReference:
    """List-of-objects twin driven by the same operations as the store."""

    def __init__(self):
        self.trajs: list[CellTrajectory] = []

    def append_streams(self, t, cells):
        rows = []
        for c in np.atleast_1d(cells):
            rows.append(len(self.trajs))
            self.trajs.append(
                CellTrajectory(int(t), [int(c)], user_id=len(self.trajs))
            )
        return rows

    def append_cells(self, rows, cells):
        for r, c in zip(rows, cells):
            self.trajs[r].cells.append(int(c))

    def pop_last(self, rows):
        for r in rows:
            self.trajs[r].cells.pop()

    def kill(self, rows):
        for r in rows:
            self.trajs[r].terminated = True


def _random_walk(seed, n_rounds=40, n_cells=25):
    """Drive store and reference through one random operation sequence."""
    rng = np.random.default_rng(seed)
    store = TrajectoryStore(initial_capacity=4, initial_horizon=2)
    ref = _ObjectReference()
    live: list[int] = []
    for t in range(n_rounds):
        n_new = int(rng.integers(0, 6))
        cells = rng.integers(0, n_cells, size=n_new)
        rows = store.append_streams(t, cells)
        assert ref.append_streams(t, cells) == rows.tolist()
        live.extend(rows.tolist())
        if live:
            advance = np.asarray(
                [r for r in live if rng.random() < 0.8], dtype=np.int64
            )
            new_cells = rng.integers(0, n_cells, size=advance.size)
            store.append_cells(advance, new_cells)
            ref.append_cells(advance, new_cells)
            lengths = store.lengths_of(np.asarray(live, dtype=np.int64))
            droppable = [
                r for r, ln in zip(live, lengths) if ln > 1 and rng.random() < 0.1
            ]
            store.pop_last(np.asarray(droppable, dtype=np.int64))
            ref.pop_last(droppable)
            dead = [r for r in live if rng.random() < 0.15]
            store.kill(np.asarray(dead, dtype=np.int64))
            ref.kill(dead)
            live = [r for r in live if r not in set(dead)]
    return store, ref


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_views_bit_identical_to_object_reference(self, seed):
        store, ref = _random_walk(seed)
        assert store.n_total == len(ref.trajs)
        for row, expected in enumerate(ref.trajs):
            view = store.view(row)
            assert view.start_time == expected.start_time
            assert view.cells == expected.cells
            assert view.user_id == expected.user_id
            assert view.terminated == expected.terminated

    def test_views_do_not_alias_the_buffer(self):
        store = TrajectoryStore()
        store.append_streams(0, [3])
        view = store.view(0)
        view.cells.append(99)
        assert store.view(0).cells == [3]

    @pytest.mark.parametrize("seed", range(3))
    def test_array_accessors_match_object_computation(self, seed):
        store, ref = _random_walk(seed)
        horizon = max(tr.end_time for tr in ref.trajs) + 1
        assert store.lengths().tolist() == [len(tr) for tr in ref.trajs]
        for t in range(horizon):
            expected = [tr.cell_at(t) for tr in ref.trajs if tr.active_at(t)]
            assert store.cells_at(t).tolist() == expected
            counts = np.bincount(expected, minlength=25)
            np.testing.assert_array_equal(store.counts_by_cell(t, 25), counts)

    @pytest.mark.parametrize("seed", range(3))
    def test_counts_matrix_matches_stream_dataset_loop(self, seed):
        from repro.geo.grid import unit_grid
        from repro.stream.stream import StreamDataset

        store, ref = _random_walk(seed)
        grid = unit_grid(5)  # 25 cells, matching _random_walk's domain
        data = StreamDataset(grid, ref.trajs, name="ref")
        np.testing.assert_array_equal(
            store.counts_matrix(data.n_timestamps, grid.n_cells),
            data.cell_counts_matrix(),
        )
        # Clipping: a shorter horizon drops the tail identically.
        short = StreamDataset(
            grid,
            [CellTrajectory(t.start_time, list(t.cells)) for t in ref.trajs],
            n_timestamps=max(1, data.n_timestamps // 2),
            name="short",
        )
        np.testing.assert_array_equal(
            store.counts_matrix(short.n_timestamps, grid.n_cells),
            short.cell_counts_matrix(),
        )


class TestGrowthAndGuards:
    def test_row_and_horizon_doubling(self):
        store = TrajectoryStore(initial_capacity=2, initial_horizon=2)
        rows = store.append_streams(0, np.zeros(9, dtype=np.int64))
        for _ in range(10):
            store.append_cells(rows, np.ones(rows.size, dtype=np.int64))
        assert store.n_total == 9
        assert (store.lengths() == 11).all()
        assert store.view(4).cells == [0] + [1] * 10

    def test_pop_last_refuses_single_cell_streams(self):
        store = TrajectoryStore()
        rows = store.append_streams(0, [1, 2])
        with pytest.raises(DatasetError):
            store.pop_last(rows)

    def test_view_bounds(self):
        store = TrajectoryStore()
        with pytest.raises(DatasetError):
            store.view(0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TrajectoryStore(initial_capacity=0)

    def test_kill_is_idempotent(self):
        store = TrajectoryStore()
        rows = store.append_streams(0, [1])
        store.kill(rows)
        store.kill(rows)
        assert store.n_live == 0
        assert store.view(0).terminated

    def test_empty_store_accessors(self):
        store = TrajectoryStore()
        assert store.n_live == 0
        assert store.live_rows().size == 0
        assert store.cells_at(0).size == 0
        assert store.counts_matrix(5, 3).shape == (5, 3)
        assert store.all_views() == []


class TestPickling:
    def test_pickle_round_trip(self):
        store, ref = _random_walk(7)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.n_total == store.n_total
        for row in range(store.n_total):
            a, b = store.view(row), clone.view(row)
            assert (a.start_time, a.cells, a.terminated) == (
                b.start_time,
                b.cells,
                b.terminated,
            )


class TestEngineIntegration:
    def test_object_engine_store_views_match_live_lists(self, space4, rng):
        from repro.core.mobility_model import GlobalMobilityModel

        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        syn = Synthesizer(model, lam=8.0, rng=0)
        syn.spawn_from_entering(0, 50)
        for t in range(1, 10):
            syn.step(t, target_size=50 - t)
        # The engine's ordered object views and the store's creation-order
        # views describe the same database.
        by_id = {tr.user_id: tr for tr in syn.all_trajectories()}
        assert sorted(by_id) == list(range(syn.store.n_total))
        for row in range(syn.store.n_total):
            view = syn.store.view(row)
            assert view.cells == by_id[row].cells
            assert view.start_time == by_id[row].start_time
        np.testing.assert_array_equal(
            syn.live_last_cells(),
            np.asarray([tr.last_cell for tr in syn.live_streams]),
        )
