"""Tests for the sharded collection engine."""

import numpy as np
import pytest

from repro.core.online import OnlineRetraSyn
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn, shard_of
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_stream():
    return make_random_walks(k=4, n_streams=120, n_timestamps=24, seed=0)


class TestPartition:
    def test_covers_all_shards(self):
        shards = {shard_of(uid, 4) for uid in range(1000)}
        assert shards == {0, 1, 2, 3}

    def test_deterministic_and_disjoint(self):
        for uid in range(200):
            first = shard_of(uid, 8)
            assert first == shard_of(uid, 8)
            assert 0 <= first < 8

    def test_k1_maps_everyone_to_zero(self):
        assert all(shard_of(uid, 1) == 0 for uid in range(50))

    def test_not_correlated_with_parity(self):
        # A modulo partition would put all even uids in shard 0 of K=2;
        # the multiplicative hash must mix parity into both shards.
        even = {shard_of(uid, 2) for uid in range(0, 100, 2)}
        assert even == {0, 1}


class TestConfigWiring:
    def test_invalid_n_shards(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(n_shards=0)

    def test_invalid_executor(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(shard_executor="threads")

    def test_invalid_oracle_mode(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(oracle_mode="bogus")

    def test_run_routes_through_sharded_engine(self, small_stream):
        cfg = RetraSynConfig(epsilon=1.0, w=5, n_shards=3, seed=0)
        run = RetraSyn(cfg).run(small_stream)
        assert run.synthetic.n_timestamps == small_stream.n_timestamps
        assert run.accountant.verify()


class TestShardedCurator:
    def _drive(self, curator, data):
        for t in range(data.n_timestamps):
            curator.process_timestep(
                t,
                participants=data.participants_at(t),
                newly_entered=data.newly_entered_at(t),
                quitted=data.quitted_at(t),
                n_real_active=data.n_active_at(t),
            )
        return curator

    def test_same_interface_as_online(self, small_stream):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=0)
        curator = ShardedOnlineRetraSyn(
            small_stream.grid, cfg, lam=5.0, n_shards=4
        )
        self._drive(curator, small_stream)
        snapshot = curator.live_snapshot()
        assert snapshot.dtype == np.int64
        run = curator.result(small_stream.n_timestamps)
        assert run.synthetic.n_timestamps == small_stream.n_timestamps
        assert len(run.reporters_per_timestamp) == small_stream.n_timestamps

    def test_no_user_double_spends_within_window(self, small_stream):
        """The hash partition must preserve per-user w-event accounting."""
        cfg = RetraSynConfig(epsilon=1.0, w=6, n_shards=4, seed=1)
        run = RetraSyn(cfg).run(small_stream)
        acc = run.accountant
        assert acc.verify()
        assert acc.max_window_spend() <= cfg.epsilon + 1e-9

    def test_each_user_reports_in_one_shard_only(self, small_stream):
        """Reports of one user always land on the same shard's tracker."""
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=0)
        curator = ShardedOnlineRetraSyn(
            small_stream.grid, cfg, lam=5.0, n_shards=4
        )
        self._drive(curator, small_stream)
        seen: dict[int, int] = {}
        for k, shard in enumerate(curator._shards):
            for uid in shard.tracker.known_users():
                assert seen.setdefault(uid, k) == k, uid
                assert shard_of(uid, 4) == k

    def test_budget_division_sharded(self, small_stream):
        cfg = RetraSynConfig(
            epsilon=1.0, w=5, division="budget", n_shards=3, seed=0
        )
        run = RetraSyn(cfg).run(small_stream)
        assert run.accountant.verify()
        assert sum(run.reporters_per_timestamp) > 0

    def test_random_allocator_sharded(self, small_stream):
        cfg = RetraSynConfig(
            epsilon=1.0, w=5, allocator="random", n_shards=3, seed=0
        )
        run = RetraSyn(cfg).run(small_stream)
        assert run.accountant.verify()
        assert sum(run.reporters_per_timestamp) > 0


class TestShardCountInvariance:
    """K=1 and K=4 must produce equivalent aggregate distributions."""

    @pytest.fixture(scope="class")
    def runs(self, small_stream):
        out = {}
        for n_shards in (1, 4):
            totals, densities = [], []
            for seed in range(3):
                cfg = RetraSynConfig(epsilon=1.0, w=5, seed=seed)
                curator = ShardedOnlineRetraSyn(
                    small_stream.grid, cfg, lam=5.0, n_shards=n_shards
                )
                for t in range(small_stream.n_timestamps):
                    curator.process_timestep(
                        t,
                        participants=small_stream.participants_at(t),
                        newly_entered=small_stream.newly_entered_at(t),
                        quitted=small_stream.quitted_at(t),
                        n_real_active=small_stream.n_active_at(t),
                    )
                totals.append(sum(curator.reporters_per_timestamp))
                syn = curator.synthetic_dataset(small_stream.n_timestamps)
                hist = np.zeros(small_stream.grid.n_cells)
                for t in range(small_stream.n_timestamps):
                    cells = syn.cells_at(t)
                    hist += np.bincount(
                        cells, minlength=small_stream.grid.n_cells
                    )
                densities.append(hist / max(hist.sum(), 1.0))
            out[n_shards] = {
                "mean_reporters": np.mean(totals),
                "density": np.mean(densities, axis=0),
            }
        return out

    def test_reporter_volume_matches(self, runs):
        a, b = runs[1]["mean_reporters"], runs[4]["mean_reporters"]
        assert a == pytest.approx(b, rel=0.25), (a, b)

    def test_many_small_shards_do_not_collapse(self):
        """Stochastic rounding: tiny partitions must still sample reporters.

        With deterministic per-shard round(), K=8 over a 60-user stream
        (a handful of eligible users per shard) would round every shard's
        sample size to zero and the engine would collect nothing.
        """
        data = make_random_walks(k=4, n_streams=60, n_timestamps=24, seed=0)
        base = RetraSyn(RetraSynConfig(epsilon=1.0, w=5, seed=3)).run(data)
        shard = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, n_shards=8, seed=3)
        ).run(data)
        a = sum(base.reporters_per_timestamp)
        b = sum(shard.reporters_per_timestamp)
        assert b > 0
        assert b == pytest.approx(a, rel=0.35), (a, b)

    def test_density_distributions_match(self, runs):
        from repro.metrics.divergence import jensen_shannon_divergence

        jsd = jensen_shannon_divergence(runs[1]["density"], runs[4]["density"])
        assert jsd < 0.15, jsd


class TestProcessExecutor:
    def test_process_matches_serial(self, small_stream):
        """Both executors share shard seeds => identical outputs."""
        outs = {}
        for executor in ("serial", "process"):
            cfg = RetraSynConfig(
                epsilon=1.0, w=5, n_shards=2, shard_executor=executor, seed=7
            )
            run = RetraSyn(cfg).run(small_stream)
            outs[executor] = run
        assert (
            outs["serial"].reporters_per_timestamp
            == outs["process"].reporters_per_timestamp
        )
        assert len(outs["serial"].synthetic) == len(outs["process"].synthetic)
        assert outs["process"].accountant.verify()

    def test_close_is_idempotent(self, small_stream):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=0)
        curator = ShardedOnlineRetraSyn(
            small_stream.grid, cfg, lam=5.0, n_shards=2, executor="process"
        )
        curator.close()
        curator.close()


class TestK1MatchesUnsharded:
    """ShardedOnlineRetraSyn(K=1) vs OnlineRetraSyn: same distributions."""

    def test_reporters_and_densities_agree(self, small_stream):
        from repro.metrics.divergence import jensen_shannon_divergence

        totals = {"sharded": [], "online": []}
        densities = {"sharded": [], "online": []}
        for seed in range(3):
            cfg = RetraSynConfig(epsilon=2.0, w=5, seed=seed)
            sharded = ShardedOnlineRetraSyn(
                small_stream.grid, cfg, lam=5.0, n_shards=1
            )
            online = OnlineRetraSyn(small_stream.grid, cfg, lam=5.0)
            for curator, key in ((sharded, "sharded"), (online, "online")):
                for t in range(small_stream.n_timestamps):
                    curator.process_timestep(
                        t,
                        participants=small_stream.participants_at(t),
                        newly_entered=small_stream.newly_entered_at(t),
                        quitted=small_stream.quitted_at(t),
                        n_real_active=small_stream.n_active_at(t),
                    )
                totals[key].append(sum(curator.reporters_per_timestamp))
                syn = curator.synthetic_dataset(small_stream.n_timestamps)
                hist = np.zeros(small_stream.grid.n_cells)
                for t in range(small_stream.n_timestamps):
                    hist += np.bincount(
                        syn.cells_at(t), minlength=small_stream.grid.n_cells
                    )
                densities[key].append(hist / max(hist.sum(), 1.0))
        assert np.mean(totals["sharded"]) == pytest.approx(
            np.mean(totals["online"]), rel=0.25
        )
        # The synthetic location distributions must agree on average.
        jsd = jensen_shannon_divergence(
            np.mean(densities["sharded"], axis=0),
            np.mean(densities["online"], axis=0),
        )
        assert jsd < 0.15, jsd


class TestDMUPrefilter:
    """Shard-local never-observed pruning of the DMU candidate set."""

    def test_candidates_shrink_on_structured_flows(self):
        from repro.datasets.synthetic import make_lane_stream

        data = make_lane_stream(k=5, n_streams=200, n_timestamps=25, seed=7)
        cfg = RetraSynConfig(
            epsilon=2.0, w=5, n_shards=3, dmu_prefilter=True, seed=0
        )
        curator = ShardedOnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(data.n_timestamps):
            curator.process_timestep(
                t,
                participants=data.participants_at(t),
                newly_entered=data.newly_entered_at(t),
                quitted=data.quitted_at(t),
                n_real_active=data.n_active_at(t),
            )
        n_candidates = int(curator._dmu_candidates.sum())
        # Lane flows touch a thin slice of the transition space: the
        # prefilter must prune a substantial share of states.
        assert 0 < n_candidates < curator.space.size
        assert curator.accountant.verify()

    def test_prefilter_keeps_utility_close(self, small_stream):
        from repro.metrics.divergence import jensen_shannon_divergence

        densities = {}
        for prefilter in (False, True):
            hists = []
            for seed in range(3):
                cfg = RetraSynConfig(
                    epsilon=2.0, w=5, n_shards=3,
                    dmu_prefilter=prefilter, seed=seed,
                )
                run = RetraSyn(cfg).run(small_stream)
                hist = np.zeros(small_stream.grid.n_cells)
                for t in range(small_stream.n_timestamps):
                    hist += np.bincount(
                        run.synthetic.cells_at(t),
                        minlength=small_stream.grid.n_cells,
                    )
                hists.append(hist / max(hist.sum(), 1.0))
            densities[prefilter] = np.mean(hists, axis=0)
        jsd = jensen_shannon_divergence(densities[False], densities[True])
        assert jsd < 0.15, jsd

    def test_support_mask_rule(self):
        from repro.core.online import support_mask

        ones = np.array([0.0, 10.0, 500.0])
        # n=1000, q~0.269 at eps=1: floor ~ 269 + 3*sqrt(196) ~ 311
        q = 1.0 / (np.exp(1.0) + 1.0)
        mask = support_mask(ones, 1000, q)
        assert mask.tolist() == [False, False, True]
        assert not support_mask(ones, 0, q).any()
