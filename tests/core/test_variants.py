"""Tests for the AllUpdate and NoEQ ablation variants."""

import numpy as np

from repro.core.variants import make_all_update, make_no_eq, make_retrasyn
from repro.metrics.length import length_error
from repro.metrics.divergence import LN2


class TestFactories:
    def test_labels(self):
        assert make_retrasyn("population").config.label == "RetraSyn_p"
        assert make_retrasyn("budget").config.label == "RetraSyn_b"
        assert make_all_update("population").config.label == "AllUpdate_p"
        assert make_no_eq("budget").config.label == "NoEQ_b"

    def test_all_update_sets_strategy(self):
        assert make_all_update("budget").config.update_strategy == "all"

    def test_no_eq_disables_eq(self):
        assert make_no_eq("population").config.model_entering_quitting is False


class TestAllUpdate:
    def test_updates_whole_model_every_round(self, walk_data):
        run = make_all_update("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        space_size = None
        for n_sig, n_rep in zip(
            run.significant_per_timestamp, run.reporters_per_timestamp
        ):
            if n_rep > 0:
                if space_size is None:
                    space_size = n_sig
                assert n_sig == space_size  # always the full space

    def test_dmu_updates_fewer(self, walk_data):
        """RetraSyn's DMU must select strictly fewer states on average."""
        all_run = make_all_update("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        dmu_run = make_retrasyn("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        avg_all = np.mean([n for n in all_run.significant_per_timestamp if n > 0])
        dmu_counts = [
            n for n, r in zip(
                dmu_run.significant_per_timestamp, dmu_run.reporters_per_timestamp
            ) if r > 0
        ]
        assert np.mean(dmu_counts[1:]) < avg_all  # skip the init round

    def test_privacy_still_holds(self, walk_data):
        run = make_all_update("budget", epsilon=1.0, w=4, seed=0).run(walk_data)
        assert run.accountant.verify()


class TestNoEQ:
    def test_streams_never_terminate(self, walk_data):
        run = make_no_eq("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        assert all(not t.terminated for t in run.synthetic.trajectories)

    def test_all_streams_start_at_zero(self, walk_data):
        run = make_no_eq("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        assert all(t.start_time == 0 for t in run.synthetic.trajectories)

    def test_size_not_adjusted(self, walk_data):
        run = make_no_eq("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        counts = run.synthetic.active_counts()
        assert np.all(counts == counts[0])  # constant population

    def test_length_error_pinned_at_ln2(self, walk_data):
        """Paper Table IV: NoEQ length error equals ln 2 (disjoint support)."""
        run = make_no_eq("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        err = length_error(walk_data, run.synthetic)
        assert err > 0.6  # near the ln2 = 0.6931 ceiling

    def test_retrasyn_length_error_far_below_ln2(self, walk_data):
        run = make_retrasyn("population", epsilon=1.0, w=5, seed=0).run(walk_data)
        err = length_error(walk_data, run.synthetic)
        assert err < LN2 * 0.8

    def test_privacy_still_holds(self, walk_data):
        run = make_no_eq("population", epsilon=1.0, w=4, seed=0).run(walk_data)
        assert run.accountant.verify()
