"""Tests for the user-driven 'random' population strategy (Section III-E)."""

import numpy as np
import pytest

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_random_requires_population(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(allocator="random", division="budget")

    def test_random_population_accepted(self):
        cfg = RetraSynConfig(allocator="random", division="population")
        assert cfg.allocator == "random"


class TestBehaviour:
    def test_privacy_holds(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=4, allocator="random", seed=0)
        ).run(walk_data)
        assert run.accountant.verify()

    def test_report_gaps_exactly_w(self, walk_data):
        """The phase rule yields per-user report gaps of exactly w.

        Uses the object-mode reference ledger: only it retains full
        per-user spend histories (the columnar ledger keeps the live
        window plus aggregates).
        """
        w = 4
        run = RetraSyn(
            RetraSynConfig(
                epsilon=1.0, w=w, allocator="random", seed=1,
                accountant_mode="object",
            )
        ).run(walk_data)
        acc = run.accountant
        multi = 0
        for uid in range(len(walk_data)):
            spends = sorted(r.timestamp for r in acc._spends.get(uid, []))
            gaps = [b - a for a, b in zip(spends, spends[1:])]
            if gaps:
                multi += 1
                assert all(g == w for g in gaps), (uid, spends)
        assert multi > 0  # some users reported more than once

    def test_no_user_wastage_for_long_streams(self):
        """Every user whose stream covers a full window reports at least once
        (the 'less user wastage' property the paper attributes to Random)."""
        from repro.datasets.synthetic import make_random_walks

        w = 4
        data = make_random_walks(
            k=4, n_streams=60, n_timestamps=30, mean_length=20.0, seed=3
        )
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=w, allocator="random", seed=0)
        ).run(data)
        acc = run.accountant
        for traj in data.trajectories:
            # Streams active for >= w+1 consecutive timestamps inside the
            # horizon must hit their report phase at least once.
            span = min(traj.end_time + 1, data.n_timestamps) - traj.start_time
            if span >= w + 1:
                assert acc.total_spend(traj.user_id) > 0, traj.user_id

    def test_steadier_reporter_counts_than_sample(self, walk_data):
        """Random spreads reporters over timestamps; Sample bursts them."""
        runs = {}
        for allocator in ("random", "sample"):
            runs[allocator] = RetraSyn(
                RetraSynConfig(epsilon=1.0, w=5, allocator=allocator, seed=0)
            ).run(walk_data)
        random_cv = np.std(runs["random"].reporters_per_timestamp)
        sample_cv = np.std(runs["sample"].reporters_per_timestamp)
        assert random_cv < sample_cv

    def test_deterministic_given_seed(self, walk_data):
        r1 = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=4, allocator="random", seed=5)
        ).run(walk_data)
        r2 = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=4, allocator="random", seed=5)
        ).run(walk_data)
        assert [t.cells for t in r1.synthetic.trajectories] == [
            t.cells for t in r2.synthetic.trajectories
        ]
