"""Tests for model/config persistence and curator checkpoint/resume."""

import numpy as np
import pytest

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.online import OnlineRetraSyn
from repro.core.persistence import (
    config_from_dict,
    config_to_dict,
    load_checkpoint,
    load_config,
    load_model,
    save_checkpoint,
    save_config,
    save_model,
)
from repro.core.retrasyn import RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import ConfigurationError, DatasetError


class TestModelRoundTrip:
    def test_frequencies_preserved(self, space4, rng, tmp_path):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(loaded.frequencies, model.frequencies)

    def test_space_geometry_preserved(self, space4, tmp_path):
        model = GlobalMobilityModel(space4)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.space.grid == space4.grid
        assert loaded.space.include_eq == space4.include_eq
        assert loaded.space.size == space4.size

    def test_noeq_space_round_trip(self, space4_noeq, tmp_path):
        model = GlobalMobilityModel(space4_noeq)
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.space.include_eq is False

    def test_distributions_survive(self, space4, rng, tmp_path):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded = load_model(path)
        for origin in range(space4.n_cells):
            p1, q1 = model.row_distribution(origin)
            p2, q2 = loaded.row_distribution(origin)
            assert np.allclose(p1, p2)
            assert q1 == pytest.approx(q2)
        assert np.allclose(model.enter_distribution(), loaded.enter_distribution())

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_model(tmp_path / "absent.npz")

    def test_resume_synthesis_from_saved_model(self, space4, rng, tmp_path):
        """A restored model must drive a synthesizer identically."""
        from repro.core.synthesis import Synthesizer

        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        save_model(model, tmp_path / "m.npz")
        loaded = load_model(tmp_path / "m.npz")

        def simulate(m, seed):
            syn = Synthesizer(m, lam=10.0, rng=seed)
            syn.spawn_from_entering(0, 50)
            for t in range(1, 8):
                syn.step(t)
            return [tr.cells for tr in syn.all_trajectories()]

        assert simulate(model, 7) == simulate(loaded, 7)


class TestConfigRoundTrip:
    def test_dict_round_trip(self):
        cfg = RetraSynConfig(
            epsilon=1.5, w=12, division="budget", allocator="uniform",
            engine="vectorized", seed=42,
        )
        restored = config_from_dict(config_to_dict(cfg))
        assert restored == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = RetraSynConfig(epsilon=0.5, w=30, allocator="sample", seed=1)
        path = tmp_path / "cfg.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_generator_seed_dropped(self):
        import numpy as np

        cfg = RetraSynConfig(seed=np.random.default_rng(0))
        d = config_to_dict(cfg)
        assert d["seed"] is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"epsilon": 1.0, "bogus": True})

    def test_invalid_values_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"epsilon": -1.0}')
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_config(tmp_path / "absent.json")


class TestCheckpointResume:
    """ISSUE 2 satellite: checkpoint → resume must be bitwise-lossless.

    A run interrupted at ``t = T/2`` and resumed from its checkpoint must
    synthesize the identical stream — same trajectories, same privacy
    ledger — as a run that was never interrupted.  The checkpoint
    therefore has to capture *everything*: rng state, model, live
    synthetic streams, per-shard trackers, allocator feedback and the
    accountant.
    """

    @pytest.fixture(scope="class")
    def data(self):
        return make_random_walks(k=4, n_streams=100, n_timestamps=20, seed=4)

    def _step(self, curator, data, t):
        curator.process_timestep(
            t,
            participants=data.participants_at(t),
            newly_entered=data.newly_entered_at(t),
            quitted=data.quitted_at(t),
            n_real_active=data.n_active_at(t),
        )

    def _fingerprint(self, curator, data):
        syn = curator.synthetic_dataset(data.n_timestamps)
        return [(tr.start_time, list(tr.cells)) for tr in syn.trajectories]

    def _run_with_interruption(self, data, make_curator, tmp_path, half):
        # Uninterrupted reference run.
        ref = make_curator()
        for t in range(data.n_timestamps):
            self._step(ref, data, t)
        reference = self._fingerprint(ref, data)
        ref_summary = ref.accountant.summary()
        if hasattr(ref, "close"):
            ref.close()

        # Interrupted run: checkpoint at `half`, discard, resume, finish.
        first = make_curator()
        for t in range(half):
            self._step(first, data, t)
        path = tmp_path / "curator.ckpt"
        save_checkpoint(first, path)
        if hasattr(first, "close"):
            first.close()
        del first

        resumed = load_checkpoint(path)
        assert resumed._last_t == half - 1
        for t in range(half, data.n_timestamps):
            self._step(resumed, data, t)
        result = self._fingerprint(resumed, data)
        res_summary = resumed.accountant.summary()
        if hasattr(resumed, "close"):
            resumed.close()

        assert result == reference
        assert res_summary == ref_summary

    def test_online_curator_roundtrip(self, data, tmp_path):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=17)
        self._run_with_interruption(
            data, lambda: OnlineRetraSyn(data.grid, cfg, lam=5.0),
            tmp_path, half=data.n_timestamps // 2,
        )

    def test_sharded_serial_roundtrip(self, data, tmp_path):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=17, n_shards=3)
        self._run_with_interruption(
            data, lambda: ShardedOnlineRetraSyn(data.grid, cfg, lam=5.0),
            tmp_path, half=data.n_timestamps // 2,
        )

    def test_sharded_process_roundtrip(self, data, tmp_path):
        """Shard state living in worker processes must survive the trip."""
        cfg = RetraSynConfig(
            epsilon=1.0, w=5, seed=17, n_shards=2, shard_executor="process"
        )
        self._run_with_interruption(
            data, lambda: ShardedOnlineRetraSyn(data.grid, cfg, lam=5.0),
            tmp_path, half=data.n_timestamps // 2,
        )

    def test_resumed_accountant_keeps_enforcing(self, data, tmp_path):
        """The restored ledger still refuses over-budget spends."""
        from repro.exceptions import PrivacyBudgetError

        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=3)
        curator = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(6):
            self._step(curator, data, t)
        path = tmp_path / "c.ckpt"
        save_checkpoint(curator, path)
        resumed = load_checkpoint(path)
        spenders = [
            uid for uid in resumed.accountant.user_ids()
            if resumed.accountant.window_spend(uid, 5) > 0
        ]
        assert spenders
        for uid in spenders[:5]:
            assert resumed.accountant.window_spend(
                uid, 5
            ) == curator.accountant.window_spend(uid, 5)
        # Strict mode must survive the round trip: a spend that would
        # overflow the window is refused, not recorded.
        with pytest.raises(PrivacyBudgetError):
            resumed.accountant.spend(spenders[0], 5, cfg.epsilon)

    def test_checkpoint_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_checkpoint_version_mismatch(self, data, tmp_path):
        import pickle

        path = tmp_path / "bad.ckpt"
        with open(path, "wb") as fh:
            pickle.dump({"version": 999}, fh)
        with pytest.raises(DatasetError):
            load_checkpoint(path)


class TestCheckpointRotation:
    """``keep > 1``: timestamped generations, newest-valid fallback."""

    @pytest.fixture(scope="class")
    def data(self):
        return make_random_walks(k=4, n_streams=60, n_timestamps=12, seed=4)

    def _curator_at(self, data, t_stop):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=17)
        curator = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(t_stop):
            curator.process_timestep(
                t,
                participants=data.participants_at(t),
                newly_entered=data.newly_entered_at(t),
                quitted=data.quitted_at(t),
                n_real_active=data.n_active_at(t),
            )
        return curator

    def test_keep_one_writes_the_bare_path(self, data, tmp_path):
        from repro.core.persistence import checkpoint_candidates

        path = tmp_path / "c.ckpt"
        save_checkpoint(self._curator_at(data, 3), path, keep=1)
        assert path.exists()
        assert checkpoint_candidates(path) == [path]

    def test_generations_rotate_and_prune(self, data, tmp_path):
        from repro.core.persistence import checkpoint_candidates

        path = tmp_path / "c.ckpt"
        for t_stop in (2, 4, 6, 8):
            save_checkpoint(self._curator_at(data, t_stop), path, keep=3)
        candidates = checkpoint_candidates(path)
        generations = [p for p in candidates if p.name != path.name]
        assert len(generations) == 3  # the oldest was pruned
        # lexicographic order of the zero-padded stamps == chronological
        assert generations == sorted(generations, reverse=True)
        assert load_checkpoint(path)._last_t == 7  # newest wins

    def test_corrupt_newest_falls_back_to_previous(self, data, tmp_path):
        from repro.core.persistence import checkpoint_candidates

        path = tmp_path / "c.ckpt"
        save_checkpoint(self._curator_at(data, 4), path, keep=3)
        save_checkpoint(self._curator_at(data, 6), path, keep=3)
        newest = checkpoint_candidates(path)[0]
        newest.write_bytes(b"torn write: not a pickle")
        with pytest.warns(RuntimeWarning, match="skipping unreadable"):
            resumed = load_checkpoint(path)
        assert resumed._last_t == 3  # the intact previous generation

    def test_all_generations_corrupt_raises(self, data, tmp_path):
        from repro.core.persistence import checkpoint_candidates

        path = tmp_path / "c.ckpt"
        save_checkpoint(self._curator_at(data, 2), path, keep=2)
        save_checkpoint(self._curator_at(data, 3), path, keep=2)
        for p in checkpoint_candidates(path):
            p.write_bytes(b"garbage")
        with pytest.raises(DatasetError, match="no valid checkpoint"):
            with pytest.warns(RuntimeWarning):
                load_checkpoint(path)

    def test_checkpoint_exists_sees_generations_only(self, data, tmp_path):
        from repro.core.persistence import checkpoint_exists

        path = tmp_path / "c.ckpt"
        assert not checkpoint_exists(path)
        save_checkpoint(self._curator_at(data, 2), path, keep=2)
        assert checkpoint_exists(path)
        assert not path.exists()  # keep>1 writes generations, no bare file

    def test_resume_from_rotated_checkpoint_is_bitwise(self, data, tmp_path):
        path = tmp_path / "c.ckpt"
        half = data.n_timestamps // 2
        reference = self._curator_at(data, data.n_timestamps)
        interrupted = self._curator_at(data, half)
        save_checkpoint(interrupted, path, keep=4)
        resumed = load_checkpoint(path)
        for t in range(half, data.n_timestamps):
            resumed.process_timestep(
                t,
                participants=data.participants_at(t),
                newly_entered=data.newly_entered_at(t),
                quitted=data.quitted_at(t),
                n_real_active=data.n_active_at(t),
            )
        def fp(c):
            return [
                (tr.start_time, list(tr.cells))
                for tr in c.synthetic_dataset(data.n_timestamps).trajectories
            ]
        assert fp(resumed) == fp(reference)
        assert resumed.accountant.summary() == reference.accountant.summary()
