"""Tests for model/config persistence."""

import numpy as np
import pytest

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.persistence import (
    config_from_dict,
    config_to_dict,
    load_config,
    load_model,
    save_config,
    save_model,
)
from repro.core.retrasyn import RetraSynConfig
from repro.exceptions import ConfigurationError, DatasetError


class TestModelRoundTrip:
    def test_frequencies_preserved(self, space4, rng, tmp_path):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(loaded.frequencies, model.frequencies)

    def test_space_geometry_preserved(self, space4, tmp_path):
        model = GlobalMobilityModel(space4)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.space.grid == space4.grid
        assert loaded.space.include_eq == space4.include_eq
        assert loaded.space.size == space4.size

    def test_noeq_space_round_trip(self, space4_noeq, tmp_path):
        model = GlobalMobilityModel(space4_noeq)
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.space.include_eq is False

    def test_distributions_survive(self, space4, rng, tmp_path):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded = load_model(path)
        for origin in range(space4.n_cells):
            p1, q1 = model.row_distribution(origin)
            p2, q2 = loaded.row_distribution(origin)
            assert np.allclose(p1, p2)
            assert q1 == pytest.approx(q2)
        assert np.allclose(model.enter_distribution(), loaded.enter_distribution())

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_model(tmp_path / "absent.npz")

    def test_resume_synthesis_from_saved_model(self, space4, rng, tmp_path):
        """A restored model must drive a synthesizer identically."""
        from repro.core.synthesis import Synthesizer

        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        save_model(model, tmp_path / "m.npz")
        loaded = load_model(tmp_path / "m.npz")

        def simulate(m, seed):
            syn = Synthesizer(m, lam=10.0, rng=seed)
            syn.spawn_from_entering(0, 50)
            for t in range(1, 8):
                syn.step(t)
            return [tr.cells for tr in syn.all_trajectories()]

        assert simulate(model, 7) == simulate(loaded, 7)


class TestConfigRoundTrip:
    def test_dict_round_trip(self):
        cfg = RetraSynConfig(
            epsilon=1.5, w=12, division="budget", allocator="uniform",
            engine="vectorized", seed=42,
        )
        restored = config_from_dict(config_to_dict(cfg))
        assert restored == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = RetraSynConfig(epsilon=0.5, w=30, allocator="sample", seed=1)
        path = tmp_path / "cfg.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_generator_seed_dropped(self):
        import numpy as np

        cfg = RetraSynConfig(seed=np.random.default_rng(0))
        d = config_to_dict(cfg)
        assert d["seed"] is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"epsilon": 1.0, "bogus": True})

    def test_invalid_values_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"epsilon": -1.0}')
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_config(tmp_path / "absent.json")
