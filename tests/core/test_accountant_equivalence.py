"""ISSUE 3 acceptance: both accountant modes, one pipeline behaviour.

The ledger engines never touch the RNG, so for a fixed seed the pipeline
must synthesize *bit-identical* streams under ``accountant_mode="object"``
and ``"columnar"`` — across shard counts (K=1, K=4) and executors — while
the two ledgers reach the same audit verdicts.  A second group pins the
checkpoint round trip of the columnar accounting plane: slot table and
ring buffer survive a save → resume with shared identity intact and the
resumed stream continues bit-for-bit.
"""

import pytest

from repro.core.online import OnlineRetraSyn
from repro.core.persistence import load_checkpoint, save_checkpoint
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import PrivacyBudgetError
from repro.ldp.accountant import ColumnarPrivacyAccountant, PrivacyAccountant


@pytest.fixture(scope="module")
def stream():
    return make_random_walks(k=4, n_streams=120, n_timestamps=18, seed=9)


def _fingerprint(run):
    return [(tr.start_time, list(tr.cells)) for tr in run.synthetic.trajectories]


def _run(stream, mode, **overrides):
    cfg = RetraSynConfig(
        epsilon=1.0, w=5, seed=11, accountant_mode=mode, **overrides
    )
    return RetraSyn(cfg).run(stream)


class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "overrides",
        [
            pytest.param({}, id="K1"),
            pytest.param({"n_shards": 4}, id="K4"),
            pytest.param(
                {"n_shards": 2, "shard_executor": "process"}, id="K2-process"
            ),
        ],
    )
    def test_bit_identical_streams_both_modes(self, stream, overrides):
        obj = _run(stream, "object", **overrides)
        col = _run(stream, "columnar", **overrides)
        assert isinstance(obj.accountant, PrivacyAccountant)
        assert isinstance(col.accountant, ColumnarPrivacyAccountant)
        assert _fingerprint(obj) == _fingerprint(col)
        # Population division spends the full ε per report: window totals
        # are single-term sums, so the audit surfaces match exactly.
        assert obj.accountant.summary() == col.accountant.summary()
        assert sorted(obj.accountant.user_ids()) == sorted(
            col.accountant.user_ids()
        )

    def test_budget_division_equivalent(self, stream):
        obj = _run(stream, "object", division="budget")
        col = _run(stream, "columnar", division="budget")
        assert _fingerprint(obj) == _fingerprint(col)
        so, sc = obj.accountant.summary(), col.accountant.summary()
        assert so["n_users"] == sc["n_users"]
        assert so["n_violations"] == sc["n_violations"] == 0
        assert so["satisfied"] and sc["satisfied"]
        # Budget division accumulates many small ε_t per window; summation
        # order differs between the ledgers, so compare to float tolerance.
        assert so["max_window_spend"] == pytest.approx(sc["max_window_spend"])

    def test_random_allocator_equivalent(self, stream):
        obj = _run(stream, "object", allocator="random", n_shards=4)
        col = _run(stream, "columnar", allocator="random", n_shards=4)
        assert _fingerprint(obj) == _fingerprint(col)
        assert obj.accountant.summary() == col.accountant.summary()


class TestColumnarCheckpointRoundTrip:
    """ISSUE 3 satellite: save → resume → bitwise-identical continuation."""

    @pytest.fixture(scope="class")
    def data(self):
        return make_random_walks(k=4, n_streams=90, n_timestamps=16, seed=2)

    def _step(self, curator, data, t):
        curator.process_timestep(
            t,
            participants=data.participants_at(t),
            newly_entered=data.newly_entered_at(t),
            quitted=data.quitted_at(t),
            n_real_active=data.n_active_at(t),
        )

    def _fingerprint(self, curator, data):
        syn = curator.synthetic_dataset(data.n_timestamps)
        return [(tr.start_time, list(tr.cells)) for tr in syn.trajectories]

    def test_online_columnar_plane_roundtrip(self, data, tmp_path):
        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=23)  # columnar default
        ref = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(data.n_timestamps):
            self._step(ref, data, t)

        half = data.n_timestamps // 2
        first = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(half):
            self._step(first, data, t)
        path = tmp_path / "col.ckpt"
        save_checkpoint(first, path)
        pre_ws = {
            uid: first.accountant.window_spend(uid, half - 1)
            for uid in first.accountant.user_ids()
        }
        del first

        resumed = load_checkpoint(path)
        assert isinstance(resumed.accountant, ColumnarPrivacyAccountant)
        # The shared slot table must be restored as ONE object for both
        # planes, not two diverging copies.
        assert resumed.accountant._slots is resumed._tracker._table
        assert resumed.accountant._slots is resumed._slots
        # Ledger contents survive bit-for-bit.
        for uid, ws in pre_ws.items():
            assert resumed.accountant.window_spend(uid, half - 1) == ws
        for t in range(half, data.n_timestamps):
            self._step(resumed, data, t)
        assert self._fingerprint(resumed, data) == self._fingerprint(ref, data)
        assert resumed.accountant.summary() == ref.accountant.summary()

    def test_sharded_columnar_plane_roundtrip(self, data, tmp_path):
        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=23, n_shards=3)
        ref = ShardedOnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(data.n_timestamps):
            self._step(ref, data, t)

        half = data.n_timestamps // 2
        first = ShardedOnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(half):
            self._step(first, data, t)
        path = tmp_path / "shard.ckpt"
        save_checkpoint(first, path)
        del first

        resumed = load_checkpoint(path)
        for t in range(half, data.n_timestamps):
            self._step(resumed, data, t)
        assert self._fingerprint(resumed, data) == self._fingerprint(ref, data)
        assert resumed.accountant.summary() == ref.accountant.summary()

    def test_resumed_columnar_ledger_keeps_enforcing(self, data, tmp_path):
        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=5)
        curator = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(6):
            self._step(curator, data, t)
        path = tmp_path / "c.ckpt"
        save_checkpoint(curator, path)
        resumed = load_checkpoint(path)
        spenders = [
            uid for uid in resumed.accountant.user_ids()
            if resumed.accountant.window_spend(uid, 5) > 0
        ]
        assert spenders
        with pytest.raises(PrivacyBudgetError):
            resumed.accountant.spend(spenders[0], 5, cfg.epsilon)
        # The refusal left the restored ledger untouched.
        assert resumed.accountant.verify()

    def test_checkpoint_is_deterministic_about_frontier(self, data, tmp_path):
        """The monotone-timestamp guard survives the round trip too."""
        from repro.exceptions import ConfigurationError

        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=5)
        curator = OnlineRetraSyn(data.grid, cfg, lam=5.0)
        for t in range(5):
            self._step(curator, data, t)
        path = tmp_path / "f.ckpt"
        save_checkpoint(curator, path)
        resumed = load_checkpoint(path)
        frontier = resumed.accountant._frontier
        assert frontier is not None
        with pytest.raises(ConfigurationError):
            resumed.accountant.spend(1, frontier - 1, 0.5)
