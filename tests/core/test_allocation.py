"""Tests for the allocation strategies (Eqs. 9-10)."""

import numpy as np
import pytest

from repro.core.allocation import (
    AdaptiveBudgetAllocator,
    AdaptivePopulationAllocator,
    AllocationContext,
    SampleBudgetAllocator,
    SamplePopulationAllocator,
    UniformBudgetAllocator,
    UniformPopulationAllocator,
    adaptive_portion,
    make_budget_allocator,
    make_population_allocator,
)
from repro.exceptions import ConfigurationError


class TestAllocationContext:
    def test_deviation_needs_two_rounds(self):
        ctx = AllocationContext(kappa=3)
        assert ctx.deviation() == 0.0
        ctx.record_collection(np.array([0.5, 0.5]))
        assert ctx.deviation() == 0.0

    def test_deviation_measures_drift(self):
        ctx = AllocationContext(kappa=3)
        ctx.record_collection(np.array([0.5, 0.5]))
        ctx.record_collection(np.array([0.9, 0.1]))
        # |0.9-0.5| + |0.1-0.5| = 0.8
        assert ctx.deviation() == pytest.approx(0.8)

    def test_deviation_zero_for_steady_stream(self):
        ctx = AllocationContext(kappa=3)
        for _ in range(5):
            ctx.record_collection(np.array([0.3, 0.7]))
        assert ctx.deviation() == pytest.approx(0.0)

    def test_history_bounded_by_kappa(self):
        ctx = AllocationContext(kappa=2)
        for i in range(10):
            ctx.record_collection(np.array([float(i)]))
        # Only the last kappa vectors before the latest matter.
        assert ctx.deviation() == pytest.approx(abs(9 - (7 + 8) / 2))

    def test_significant_ratio_mean(self):
        ctx = AllocationContext(kappa=3)
        ctx.record_significant_ratio(0.2)
        ctx.record_significant_ratio(0.4)
        assert ctx.mean_significant_ratio() == pytest.approx(0.3)

    def test_ratio_clipped(self):
        ctx = AllocationContext(kappa=3)
        ctx.record_significant_ratio(5.0)
        assert ctx.mean_significant_ratio() == 1.0

    def test_invalid_kappa(self):
        with pytest.raises(ConfigurationError):
            AllocationContext(kappa=0)


class TestAdaptivePortion:
    def test_floor_applies_when_dev_zero(self):
        ctx = AllocationContext()
        p = adaptive_portion(ctx, w=10)
        assert p == pytest.approx(1.0 / 20.0)  # 1/(2w) bootstrap floor

    def test_caps_at_p_max(self):
        ctx = AllocationContext()
        ctx.record_collection(np.zeros(4))
        ctx.record_collection(np.full(4, 100.0))  # massive deviation
        p = adaptive_portion(ctx, w=2, alpha=8.0, p_max=0.6)
        assert p == 0.6

    def test_larger_w_smaller_portion(self):
        ctx = AllocationContext()
        ctx.record_collection(np.array([0.0, 0.0]))
        ctx.record_collection(np.array([0.4, 0.4]))
        p_small_w = adaptive_portion(ctx, w=5)
        p_large_w = adaptive_portion(ctx, w=50)
        assert p_large_w < p_small_w

    def test_more_significant_transitions_smaller_portion(self):
        """Eq. 10: a higher |S*|/|S| ratio shrinks the allocation."""
        ctx_low = AllocationContext()
        ctx_high = AllocationContext()
        for ctx, ratio in ((ctx_low, 0.1), (ctx_high, 0.9)):
            ctx.record_collection(np.array([0.0, 0.0]))
            ctx.record_collection(np.array([0.4, 0.4]))
            ctx.record_significant_ratio(ratio)
        assert adaptive_portion(ctx_high, w=10) <= adaptive_portion(ctx_low, w=10)

    def test_log_dampens_large_deviation(self):
        ctx1 = AllocationContext()
        ctx1.record_collection(np.array([0.0]))
        ctx1.record_collection(np.array([1.0]))
        ctx2 = AllocationContext()
        ctx2.record_collection(np.array([0.0]))
        ctx2.record_collection(np.array([10.0]))
        p1 = adaptive_portion(ctx1, w=20, p_max=1.0)
        p2 = adaptive_portion(ctx2, w=20, p_max=1.0)
        # Deviation is 10x but portion grows much slower (logarithmically).
        assert p2 / p1 < 5.0


class TestBudgetAllocators:
    def test_uniform(self):
        a = UniformBudgetAllocator(1.0, 10)
        ctx = AllocationContext()
        for t in range(30):
            eps = a.propose(t, ctx)
            assert eps == pytest.approx(0.1)
            a.commit(eps)

    def test_sample_spends_all_at_window_start(self):
        a = SampleBudgetAllocator(1.0, 5)
        ctx = AllocationContext()
        pattern = []
        for t in range(10):
            eps = a.propose(t, ctx)
            pattern.append(eps)
            a.commit(eps)
        assert pattern[0] == 1.0 and pattern[5] == 1.0
        assert all(e == 0.0 for i, e in enumerate(pattern) if i % 5 != 0)

    def test_adaptive_initialisation_round(self):
        a = AdaptiveBudgetAllocator(1.0, 10)
        ctx = AllocationContext()
        assert a.propose(0, ctx) == pytest.approx(0.1)  # eps / w

    def test_adaptive_never_exceeds_remaining(self):
        a = AdaptiveBudgetAllocator(1.0, 5)
        ctx = AllocationContext()
        rng = np.random.default_rng(0)
        for t in range(50):
            ctx.record_collection(rng.random(8))
            eps = a.propose(t, ctx)
            assert eps <= a.tracker.remaining + 1e-9
            a.commit(eps)

    def test_window_sum_never_exceeds_epsilon(self):
        """Any w consecutive commits must sum to <= epsilon."""
        a = AdaptiveBudgetAllocator(1.0, 4)
        ctx = AllocationContext()
        rng = np.random.default_rng(1)
        spends = []
        for t in range(60):
            ctx.record_collection(rng.random(4) * 3)
            eps = a.propose(t, ctx)
            a.commit(eps)
            spends.append(eps)
        for i in range(len(spends) - 4):
            assert sum(spends[i : i + 4]) <= 1.0 + 1e-9

    def test_factory(self):
        assert isinstance(make_budget_allocator("adaptive", 1.0, 5), AdaptiveBudgetAllocator)
        assert isinstance(make_budget_allocator("uniform", 1.0, 5), UniformBudgetAllocator)
        assert isinstance(make_budget_allocator("sample", 1.0, 5), SampleBudgetAllocator)
        with pytest.raises(ConfigurationError):
            make_budget_allocator("bogus", 1.0, 5)


class TestPopulationAllocators:
    def test_uniform(self):
        a = UniformPopulationAllocator(8)
        ctx = AllocationContext()
        assert a.propose(3, ctx) == pytest.approx(1.0 / 8.0)

    def test_sample(self):
        a = SamplePopulationAllocator(4)
        ctx = AllocationContext()
        assert a.propose(0, ctx) == 1.0
        assert a.propose(1, ctx) == 0.0
        assert a.propose(4, ctx) == 1.0

    def test_adaptive_bounds(self):
        a = AdaptivePopulationAllocator(10)
        ctx = AllocationContext()
        rng = np.random.default_rng(2)
        for t in range(40):
            ctx.record_collection(rng.random(6))
            p = a.propose(t, ctx)
            assert 0.0 <= p <= 0.6

    def test_adaptive_initialisation(self):
        a = AdaptivePopulationAllocator(10)
        assert a.propose(0, AllocationContext()) == pytest.approx(0.1)

    def test_factory(self):
        assert isinstance(make_population_allocator("adaptive", 5), AdaptivePopulationAllocator)
        assert isinstance(make_population_allocator("uniform", 5), UniformPopulationAllocator)
        assert isinstance(make_population_allocator("sample", 5), SamplePopulationAllocator)
        with pytest.raises(ConfigurationError):
            make_population_allocator("bogus", 5)

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            UniformPopulationAllocator(0)
        with pytest.raises(ConfigurationError):
            UniformBudgetAllocator(1.0, 0)
        with pytest.raises(ConfigurationError):
            UniformBudgetAllocator(0.0, 5)
