"""ISSUE 2 acceptance: columnar + async paths ≡ object path, bit for bit.

Three entry points feed the same curator code:

* the **object path** — ``process_timestep`` with per-user
  ``(uid, TransitionState)`` lists (the seed repo's representation);
* the **columnar path** — ``process_timestep`` with
  :class:`~repro.stream.reports.ReportBatch` index arrays from a
  :class:`~repro.stream.reports.ColumnarStreamView`;
* the **async path** — the full ingestion service, including out-of-order
  arrival within the watermark window.

For a fixed RNG seed all three must synthesize the *identical* stream —
across shard counts (K=1, K=4) and executors (serial, process).  Any drift
in selection order, partitioning, or batch assembly breaks these tests.
"""

import numpy as np
import pytest

from repro.core.online import (
    OnlineRetraSyn,
    sample_population_reporters,
    sample_population_reporters_batch,
)
from repro.core.retrasyn import RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.datasets.synthetic import make_random_walks
from repro.stream.ingest import dataset_reports, ingest_events
from repro.stream.reports import ColumnarStreamView, ReportBatch
from repro.stream.user_tracker import UserTracker


@pytest.fixture(scope="module")
def stream():
    return make_random_walks(k=4, n_streams=130, n_timestamps=22, seed=1)


def _fingerprint(curator, n_timestamps):
    syn = curator.synthetic_dataset(n_timestamps)
    return [(tr.start_time, list(tr.cells)) for tr in syn.trajectories]


def _make(stream, n_shards, executor, **overrides):
    cfg = RetraSynConfig(
        epsilon=1.0, w=5, seed=42, n_shards=n_shards,
        shard_executor=executor, **overrides,
    )
    if n_shards > 1 or executor == "process":
        return ShardedOnlineRetraSyn(stream.grid, cfg, lam=5.0)
    return OnlineRetraSyn(stream.grid, cfg, lam=5.0)


def _drive_object(stream, curator):
    for t in range(stream.n_timestamps):
        curator.process_timestep(
            t,
            participants=stream.participants_at(t),
            newly_entered=stream.newly_entered_at(t),
            quitted=stream.quitted_at(t),
            n_real_active=stream.n_active_at(t),
        )
    return _fingerprint(curator, stream.n_timestamps)


def _drive_columnar(stream, curator):
    view = ColumnarStreamView(stream, curator.space)
    for t in range(stream.n_timestamps):
        curator.process_timestep(
            t,
            participants=view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )
    return _fingerprint(curator, stream.n_timestamps)


def _drive_async(stream, curator, max_lateness=2, shuffle_seed=None):
    view = ColumnarStreamView(stream, curator.space)
    rng = (
        np.random.default_rng(shuffle_seed) if shuffle_seed is not None else None
    )
    reports = dataset_reports(
        view, shuffle_rng=rng, block=max_lateness + 1
    )
    stats = ingest_events(
        curator, reports, queue_size=256, max_lateness=max_lateness
    )
    assert stats.n_late_dropped == 0
    assert stats.n_timestamps == stream.n_timestamps
    return _fingerprint(curator, stream.n_timestamps)


CONFIGS = [
    pytest.param(1, "serial", id="K1-serial"),
    pytest.param(4, "serial", id="K4-serial"),
    pytest.param(1, "process", id="K1-process"),
    pytest.param(4, "process", id="K4-process"),
]


class TestColumnarMatchesObject:
    @pytest.mark.parametrize("n_shards,executor", CONFIGS)
    def test_identical_synthetic_stream(self, stream, n_shards, executor):
        a = _drive_object(stream, _make(stream, n_shards, executor))
        b = _drive_columnar(stream, _make(stream, n_shards, executor))
        assert a == b

    def test_budget_division_identical(self, stream):
        a = _drive_object(stream, _make(stream, 4, "serial", division="budget"))
        b = _drive_columnar(stream, _make(stream, 4, "serial", division="budget"))
        assert a == b

    def test_random_allocator_identical(self, stream):
        a = _drive_object(stream, _make(stream, 4, "serial", allocator="random"))
        b = _drive_columnar(stream, _make(stream, 4, "serial", allocator="random"))
        assert a == b

    def test_noeq_variant_identical(self, stream):
        a = _drive_object(
            stream, _make(stream, 4, "serial", model_entering_quitting=False)
        )
        b = _drive_columnar(
            stream, _make(stream, 4, "serial", model_entering_quitting=False)
        )
        assert a == b


class TestAsyncMatchesObject:
    @pytest.mark.parametrize("n_shards,executor", CONFIGS)
    def test_in_order_ingestion_identical(self, stream, n_shards, executor):
        a = _drive_object(stream, _make(stream, n_shards, executor))
        b = _drive_async(stream, _make(stream, n_shards, executor))
        assert a == b

    def test_shuffled_arrival_identical(self, stream):
        """Out-of-order delivery within the watermark changes nothing."""
        a = _drive_object(stream, _make(stream, 4, "serial"))
        b = _drive_async(
            stream, _make(stream, 4, "serial"), max_lateness=3, shuffle_seed=7
        )
        assert a == b


class TestSamplerEquivalence:
    """The two reporter samplers must draw the same users in the same order."""

    def test_object_and_batch_samplers_agree(self, stream):
        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=0)
        participants = stream.participants_at(1)
        uids = [uid for uid, _s in participants]

        rng_a = np.random.default_rng(33)
        tr_a = UserTracker(cfg.w)
        tr_a.register(uids)
        chosen = sample_population_reporters(
            tr_a, {}, rng_a, cfg, 1, participants, [], rate=0.4
        )

        rng_b = np.random.default_rng(33)
        tr_b = UserTracker(cfg.w)
        tr_b.register(uids)
        batch = ReportBatch.from_arrays(
            uids, np.zeros(len(uids)), np.zeros(len(uids))
        )
        rows = sample_population_reporters_batch(
            tr_b, {}, rng_b, cfg, 1, batch, [], rate=0.4
        )
        assert [uid for uid, _s in chosen] == batch.user_ids[rows].tolist()
