"""Tests for the incremental OnlineRetraSyn curator."""

import pytest

from repro.core.online import OnlineRetraSyn, TimestepResult
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.exceptions import ConfigurationError


def drive(curator, dataset, upto=None):
    """Feed a StreamDataset through the online interface."""
    horizon = dataset.n_timestamps if upto is None else upto
    results = []
    for t in range(horizon):
        results.append(
            curator.process_timestep(
                t,
                participants=dataset.participants_at(t),
                newly_entered=dataset.newly_entered_at(t),
                quitted=dataset.quitted_at(t),
                n_real_active=dataset.n_active_at(t),
            )
        )
    return results


class TestConstruction:
    def test_invalid_lambda(self, walk_data):
        with pytest.raises(ConfigurationError):
            OnlineRetraSyn(walk_data.grid, RetraSynConfig(seed=0), lam=0.0)

    def test_timesteps_must_be_consecutive(self, walk_data):
        curator = OnlineRetraSyn(walk_data.grid, RetraSynConfig(w=4, seed=0), lam=8.0)
        curator.process_timestep(0, [], n_real_active=0)
        with pytest.raises(ConfigurationError):
            curator.process_timestep(5, [], n_real_active=0)


class TestIncrementalProcessing:
    def test_timestep_results(self, walk_data):
        curator = OnlineRetraSyn(walk_data.grid, RetraSynConfig(w=4, seed=0), lam=8.0)
        results = drive(curator, walk_data)
        assert len(results) == walk_data.n_timestamps
        assert all(isinstance(r, TimestepResult) for r in results)
        assert any(r.n_reporters > 0 for r in results)

    def test_live_snapshot_matches_real_active(self, walk_data):
        curator = OnlineRetraSyn(walk_data.grid, RetraSynConfig(w=4, seed=0), lam=8.0)
        for t in range(walk_data.n_timestamps):
            curator.process_timestep(
                t,
                participants=walk_data.participants_at(t),
                newly_entered=walk_data.newly_entered_at(t),
                quitted=walk_data.quitted_at(t),
                n_real_active=walk_data.n_active_at(t),
            )
            snapshot = curator.live_snapshot()
            assert snapshot.size == walk_data.n_active_at(t)
            if snapshot.size:
                assert snapshot.min() >= 0
                assert snapshot.max() < walk_data.grid.n_cells

    def test_mid_stream_dataset_materialisation(self, walk_data):
        """The synthetic DB can be published at any intermediate timestamp."""
        curator = OnlineRetraSyn(walk_data.grid, RetraSynConfig(w=4, seed=0), lam=8.0)
        drive(curator, walk_data, upto=10)
        partial = curator.synthetic_dataset(n_timestamps=10)
        assert partial.n_timestamps == 10
        assert partial.n_active_at(9) == walk_data.n_active_at(9)

    def test_privacy_accounting_online(self, walk_data):
        curator = OnlineRetraSyn(walk_data.grid, RetraSynConfig(w=4, seed=0), lam=8.0)
        drive(curator, walk_data)
        assert curator.accountant.verify()


class TestBatchEquivalence:
    """RetraSyn.run is a thin driver over the online curator: same outputs."""

    @pytest.mark.parametrize("division", ["budget", "population"])
    def test_same_synthetic_as_batch(self, walk_data, division):
        cfg = RetraSynConfig(epsilon=1.0, w=4, division=division, seed=7)
        batch = RetraSyn(cfg).run(walk_data)

        from repro.geo.trajectory import average_length

        lam = max(1.0, average_length(walk_data.trajectories))
        curator = OnlineRetraSyn(
            walk_data.grid, RetraSynConfig(epsilon=1.0, w=4, division=division, seed=7),
            lam=lam,
        )
        drive(curator, walk_data)
        online = curator.synthetic_dataset(walk_data.n_timestamps)
        assert [t.cells for t in batch.synthetic.trajectories] == [
            t.cells for t in online.trajectories
        ]

    def test_same_reporter_counts(self, walk_data):
        cfg = RetraSynConfig(epsilon=1.0, w=4, seed=3)
        batch = RetraSyn(cfg).run(walk_data)
        from repro.geo.trajectory import average_length

        curator = OnlineRetraSyn(
            walk_data.grid, RetraSynConfig(epsilon=1.0, w=4, seed=3),
            lam=max(1.0, average_length(walk_data.trajectories)),
        )
        drive(curator, walk_data)
        assert batch.reporters_per_timestamp == curator.reporters_per_timestamp
