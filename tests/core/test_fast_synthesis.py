"""Tests for the vectorized synthesis engine.

The vectorized engine must be a behavioural twin of the reference
object-based synthesizer: identical invariants, statistically identical
generative distribution, materially faster on large populations.
"""

import numpy as np
import pytest

from repro.core.fast_synthesis import COMPILE_MODES, VectorizedSynthesizer, _CompiledModel
from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.synthesis import Synthesizer
from repro.exceptions import ConfigurationError

from tests.core.test_synthesis import deterministic_model


class TestInterfaceParity:
    def test_spawn_from_entering(self, space4):
        model = deterministic_model(space4, {}, enter_cell=7)
        syn = VectorizedSynthesizer(model, lam=10.0, rng=0)
        syn.spawn_from_entering(0, 25)
        assert syn.n_live == 25
        assert all(tr.cells == [7] for tr in syn.live_streams)

    def test_spawn_uniform(self, space4):
        syn = VectorizedSynthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        syn.spawn_uniform(0, 300)
        cells = {tr.cells[0] for tr in syn.live_streams}
        assert len(cells) > 10

    def test_spawn_from_distribution_validation(self, space4):
        syn = VectorizedSynthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        with pytest.raises(ConfigurationError):
            syn.spawn_from_distribution(0, 5, np.ones(3))

    def test_invalid_lambda(self, space4):
        with pytest.raises(ConfigurationError):
            VectorizedSynthesizer(GlobalMobilityModel(space4), lam=0.0)

    def test_deterministic_chain(self, space4):
        model = deterministic_model(space4, {0: 1, 1: 2, 2: 3, 3: 3})
        syn = VectorizedSynthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_distribution(0, 5, np.eye(16)[0])
        for t in range(1, 4):
            syn.step(t)
        for tr in syn.live_streams:
            assert tr.cells == [0, 1, 2, 3]

    def test_size_adjustment_series(self, space4):
        model = deterministic_model(
            space4, {c: c for c in range(16)}, quit_cells=(0,)
        )
        syn = VectorizedSynthesizer(model, lam=1e9, rng=3)
        targets = [20, 35, 10, 10, 40, 0, 5]
        syn.spawn_from_entering(0, targets[0])
        for t, target in enumerate(targets[1:], start=1):
            syn.step(t, target_size=target)
            assert syn.n_live == target

    def test_history_retained(self, space4):
        model = deterministic_model(space4, {0: 0}, quit_cells=(0,))
        syn = VectorizedSynthesizer(model, lam=1.0, rng=0)
        syn.spawn_from_distribution(0, 100, np.eye(16)[0])
        for t in range(1, 15):
            syn.step(t)
        total = syn.all_trajectories()
        assert len(total) == 100
        assert sum(tr.terminated for tr in total) == 100 - syn.n_live

    def test_capacity_growth(self, space4):
        """Spawning past the initial capacity must transparently grow."""
        model = deterministic_model(space4, {0: 0}, enter_cell=0)
        syn = VectorizedSynthesizer(model, lam=100.0, rng=0, initial_capacity=16)
        for t in range(0, 30):
            syn.spawn_from_entering(t, 10)
            if t > 0:
                syn.step(t)
        assert syn.store.n_total == 300
        assert all(len(tr) >= 1 for tr in syn.all_trajectories())


def _compiled_equal(a, b):
    np.testing.assert_array_equal(np.asarray(a.dest), np.asarray(b.dest))
    np.testing.assert_allclose(a.cum_probs, b.cum_probs, rtol=0, atol=1e-12)
    np.testing.assert_allclose(a.quit_raw, b.quit_raw, rtol=0, atol=1e-12)
    assert a.version == b.version


class TestCompiledModel:
    """Incremental recompile ≡ vectorized full rebuild ≡ seed loop."""

    def _random_update(self, model, rng):
        """One random model mutation in the shapes DMU / AllUpdate produce."""
        fresh = rng.normal(0.3, 1.0, size=model.space.size)
        kind = rng.random()
        if kind < 0.15:
            model.set_all(fresh)
        elif kind < 0.3:
            # Boundary case: an empty selection bumps nothing.
            model.update_selected(np.empty(0, dtype=np.int64), fresh)
        else:
            n_sel = int(rng.integers(1, model.space.size // 2))
            idx = rng.choice(model.space.size, size=n_sel, replace=False)
            model.update_selected(idx, fresh)

    @pytest.mark.parametrize("seed", range(5))
    def test_incremental_equals_full_after_arbitrary_updates(self, space4, rng, seed):
        del rng
        rng = np.random.default_rng(seed)
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        incremental = _CompiledModel(model)
        for _ in range(12):
            self._random_update(model, rng)
            incremental.update(model, "incremental")
            _compiled_equal(incremental, _CompiledModel(model))
            _compiled_equal(incremental, _CompiledModel.reference(model))

    def test_vectorized_assembly_matches_reference_loop(self, space4):
        rng = np.random.default_rng(3)
        model = GlobalMobilityModel(space4)
        # Stress the fallbacks: negatives, zero rows, quit-only rows.
        f = rng.normal(0.0, 1.0, size=space4.size)
        f[space4.out_move_indices(5)] = 0.0
        f[space4.index_of_quit(5)] = 2.0
        f[space4.out_move_indices(9)] = 0.0
        f[space4.index_of_quit(9)] = 0.0
        model.set_all(f)
        _compiled_equal(_CompiledModel(model), _CompiledModel.reference(model))

    def test_no_eq_space(self, space4_noeq):
        rng = np.random.default_rng(4)
        model = GlobalMobilityModel(space4_noeq)
        model.set_all(rng.random(space4_noeq.size))
        _compiled_equal(_CompiledModel(model), _CompiledModel.reference(model))

    def test_full_mode_ignores_journal(self, space4):
        rng = np.random.default_rng(5)
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        compiled = _CompiledModel(model)
        model.update_selected([0], rng.random(space4.size))
        compiled.update(model, "full")
        _compiled_equal(compiled, _CompiledModel(model))


class TestCompileModes:
    """All compile modes must yield bit-identical synthetic streams."""

    def _run(self, space, mode, seed=0):
        rng = np.random.default_rng(11)
        model = GlobalMobilityModel(space)
        model.set_all(rng.random(space.size))
        syn = VectorizedSynthesizer(model, lam=8.0, rng=seed, compile_mode=mode)
        syn.spawn_from_entering(0, 200)
        for t in range(1, 10):
            # Mutate the model mid-run the way DMU rounds do.
            idx = rng.choice(space.size, size=space.size // 4, replace=False)
            model.update_selected(idx, rng.random(space.size))
            syn.step(t, target_size=200 - 5 * t)
        return [(tr.start_time, tr.cells, tr.terminated) for tr in syn.all_trajectories()]

    def test_all_modes_bit_identical(self, space4):
        runs = {mode: self._run(space4, mode) for mode in COMPILE_MODES}
        assert runs["incremental"] == runs["full"] == runs["full-loop"]

    def test_invalid_compile_mode(self, space4):
        with pytest.raises(ConfigurationError):
            VectorizedSynthesizer(
                GlobalMobilityModel(space4), lam=1.0, compile_mode="jit"
            )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(compile_mode="jit")
        with pytest.raises(ConfigurationError):
            RetraSynConfig(synthesis_shards=0)


class TestShardParallelGeneration:
    def _run_sharded(self, space, shards, seed=0, n=600, steps=10, threshold=1):
        import repro.core.fast_synthesis as fs

        rng = np.random.default_rng(7)
        model = GlobalMobilityModel(space)
        model.set_all(rng.random(space.size))
        old = fs._MIN_STREAMS_PER_SHARD
        fs._MIN_STREAMS_PER_SHARD = threshold  # force the threaded path
        try:
            syn = VectorizedSynthesizer(
                model, lam=8.0, rng=seed, synthesis_shards=shards
            )
            syn.spawn_from_entering(0, n)
            for t in range(1, steps):
                syn.step(t, target_size=n)
            return syn
        finally:
            fs._MIN_STREAMS_PER_SHARD = old

    def test_deterministic_for_fixed_seed_and_shards(self, space4):
        prints = []
        for _ in range(2):
            syn = self._run_sharded(space4, shards=3, seed=5)
            prints.append(
                [(tr.start_time, tr.cells) for tr in syn.all_trajectories()]
            )
        assert prints[0] == prints[1]

    def test_shard_counts_distribution_equivalent(self, space4):
        """Sharded generation draws from the same generative law."""
        from collections import Counter

        totals = {}
        for shards in (1, 4):
            trans = Counter()
            lengths = []
            for seed in range(3):
                syn = self._run_sharded(space4, shards=shards, seed=seed)
                for tr in syn.all_trajectories():
                    trans.update(tr.transitions())
                    lengths.append(len(tr))
            totals[shards] = (trans, np.mean(lengths))
        t1, len1 = totals[1]
        t4, len4 = totals[4]
        assert len1 == pytest.approx(len4, rel=0.1)
        n1, n4 = sum(t1.values()), sum(t4.values())
        for key in set(t1) | set(t4):
            assert abs(t1[key] / n1 - t4[key] / n4) < 0.02, key

    def test_small_populations_stay_single_threaded(self, space4):
        """Below the slab threshold no pool is spun up."""
        rng = np.random.default_rng(0)
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        syn = VectorizedSynthesizer(model, lam=8.0, rng=0, synthesis_shards=4)
        syn.spawn_from_entering(0, 50)
        for t in range(1, 5):
            syn.step(t, target_size=50)
        assert syn._pool is None
        assert syn.n_live == 50

    def test_close_releases_pool_and_allows_restart(self, space4):
        syn = self._run_sharded(space4, shards=2)
        assert syn._pool is not None
        syn.close()
        assert syn._pool is None
        syn.close()  # idempotent
        # Stepping again lazily rebuilds the pool.
        import repro.core.fast_synthesis as fs

        old = fs._MIN_STREAMS_PER_SHARD
        fs._MIN_STREAMS_PER_SHARD = 1
        try:
            syn.step(10, target_size=100)
        finally:
            fs._MIN_STREAMS_PER_SHARD = old
        assert syn._pool is not None
        assert syn.n_live == 100

    def test_sharded_curator_close_shuts_synthesis_pool(self, walk_data):
        from repro.core.sharded import ShardedOnlineRetraSyn

        cfg = RetraSynConfig(
            epsilon=1.0, w=5, engine="vectorized", synthesis_shards=2,
            n_shards=2, seed=0,
        )
        curator = ShardedOnlineRetraSyn(walk_data.grid, cfg, lam=5.0)
        curator.synthesizer._executor()  # force pool creation
        curator.close()
        assert curator.synthesizer._pool is None

    def test_pickles_without_thread_pool(self, space4):
        import pickle

        syn = self._run_sharded(space4, shards=2)
        assert syn._pool is not None
        clone = pickle.loads(pickle.dumps(syn))
        assert clone._pool is None
        assert clone.store.n_total == syn.store.n_total
        # The clone keeps working (pool is rebuilt lazily on demand).
        clone.step(10, target_size=100)
        assert clone.n_live == 100

    def test_invalid_shards(self, space4):
        with pytest.raises(ConfigurationError):
            VectorizedSynthesizer(
                GlobalMobilityModel(space4), lam=1.0, synthesis_shards=0
            )


class TestDistributionEquivalence:
    """The two engines must produce statistically identical synthetics."""

    @pytest.fixture
    def loaded_model(self, space4, rng):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        return model

    def _run(self, engine_cls, model, seed, n=600, steps=12):
        syn = engine_cls(model, lam=8.0, rng=seed)
        syn.spawn_from_entering(0, n)
        for t in range(1, steps):
            syn.step(t)
        return syn.all_trajectories()

    def test_transition_distributions_match(self, loaded_model):
        from collections import Counter

        ref = Counter()
        fast = Counter()
        for seed in range(3):
            for tr in self._run(Synthesizer, loaded_model, seed):
                ref.update(tr.transitions())
            for tr in self._run(VectorizedSynthesizer, loaded_model, 100 + seed):
                fast.update(tr.transitions())
        total_ref = sum(ref.values())
        total_fast = sum(fast.values())
        # Compare the relative frequency of every transition seen by either.
        for key in set(ref) | set(fast):
            p_ref = ref[key] / total_ref
            p_fast = fast[key] / total_fast
            assert abs(p_ref - p_fast) < 0.02, key

    def test_survival_rates_match(self, loaded_model):
        ref_alive = np.mean([
            sum(not t.terminated for t in self._run(Synthesizer, loaded_model, s))
            for s in range(3)
        ])
        fast_alive = np.mean([
            sum(not t.terminated
                for t in self._run(VectorizedSynthesizer, loaded_model, 50 + s))
            for s in range(3)
        ])
        assert abs(ref_alive - fast_alive) / max(ref_alive, 1) < 0.15

    def test_length_distributions_match(self, loaded_model):
        ref_lengths = [
            len(t) for s in range(3) for t in self._run(Synthesizer, loaded_model, s)
        ]
        fast_lengths = [
            len(t)
            for s in range(3)
            for t in self._run(VectorizedSynthesizer, loaded_model, 50 + s)
        ]
        assert np.mean(ref_lengths) == pytest.approx(
            np.mean(fast_lengths), rel=0.1
        )


class TestPipelineIntegration:
    def test_vectorized_pipeline_runs(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, engine="vectorized", seed=0)
        ).run(walk_data)
        assert run.accountant.verify()
        real = walk_data.active_counts()
        syn = run.synthetic.active_counts()
        assert np.array_equal(real, syn)

    def test_vectorized_respects_adjacency(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, engine="vectorized", seed=0)
        ).run(walk_data)
        grid = walk_data.grid
        for traj in run.synthetic.trajectories:
            for a, b in traj.transitions():
                assert grid.are_adjacent(a, b)

    def test_invalid_engine(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(engine="gpu")

    def test_pipeline_compile_modes_bit_identical(self, walk_data):
        prints = {}
        for compile_mode in COMPILE_MODES:
            run = RetraSyn(
                RetraSynConfig(
                    epsilon=1.0, w=5, engine="vectorized", seed=0,
                    compile_mode=compile_mode,
                )
            ).run(walk_data)
            assert run.accountant.verify()
            prints[compile_mode] = [
                (tr.start_time, list(tr.cells))
                for tr in run.synthetic.trajectories
            ]
        assert prints["incremental"] == prints["full"] == prints["full-loop"]

    def test_pipeline_synthesis_shards(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(
                epsilon=1.0, w=5, engine="vectorized", seed=0,
                synthesis_shards=2,
            )
        ).run(walk_data)
        assert run.accountant.verify()
        assert np.array_equal(
            walk_data.active_counts(), run.synthetic.active_counts()
        )

    def test_utility_comparable_between_engines(self, walk_data):
        from repro.metrics.registry import evaluate_all

        scores = {}
        for engine in ("object", "vectorized"):
            run = RetraSyn(
                RetraSynConfig(epsilon=2.0, w=5, engine=engine, seed=0)
            ).run(walk_data)
            scores[engine] = evaluate_all(
                walk_data, run.synthetic, phi=5,
                metrics=("density_error", "transition_error"), rng=0,
            )
        for metric in ("density_error", "transition_error"):
            assert abs(
                scores["object"][metric] - scores["vectorized"][metric]
            ) < 0.12, scores