"""Tests for the vectorized synthesis engine.

The vectorized engine must be a behavioural twin of the reference
object-based synthesizer: identical invariants, statistically identical
generative distribution, materially faster on large populations.
"""

import numpy as np
import pytest

from repro.core.fast_synthesis import VectorizedSynthesizer
from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.synthesis import Synthesizer
from repro.exceptions import ConfigurationError

from tests.core.test_synthesis import deterministic_model


class TestInterfaceParity:
    def test_spawn_from_entering(self, space4):
        model = deterministic_model(space4, {}, enter_cell=7)
        syn = VectorizedSynthesizer(model, lam=10.0, rng=0)
        syn.spawn_from_entering(0, 25)
        assert syn.n_live == 25
        assert all(tr.cells == [7] for tr in syn.live_streams)

    def test_spawn_uniform(self, space4):
        syn = VectorizedSynthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        syn.spawn_uniform(0, 300)
        cells = {tr.cells[0] for tr in syn.live_streams}
        assert len(cells) > 10

    def test_spawn_from_distribution_validation(self, space4):
        syn = VectorizedSynthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        with pytest.raises(ConfigurationError):
            syn.spawn_from_distribution(0, 5, np.ones(3))

    def test_invalid_lambda(self, space4):
        with pytest.raises(ConfigurationError):
            VectorizedSynthesizer(GlobalMobilityModel(space4), lam=0.0)

    def test_deterministic_chain(self, space4):
        model = deterministic_model(space4, {0: 1, 1: 2, 2: 3, 3: 3})
        syn = VectorizedSynthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_distribution(0, 5, np.eye(16)[0])
        for t in range(1, 4):
            syn.step(t)
        for tr in syn.live_streams:
            assert tr.cells == [0, 1, 2, 3]

    def test_size_adjustment_series(self, space4):
        model = deterministic_model(
            space4, {c: c for c in range(16)}, quit_cells=(0,)
        )
        syn = VectorizedSynthesizer(model, lam=1e9, rng=3)
        targets = [20, 35, 10, 10, 40, 0, 5]
        syn.spawn_from_entering(0, targets[0])
        for t, target in enumerate(targets[1:], start=1):
            syn.step(t, target_size=target)
            assert syn.n_live == target

    def test_history_retained(self, space4):
        model = deterministic_model(space4, {0: 0}, quit_cells=(0,))
        syn = VectorizedSynthesizer(model, lam=1.0, rng=0)
        syn.spawn_from_distribution(0, 100, np.eye(16)[0])
        for t in range(1, 15):
            syn.step(t)
        total = syn.all_trajectories()
        assert len(total) == 100
        assert sum(tr.terminated for tr in total) == 100 - syn.n_live

    def test_capacity_growth(self, space4):
        """Spawning past the initial capacity must transparently grow."""
        model = deterministic_model(space4, {0: 0}, enter_cell=0)
        syn = VectorizedSynthesizer(model, lam=100.0, rng=0, initial_capacity=16)
        for t in range(0, 30):
            syn.spawn_from_entering(t, 10)
            if t > 0:
                syn.step(t)
        assert syn._n == 300
        assert all(len(tr) >= 1 for tr in syn.all_trajectories())


class TestDistributionEquivalence:
    """The two engines must produce statistically identical synthetics."""

    @pytest.fixture
    def loaded_model(self, space4, rng):
        model = GlobalMobilityModel(space4)
        model.set_all(rng.random(space4.size))
        return model

    def _run(self, engine_cls, model, seed, n=600, steps=12):
        syn = engine_cls(model, lam=8.0, rng=seed)
        syn.spawn_from_entering(0, n)
        for t in range(1, steps):
            syn.step(t)
        return syn.all_trajectories()

    def test_transition_distributions_match(self, loaded_model):
        from collections import Counter

        ref = Counter()
        fast = Counter()
        for seed in range(3):
            for tr in self._run(Synthesizer, loaded_model, seed):
                ref.update(tr.transitions())
            for tr in self._run(VectorizedSynthesizer, loaded_model, 100 + seed):
                fast.update(tr.transitions())
        total_ref = sum(ref.values())
        total_fast = sum(fast.values())
        # Compare the relative frequency of every transition seen by either.
        for key in set(ref) | set(fast):
            p_ref = ref[key] / total_ref
            p_fast = fast[key] / total_fast
            assert abs(p_ref - p_fast) < 0.02, key

    def test_survival_rates_match(self, loaded_model):
        ref_alive = np.mean([
            sum(not t.terminated for t in self._run(Synthesizer, loaded_model, s))
            for s in range(3)
        ])
        fast_alive = np.mean([
            sum(not t.terminated
                for t in self._run(VectorizedSynthesizer, loaded_model, 50 + s))
            for s in range(3)
        ])
        assert abs(ref_alive - fast_alive) / max(ref_alive, 1) < 0.15

    def test_length_distributions_match(self, loaded_model):
        ref_lengths = [
            len(t) for s in range(3) for t in self._run(Synthesizer, loaded_model, s)
        ]
        fast_lengths = [
            len(t)
            for s in range(3)
            for t in self._run(VectorizedSynthesizer, loaded_model, 50 + s)
        ]
        assert np.mean(ref_lengths) == pytest.approx(
            np.mean(fast_lengths), rel=0.1
        )


class TestPipelineIntegration:
    def test_vectorized_pipeline_runs(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, engine="vectorized", seed=0)
        ).run(walk_data)
        assert run.accountant.verify()
        real = walk_data.active_counts()
        syn = run.synthetic.active_counts()
        assert np.array_equal(real, syn)

    def test_vectorized_respects_adjacency(self, walk_data):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=5, engine="vectorized", seed=0)
        ).run(walk_data)
        grid = walk_data.grid
        for traj in run.synthetic.trajectories:
            for a, b in traj.transitions():
                assert grid.are_adjacent(a, b)

    def test_invalid_engine(self):
        with pytest.raises(ConfigurationError):
            RetraSynConfig(engine="gpu")

    def test_utility_comparable_between_engines(self, walk_data):
        from repro.metrics.registry import evaluate_all

        scores = {}
        for engine in ("object", "vectorized"):
            run = RetraSyn(
                RetraSynConfig(epsilon=2.0, w=5, engine=engine, seed=0)
            ).run(walk_data)
            scores[engine] = evaluate_all(
                walk_data, run.synthetic, phi=5,
                metrics=("density_error", "transition_error"), rng=0,
            )
        for metric in ("density_error", "transition_error"):
            assert abs(
                scores["object"][metric] - scores["vectorized"][metric]
            ) < 0.12, scores