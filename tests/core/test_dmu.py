"""Tests for the DMU significant-transition selection (Eq. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dmu import DMUSelector
from repro.ldp.oue import oue_variance


@pytest.fixture
def selector():
    return DMUSelector()


class TestClosedForm:
    def test_selects_large_drift(self, selector):
        model = np.array([0.5, 0.5, 0.5])
        collected = np.array([0.5, 0.9, 0.500001])
        d = selector.select(model, collected, epsilon_t=1.0, n_reporters=10_000)
        # Position 1 drifted by 0.4; variance at n=10k is tiny.
        assert 1 in d.selected
        assert 2 not in d.selected

    def test_high_noise_selects_nothing(self, selector):
        model = np.array([0.5, 0.1])
        collected = np.array([0.6, 0.3])
        # Two reporters: OUE variance is enormous; approximation wins.
        d = selector.select(model, collected, epsilon_t=0.5, n_reporters=2)
        assert d.n_selected == 0

    def test_rule_is_variance_threshold(self, selector):
        eps, n = 1.0, 100
        var = oue_variance(eps, n)
        delta = np.sqrt(var)
        model = np.array([0.5, 0.5])
        collected = np.array([0.5 + 0.5 * delta, 0.5 + 2.0 * delta])
        d = selector.select(model, collected, eps, n)
        assert not d.mask[0]  # below threshold
        assert d.mask[1]  # above threshold

    def test_total_error_value(self, selector):
        model = np.array([0.0, 0.0])
        collected = np.array([1.0, 0.0])
        eps, n = 1.0, 1000
        var = oue_variance(eps, n)
        d = selector.select(model, collected, eps, n)
        # Position 0 selected (pay var), position 1 approximated (pay 0).
        assert d.total_error == pytest.approx(var)

    def test_shape_mismatch(self, selector):
        with pytest.raises(ValueError):
            selector.select(np.zeros(3), np.zeros(4), 1.0, 10)

    def test_decision_fields_consistent(self, selector, rng):
        model = rng.random(50)
        collected = rng.random(50)
        d = selector.select(model, collected, 1.0, 200)
        assert d.n_selected == d.selected.size
        assert np.array_equal(np.flatnonzero(d.mask), d.selected)
        assert d.err_update == pytest.approx(oue_variance(1.0, 200))


class TestOptimality:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 5000),
        eps=st.floats(0.2, 3.0),
        d=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed, n, eps, d):
        """The separable closed form must equal the exhaustive optimum."""
        selector = DMUSelector()
        rng = np.random.default_rng(seed)
        model = rng.random(d)
        collected = rng.random(d)
        fast = selector.select(model, collected, eps, n)
        brute = selector.brute_force(model, collected, eps, n)
        assert fast.total_error == pytest.approx(brute.total_error)

    def test_brute_force_refuses_large_spaces(self, selector):
        with pytest.raises(ValueError):
            selector.brute_force(np.zeros(20), np.zeros(20), 1.0, 10)


class TestErrorMonotonicity:
    def test_more_reporters_more_selection(self, selector, rng):
        """Lower perturbation noise should never shrink the selection."""
        model = rng.random(100)
        collected = rng.random(100)
        small = selector.select(model, collected, 1.0, 50)
        large = selector.select(model, collected, 1.0, 5000)
        assert set(small.selected.tolist()) <= set(large.selected.tolist())

    def test_higher_epsilon_more_selection(self, selector, rng):
        model = rng.random(100)
        collected = rng.random(100)
        low = selector.select(model, collected, 0.3, 500)
        high = selector.select(model, collected, 3.0, 500)
        assert set(low.selected.tolist()) <= set(high.selected.tolist())


class TestCandidatePrefilter:
    """DMU restricted to a candidate mask (shard-local prefiltering)."""

    def test_non_candidates_never_selected(self, selector):
        model = np.array([0.5, 0.5, 0.5, 0.5])
        collected = np.array([0.9, 0.9, 0.9, 0.9])  # all drift heavily
        cand = np.array([True, False, True, False])
        d = selector.select(
            model, collected, epsilon_t=1.0, n_reporters=10_000,
            candidates=cand,
        )
        assert set(d.selected.tolist()) == {0, 2}
        assert not d.mask[1] and not d.mask[3]

    def test_full_mask_matches_unrestricted(self, selector):
        rng = np.random.default_rng(0)
        model = rng.random(50)
        collected = rng.random(50)
        a = selector.select(model, collected, 1.0, 500)
        b = selector.select(
            model, collected, 1.0, 500, candidates=np.ones(50, dtype=bool)
        )
        assert np.array_equal(a.mask, b.mask)
        assert a.total_error == pytest.approx(b.total_error)

    def test_mask_shape_mismatch_rejected(self, selector):
        with pytest.raises(ValueError):
            selector.select(
                np.zeros(4), np.zeros(4), 1.0, 10,
                candidates=np.ones(3, dtype=bool),
            )
