"""Tests for the real-time synthesizer."""

import numpy as np
import pytest

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.synthesis import Synthesizer
from repro.exceptions import ConfigurationError


def deterministic_model(space, origin_to_dest: dict, enter_cell=0, quit_cells=()):
    """Build a model whose rows put all movement mass on given moves."""
    model = GlobalMobilityModel(space)
    f = np.zeros(space.size)
    for origin, dest in origin_to_dest.items():
        f[space.index_of_move(origin, dest)] = 1.0
    f[space.index_of_enter(enter_cell)] = 1.0
    for c in quit_cells:
        f[space.index_of_quit(c)] = 1.0
    model.set_all(f)
    return model


class TestSpawning:
    def test_spawn_from_entering_uses_e(self, space4):
        model = deterministic_model(space4, {}, enter_cell=7)
        syn = Synthesizer(model, lam=10.0, rng=0)
        syn.spawn_from_entering(0, 25)
        assert syn.n_live == 25
        assert all(tr.cells == [7] for tr in syn.live_streams)
        assert all(tr.start_time == 0 for tr in syn.live_streams)

    def test_spawn_uniform_covers_domain(self, space4):
        model = GlobalMobilityModel(space4)
        syn = Synthesizer(model, lam=10.0, rng=0)
        syn.spawn_uniform(0, 500)
        cells = {tr.cells[0] for tr in syn.live_streams}
        assert len(cells) > 10  # most of the 16 cells hit

    def test_spawn_from_distribution(self, space4):
        model = GlobalMobilityModel(space4)
        syn = Synthesizer(model, lam=10.0, rng=0)
        probs = np.zeros(16)
        probs[3] = 1.0
        syn.spawn_from_distribution(0, 10, probs)
        assert all(tr.cells == [3] for tr in syn.live_streams)

    def test_spawn_from_bad_distribution_shape(self, space4):
        syn = Synthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        with pytest.raises(ConfigurationError):
            syn.spawn_from_distribution(0, 5, np.ones(3))

    def test_spawn_zero_count_noop(self, space4):
        syn = Synthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        syn.spawn_from_entering(0, 0)
        assert syn.n_live == 0

    def test_unique_user_ids(self, space4):
        syn = Synthesizer(GlobalMobilityModel(space4), lam=10.0, rng=0)
        syn.spawn_uniform(0, 50)
        syn.spawn_uniform(1, 50)
        ids = [tr.user_id for tr in syn.all_trajectories()]
        assert len(set(ids)) == 100


class TestNewPointGeneration:
    def test_follows_deterministic_chain(self, space4):
        # 0 -> 1 -> 2 -> 3 along the bottom row.
        model = deterministic_model(space4, {0: 1, 1: 2, 2: 3, 3: 3})
        syn = Synthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_distribution(0, 5, np.eye(16)[0])
        for t in range(1, 4):
            syn.step(t)
        for tr in syn.live_streams:
            assert tr.cells == [0, 1, 2, 3]

    def test_no_quit_without_quit_mass(self, space4):
        model = deterministic_model(space4, {0: 0})
        syn = Synthesizer(model, lam=1.0, rng=0)
        syn.spawn_from_distribution(0, 20, np.eye(16)[0])
        for t in range(1, 10):
            syn.step(t)
        assert syn.n_live == 20

    def test_quit_probability_grows_with_length(self, space4):
        """Eq. 8: longer streams quit more readily (ell / lambda factor)."""
        quit_heavy = {0: 0}
        model = deterministic_model(space4, quit_heavy, quit_cells=(0,))
        # quit raw prob at cell 0 = 1 / (1 move + 1 quit) = 0.5
        survivors = []
        for lam in (2.0, 50.0):
            syn = Synthesizer(model, lam=lam, rng=1)
            syn.spawn_from_distribution(0, 400, np.eye(16)[0])
            for t in range(1, 6):
                syn.step(t)
            survivors.append(syn.n_live)
        # Small lambda => aggressive termination => fewer survivors.
        assert survivors[0] < survivors[1]

    def test_termination_disabled(self, space4):
        model = deterministic_model(space4, {0: 0}, quit_cells=(0,))
        syn = Synthesizer(model, lam=1.0, enable_termination=False, rng=0)
        syn.spawn_from_distribution(0, 50, np.eye(16)[0])
        for t in range(1, 10):
            syn.step(t)
        assert syn.n_live == 50

    def test_terminated_streams_are_kept_in_history(self, space4):
        model = deterministic_model(space4, {0: 0}, quit_cells=(0,))
        syn = Synthesizer(model, lam=1.0, rng=0)
        syn.spawn_from_distribution(0, 100, np.eye(16)[0])
        for t in range(1, 15):
            syn.step(t)
        total = syn.all_trajectories()
        assert len(total) == 100
        assert sum(tr.terminated for tr in total) == 100 - syn.n_live

    def test_moves_respect_adjacency(self, space4, walk_data):
        model = GlobalMobilityModel(space4)
        rng = np.random.default_rng(5)
        model.set_all(rng.random(space4.size))
        syn = Synthesizer(model, lam=20.0, rng=0)
        syn.spawn_from_entering(0, 100)
        grid = space4.grid
        for t in range(1, 15):
            syn.step(t)
        for tr in syn.all_trajectories():
            for a, b in tr.transitions():
                assert grid.are_adjacent(a, b)


class TestSizeAdjustment:
    def test_grows_to_target(self, space4):
        model = deterministic_model(space4, {0: 0}, enter_cell=2)
        syn = Synthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_entering(0, 10)
        syn.step(1, target_size=25)
        assert syn.n_live == 25
        # The 15 appended streams start at t=1 from the entering cell.
        new = [tr for tr in syn.live_streams if tr.start_time == 1]
        assert len(new) == 15
        assert all(tr.cells == [2] for tr in new)

    def test_shrinks_to_target(self, space4):
        model = deterministic_model(space4, {0: 0}, quit_cells=(0,))
        syn = Synthesizer(model, lam=1e9, rng=0)  # suppress natural quits
        syn.spawn_from_distribution(0, 30, np.eye(16)[0])
        syn.step(1, target_size=12)
        assert syn.n_live == 12
        assert len(syn.all_trajectories()) == 30

    def test_exact_target_noop(self, space4):
        model = deterministic_model(space4, {0: 0})
        syn = Synthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_distribution(0, 10, np.eye(16)[0])
        syn.step(1, target_size=10)
        assert syn.n_live == 10

    def test_negative_target_rejected(self, space4):
        model = deterministic_model(space4, {0: 0})
        syn = Synthesizer(model, lam=100.0, rng=0)
        syn.spawn_from_distribution(0, 5, np.eye(16)[0])
        with pytest.raises(ConfigurationError):
            syn.step(1, target_size=-1)

    def test_size_tracks_series(self, space4):
        model = deterministic_model(space4, {c: c for c in range(16)}, quit_cells=(0,))
        syn = Synthesizer(model, lam=1e9, rng=3)
        targets = [20, 35, 10, 10, 40, 0, 5]
        syn.spawn_from_entering(0, targets[0])
        for t, target in enumerate(targets[1:], start=1):
            syn.step(t, target_size=target)
            assert syn.n_live == target


class TestValidation:
    def test_bad_lambda(self, space4):
        with pytest.raises(ConfigurationError):
            Synthesizer(GlobalMobilityModel(space4), lam=0.0)
