"""ISSUE 7 acceptance: the distributed shard plane ≡ in-process engines.

``shard_executor="distributed"`` promotes every collection shard to its
own worker process behind a socketpair carrying length-prefixed RSF2
frames, with the privacy ledger living *inside* the worker.  None of
that may be observable in the output: for a fixed seed the distributed
engine must synthesize the identical stream to the serial and pipe-pool
executors at every shard count, its merged accountant view must agree
with the single-process ledger, checkpoints must round-trip through the
coordinator, and worker-side failures must surface as the same typed
exceptions the in-process path raises.
"""

import pickle

import pytest

from repro.core.persistence import load_checkpoint, save_checkpoint
from repro.core.retrasyn import RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import ConfigurationError, PrivacyBudgetError


@pytest.fixture(scope="module")
def stream():
    return make_random_walks(k=4, n_streams=130, n_timestamps=22, seed=1)


def _make(stream, n_shards, executor, **overrides):
    cfg = RetraSynConfig(
        epsilon=1.0, w=5, seed=42, n_shards=n_shards,
        shard_executor=executor, **overrides,
    )
    return ShardedOnlineRetraSyn(stream.grid, cfg, lam=5.0)


def _drive(stream, curator):
    try:
        for t in range(stream.n_timestamps):
            curator.process_timestep(
                t,
                participants=stream.participants_at(t),
                newly_entered=stream.newly_entered_at(t),
                quitted=stream.quitted_at(t),
                n_real_active=stream.n_active_at(t),
            )
        syn = curator.synthetic_dataset(stream.n_timestamps)
        return [(tr.start_time, list(tr.cells)) for tr in syn.trajectories]
    finally:
        curator.close()


SHARD_COUNTS = [pytest.param(1, id="K1"), pytest.param(4, id="K4")]


class TestDistributedMatchesInProcess:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_identical_to_serial_and_process(self, stream, n_shards):
        serial = _drive(stream, _make(stream, n_shards, "serial"))
        process = _drive(stream, _make(stream, n_shards, "process"))
        distributed = _drive(stream, _make(stream, n_shards, "distributed"))
        assert distributed == serial
        assert distributed == process

    @pytest.mark.parametrize(
        "overrides",
        [
            pytest.param(
                {"division": "budget", "allocator": "adaptive-user"},
                id="budget-adaptive-user",
            ),
            pytest.param(
                {"division": "budget", "allocator": "uniform"},
                id="budget-uniform",
            ),
            pytest.param(
                {"division": "population", "allocator": "random"},
                id="population-random",
            ),
            pytest.param({"dmu_prefilter": True}, id="dmu-prefilter"),
        ],
    )
    def test_config_variants_identical(self, stream, overrides):
        serial = _drive(stream, _make(stream, 4, "serial", **overrides))
        distributed = _drive(
            stream, _make(stream, 4, "distributed", **overrides)
        )
        assert distributed == serial


class TestDistributedAccountantView:
    def test_summary_matches_serial_ledger(self, stream):
        serial = _make(stream, 4, "serial")
        distributed = _make(stream, 4, "distributed")
        assert _drive(stream, serial) == _drive(stream, distributed)
        # _drive closed both engines; the view must keep answering from
        # the final summaries the coordinator cached at close().
        assert distributed.accountant.summary() == serial.accountant.summary()
        assert distributed.accountant.verify()
        assert (
            distributed.accountant.max_window_spend()
            == serial.accountant.max_window_spend()
        )
        assert distributed.accountant.n_users == serial.accountant.n_users
        assert list(distributed.accountant.violations) == list(
            serial.accountant.violations
        )

    def test_view_live_and_pickled(self, stream):
        curator = _make(stream, 2, "distributed")
        try:
            for t in range(6):
                curator.process_timestep(
                    t,
                    participants=stream.participants_at(t),
                    newly_entered=stream.newly_entered_at(t),
                    quitted=stream.quitted_at(t),
                    n_real_active=stream.n_active_at(t),
                )
            live = curator.accountant.summary()
            assert live["n_users"] > 0
            # Pickling freezes the stats and drops the engine reference.
            thawed = pickle.loads(pickle.dumps(curator.accountant))
            assert thawed.summary() == live
            assert thawed.epsilon == curator.accountant.epsilon
            assert thawed.w == curator.accountant.w
        finally:
            curator.close()

    def test_untracked_engine_has_no_accountant(self, stream):
        curator = _make(stream, 2, "distributed", track_privacy=False)
        try:
            assert curator.accountant is None
        finally:
            curator.close()


class TestDistributedCheckpoint:
    def test_roundtrip_through_coordinator(self, stream, tmp_path):
        half = stream.n_timestamps // 2

        def _step(curator, t):
            curator.process_timestep(
                t,
                participants=stream.participants_at(t),
                newly_entered=stream.newly_entered_at(t),
                quitted=stream.quitted_at(t),
                n_real_active=stream.n_active_at(t),
            )

        reference = _drive(stream, _make(stream, 2, "distributed"))

        first = _make(stream, 2, "distributed")
        for t in range(half):
            _step(first, t)
        path = tmp_path / "distributed.ckpt"
        save_checkpoint(first, path)
        first.close()

        resumed = load_checkpoint(path)
        try:
            assert resumed.executor == "distributed"
            assert resumed._last_t == half - 1
            for t in range(half, stream.n_timestamps):
                _step(resumed, t)
            syn = resumed.synthetic_dataset(stream.n_timestamps)
            result = [
                (tr.start_time, list(tr.cells)) for tr in syn.trajectories
            ]
            summary = resumed.accountant.summary()
        finally:
            resumed.close()

        assert result == reference
        assert summary["satisfied"]


class TestWorkerErrorPropagation:
    def test_privacy_refusal_surfaces_typed(self, stream):
        """A worker-side ledger refusal crosses the socket as the same
        PrivacyBudgetError the in-process path raises.

        Budget division makes every participant a reporter; with w=1 a
        duplicated user id in one batch double-spends its window.
        """
        cfg = RetraSynConfig(
            epsilon=1.0, w=1, seed=0, n_shards=2,
            shard_executor="distributed",
            division="budget", allocator="uniform",
        )
        curator = ShardedOnlineRetraSyn(stream.grid, cfg, lam=5.0)
        try:
            parts = stream.participants_at(0)
            doubled = list(parts) + [parts[0]]
            with pytest.raises(PrivacyBudgetError):
                curator.process_timestep(
                    0,
                    participants=doubled,
                    newly_entered=stream.newly_entered_at(0),
                    quitted=stream.quitted_at(0),
                    n_real_active=stream.n_active_at(0),
                )
        finally:
            curator.close()

    def test_protocol_error_surfaces_typed(self, stream):
        """Advancing a timestamp that was never staged is a worker-side
        ConfigurationError and must arrive as one (workers stay alive)."""
        curator = _make(stream, 2, "distributed")
        try:
            with pytest.raises(ConfigurationError, match="shard-advance"):
                curator._pool.advance(99, None, 0.5)
            # The workers replied with the error rather than dying; the
            # coordinator can still shut the pool down in an orderly way
            # (like the in-process path, an engine is closed after a
            # protocol/refusal error, not reused).
            assert curator._pool.alive
        finally:
            curator.close()
