"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--out", "x.npz"])


class TestDatasetsCommands:
    def test_list(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "tdrive" in out and "oldenburg" in out and "sanjoaquin" in out

    def test_generate_and_stats(self, tmp_path, capsys):
        out_file = tmp_path / "td.npz"
        code = main([
            "datasets", "generate", "--name", "tdrive",
            "--scale", "0.01", "--out", str(out_file), "--seed", "0",
        ])
        assert code == 0
        assert out_file.exists()
        assert main(["datasets", "stats", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "average_length" in out


class TestRunEvaluate:
    @pytest.fixture
    def dataset_file(self, tmp_path):
        path = tmp_path / "data.npz"
        main([
            "datasets", "generate", "--name", "tdrive",
            "--scale", "0.01", "--out", str(path), "--seed", "0",
        ])
        return path

    def test_run_retrasyn(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "RetraSyn_p", "--input", str(dataset_file),
            "--epsilon", "1.0", "--w", "5", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "satisfied': True" in capsys.readouterr().out

    def test_run_synthesis_plane_flags(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "RetraSyn_p", "--input", str(dataset_file),
            "--epsilon", "1.0", "--w", "5", "--out", str(out),
            "--engine", "vectorized", "--compile-mode", "full-loop",
            "--synthesis-shards", "2",
        ])
        assert code == 0
        assert out.exists()
        assert "satisfied': True" in capsys.readouterr().out

    def test_run_baseline(self, dataset_file, tmp_path):
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "LBD", "--input", str(dataset_file),
            "--w", "5", "--out", str(out),
        ])
        assert code == 0

    def test_run_no_audit(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "RetraSyn_b", "--input", str(dataset_file),
            "--w", "5", "--out", str(out), "--no-audit",
        ])
        assert code == 0
        assert "privacy audit" not in capsys.readouterr().out

    def test_evaluate(self, dataset_file, tmp_path, capsys):
        syn = tmp_path / "syn.npz"
        main([
            "run", "--method", "RetraSyn_p", "--input", str(dataset_file),
            "--w", "5", "--out", str(syn),
        ])
        code = main(["evaluate", str(dataset_file), str(syn), "--phi", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fidelity report" in out
        assert "length_error" in out


class TestExperimentCommand:
    def test_table4_tiny(self, capsys):
        code = main([
            "experiment", "table4", "--scale", "0.01", "--w", "5",
            "--k", "4", "--datasets", "tdrive",
        ])
        assert code == 0
        assert "Table IV" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        code = main([
            "experiment", "fig7", "--scale", "0.01", "--w", "5",
            "--k", "4", "--datasets", "tdrive",
        ])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out


class TestServeCommand:
    @pytest.fixture
    def dataset_file(self, tmp_path):
        path = tmp_path / "data.npz"
        main([
            "datasets", "generate", "--name", "tdrive",
            "--scale", "0.01", "--out", str(path), "--seed", "0",
        ])
        return path

    def test_serve_basic(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "syn.npz"
        code = main([
            "serve", "--input", str(dataset_file), "--w", "5",
            "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "timestamps processed" in text
        assert "privacy audit" in text
        assert out.exists()

    def test_serve_shuffled_sharded_with_checkpoint(
        self, dataset_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "curator.ckpt"
        code = main([
            "serve", "--input", str(dataset_file), "--w", "5",
            "--shards", "2", "--shuffle", "--lateness", "2",
            "--queue-size", "64",
            "--checkpoint", str(ckpt), "--checkpoint-every", "5",
        ])
        assert code == 0
        assert ckpt.exists()
        text = capsys.readouterr().out
        assert "late reports dropped   0" in text

    def test_serve_resume_from_checkpoint(self, dataset_file, tmp_path, capsys):
        ckpt = tmp_path / "curator.ckpt"
        main([
            "serve", "--input", str(dataset_file), "--w", "5",
            "--checkpoint", str(ckpt), "--checkpoint-every", "5",
        ])
        capsys.readouterr()
        code = main([
            "serve", "--input", str(dataset_file), "--w", "5",
            "--checkpoint", str(ckpt), "--resume",
        ])
        assert code == 0
        assert "resumed at t=" in capsys.readouterr().out
