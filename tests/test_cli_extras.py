"""Tests for the plan and historical CLI subcommands."""

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_default_plan(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "Deployment plan" in out
        assert "recommended_k" in out

    def test_custom_plan(self, capsys):
        code = main([
            "plan", "--epsilon", "2.0", "--n-active", "1000000",
            "--k", "10", "--division", "budget", "--portion", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget" in out

    def test_invalid_division_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--division", "federated"])


class TestRunEngineAndRandom:
    def test_vectorized_engine_and_random_allocator(self, tmp_path, capsys):
        data = tmp_path / "d.npz"
        main([
            "datasets", "generate", "--name", "tdrive",
            "--scale", "0.01", "--out", str(data), "--seed", "0",
        ])
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "RetraSyn_p", "--input", str(data),
            "--w", "5", "--allocator", "random", "--engine", "vectorized",
            "--out", str(out),
        ])
        assert code == 0
        assert "satisfied': True" in capsys.readouterr().out

    def test_baseline_ignores_engine_flag(self, tmp_path):
        data = tmp_path / "d.npz"
        main([
            "datasets", "generate", "--name", "tdrive",
            "--scale", "0.01", "--out", str(data), "--seed", "0",
        ])
        out = tmp_path / "syn.npz"
        code = main([
            "run", "--method", "LPA", "--input", str(data),
            "--w", "5", "--engine", "vectorized", "--out", str(out),
        ])
        assert code == 0


class TestHistoricalExperiment:
    def test_runs(self, capsys):
        code = main([
            "experiment", "historical", "--scale", "0.01",
            "--w", "5", "--k", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Streaming vs historical" in out
        assert "LDPTrace" in out
