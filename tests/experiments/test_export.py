"""Tests for CSV export of experiment results."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.export import (
    matrix_to_rows,
    read_csv,
    sweep_to_rows,
    table3_to_rows,
    write_csv,
)


@pytest.fixture
def table3_results():
    return {
        "tdrive": {
            "density_error": {
                "LBD": {0.5: 0.3, 1.0: 0.29},
                "RetraSyn_p": {0.5: 0.17, 1.0: 0.16},
            }
        }
    }


class TestFlattening:
    def test_table3_rows(self, table3_results):
        rows = table3_to_rows(table3_results)
        assert len(rows) == 4
        assert {"dataset", "metric", "method", "epsilon", "score"} == set(rows[0])
        scores = {(r["method"], r["epsilon"]): r["score"] for r in rows}
        assert scores[("RetraSyn_p", 1.0)] == 0.16

    def test_sweep_rows(self):
        results = {"tdrive": {"query_error": {"LBD": {10: 0.8, 20: 0.9}}}}
        rows = sweep_to_rows(results, "w")
        assert len(rows) == 2
        assert rows[0]["w"] == 10

    def test_matrix_rows(self):
        results = {"tdrive": {"NoEQ_p": {"length_error": 0.69}}}
        rows = matrix_to_rows(results)
        assert rows == [
            {
                "dataset": "tdrive",
                "method": "NoEQ_p",
                "metric": "length_error",
                "score": 0.69,
            }
        ]


class TestCsvIO:
    def test_round_trip(self, table3_results, tmp_path):
        rows = table3_to_rows(table3_results)
        path = tmp_path / "t3.csv"
        write_csv(rows, path)
        back = read_csv(path)
        assert len(back) == len(rows)
        assert back[0]["dataset"] == "tdrive"
        assert float(back[0]["score"]) == rows[0]["score"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "x.csv")

    def test_ragged_rows_rejected(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        with pytest.raises(ConfigurationError):
            write_csv(rows, tmp_path / "x.csv")

    def test_from_real_experiment(self, tmp_path):
        """End to end: tiny experiment -> CSV on disk."""
        from repro.experiments.runner import ExperimentSetting
        from repro.experiments.table3 import run_table3

        results = run_table3(
            ExperimentSetting(scale=0.01, w=5, k=4, seed=0),
            epsilons=(1.0,),
            datasets=("tdrive",),
            methods=("RetraSyn_p",),
            metrics=("density_error",),
        )
        rows = table3_to_rows(results)
        path = tmp_path / "real.csv"
        write_csv(rows, path)
        assert len(read_csv(path)) == 1
