"""Tests for the streaming-vs-historical extension experiment."""

from repro.experiments.historical import (
    HISTORICAL_METRICS,
    format_historical,
    run_historical,
)
from repro.experiments.runner import ExperimentSetting

TINY = ExperimentSetting(scale=0.01, w=5, phi=5, k=4, seed=0)


class TestHistoricalExperiment:
    def test_structure(self):
        results = run_historical(TINY, datasets=("tdrive",))
        assert set(results) == {"tdrive"}
        methods = set(results["tdrive"])
        assert methods == {"RetraSyn_p (streaming)", "LDPTrace (one-shot)"}
        for scores in results["tdrive"].values():
            assert set(scores) == set(HISTORICAL_METRICS)

    def test_scores_finite(self):
        import numpy as np

        results = run_historical(TINY, datasets=("tdrive",))
        for scores in results["tdrive"].values():
            for v in scores.values():
                assert np.isfinite(v)

    def test_format(self):
        results = run_historical(TINY, datasets=("tdrive",))
        text = format_historical(results)
        assert "Streaming vs historical" in text
        assert "LDPTrace (one-shot)" in text
