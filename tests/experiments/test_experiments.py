"""Tests for the per-table/figure experiment modules (tiny configurations)."""

import pytest

from repro.experiments.runner import ExperimentSetting
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import TABLE4_METHODS, format_table4, run_table4
from repro.experiments.table5 import COMPONENTS, format_table5, run_table5
from repro.experiments.fig3 import FIG3_STRATEGIES, format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.fig7 import format_fig7, linearity_score, run_fig7

TINY = ExperimentSetting(scale=0.01, w=5, phi=5, k=4, seed=0)


class TestTable3:
    def test_structure(self):
        res = run_table3(
            TINY,
            epsilons=(0.5, 1.0),
            datasets=("tdrive",),
            methods=("LBD", "RetraSyn_p"),
            metrics=("density_error", "kendall_tau"),
        )
        assert set(res) == {"tdrive"}
        assert set(res["tdrive"]) == {"density_error", "kendall_tau"}
        assert set(res["tdrive"]["density_error"]) == {"LBD", "RetraSyn_p"}
        assert set(res["tdrive"]["density_error"]["LBD"]) == {0.5, 1.0}

    def test_format(self):
        res = run_table3(
            TINY,
            epsilons=(1.0,),
            datasets=("tdrive",),
            methods=("RetraSyn_p",),
            metrics=("density_error",),
        )
        text = format_table3(res)
        assert "Table III" in text
        assert "RetraSyn_p" in text


class TestTable4:
    def test_all_six_models(self):
        res = run_table4(TINY, datasets=("tdrive",), metrics=("length_error",))
        assert set(res["tdrive"]) == set(TABLE4_METHODS)

    def test_noeq_signature(self):
        """NoEQ must pin length error near ln 2 while RetraSyn does not."""
        res = run_table4(TINY, datasets=("tdrive",), metrics=("length_error",))
        scores = res["tdrive"]
        assert scores["NoEQ_p"]["length_error"] > 0.6
        assert scores["RetraSyn_p"]["length_error"] < 0.6

    def test_format(self):
        res = run_table4(TINY, datasets=("tdrive",), metrics=("length_error",))
        assert "Table IV" in format_table4(res)


class TestTable5:
    def test_components_present(self):
        res = run_table5(TINY, datasets=("tdrive",))
        for comp in COMPONENTS:
            assert comp in res["tdrive"]
            assert res["tdrive"][comp] >= 0.0

    def test_synthesis_dominates(self):
        """Paper Table V: synthesis is the most expensive component."""
        res = run_table5(
            ExperimentSetting(scale=0.02, w=5, seed=0), datasets=("tdrive",)
        )
        r = res["tdrive"]
        assert r["synthesis"] >= r["dmu"]
        assert r["synthesis"] >= r["model_construction"]

    def test_format(self):
        res = run_table5(TINY, datasets=("tdrive",))
        text = format_table5(res)
        assert "Table V" in text and "synthesis" in text


class TestFig3:
    def test_all_strategies(self):
        res = run_fig3(TINY, datasets=("tdrive",), metrics=("transition_error",))
        assert set(res["tdrive"]) == {label for label, _m, _a in FIG3_STRATEGIES}

    def test_format(self):
        res = run_fig3(TINY, datasets=("tdrive",), metrics=("transition_error",))
        assert "Figure 3" in format_fig3(res)


class TestFig4:
    def test_window_sweep(self):
        res = run_fig4(
            TINY, windows=(5, 10), datasets=("tdrive",),
            methods=("RetraSyn_p",), metrics=("transition_error",),
        )
        cells = res["tdrive"]["transition_error"]["RetraSyn_p"]
        assert set(cells) == {5, 10}

    def test_format(self):
        res = run_fig4(
            TINY, windows=(5,), datasets=("tdrive",),
            methods=("RetraSyn_p",), metrics=("transition_error",),
        )
        assert "Figure 4" in format_fig4(res)


class TestFig5:
    def test_phi_sweep_single_run(self):
        res = run_fig5(
            TINY, phis=(3, 6), datasets=("tdrive",),
            methods=("RetraSyn_p",), metrics=("query_error",),
        )
        cells = res["tdrive"]["query_error"]["RetraSyn_p"]
        assert set(cells) == {3, 6}

    def test_format(self):
        res = run_fig5(
            TINY, phis=(3,), datasets=("tdrive",),
            methods=("RetraSyn_p",), metrics=("query_error",),
        )
        assert "Figure 5" in format_fig5(res)


class TestFig6:
    def test_k_sweep(self):
        res = run_fig6(TINY, ks=(2, 4), datasets=("tdrive",), methods=("RetraSyn_p",))
        cells = res["RetraSyn_p"]["tdrive"]
        assert set(cells) == {2, 4}
        for v in cells.values():
            assert "query_error" in v and "runtime_per_ts" in v

    def test_format(self):
        res = run_fig6(TINY, ks=(2,), datasets=("tdrive",), methods=("RetraSyn_p",))
        assert "Figure 6" in format_fig6(res)


class TestFig7:
    def test_fraction_sweep(self):
        res = run_fig7(
            TINY, fractions=(0.5, 1.0), datasets=("tdrive",), methods=("RetraSyn_p",)
        )
        cells = res["RetraSyn_p"]["tdrive"]
        assert set(cells) == {0.5, 1.0}
        for v in cells.values():
            assert v > 0.0

    def test_linearity_score(self):
        assert linearity_score({0.2: 1.0, 0.4: 2.0, 0.6: 3.0}) == pytest.approx(1.0)
        assert linearity_score({0.2: 1.0}) == 1.0

    def test_format(self):
        res = run_fig7(
            TINY, fractions=(1.0,), datasets=("tdrive",), methods=("RetraSyn_p",)
        )
        assert "Figure 7" in format_fig7(res)
