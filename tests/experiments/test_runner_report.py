"""Tests for the experiment runner and report rendering."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentSetting,
    make_method,
    run_method,
    standard_datasets,
)


class TestMakeMethod:
    @pytest.mark.parametrize(
        "name,expected_label",
        [
            ("LBD", "LBD"),
            ("lpa", "LPA"),
            ("RetraSyn_b", "RetraSyn_b"),
            ("RetraSyn_p", "RetraSyn_p"),
            ("AllUpdate_p", "AllUpdate_p"),
            ("NoEQ_b", "NoEQ_b"),
        ],
    )
    def test_names_resolve(self, name, expected_label):
        algo = make_method(name, epsilon=1.0, w=5, seed=0)
        assert algo.config.label == expected_label

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            make_method("FooBar_x", epsilon=1.0, w=5)
        with pytest.raises(ConfigurationError):
            make_method("Foo_b", epsilon=1.0, w=5)


class TestRunMethod:
    def test_scores_and_privacy(self, walk_data):
        setting = ExperimentSetting(epsilon=1.0, w=5, phi=5, seed=0)
        res = run_method(
            walk_data, "RetraSyn_p", setting,
            metrics=("density_error", "kendall_tau"), keep_run=True,
        )
        assert set(res.scores) == {"density_error", "kendall_tau"}
        assert res.privacy_ok
        assert res.run is not None

    def test_run_dropped_by_default(self, walk_data):
        setting = ExperimentSetting(epsilon=1.0, w=5, seed=0)
        res = run_method(walk_data, "LBD", setting, metrics=("density_error",))
        assert res.run is None
        assert res.privacy_ok  # vacuously true without a kept run

    def test_every_method_runs(self, walk_data):
        setting = ExperimentSetting(epsilon=1.0, w=5, seed=0)
        for method in ALL_METHODS:
            res = run_method(
                walk_data, method, setting, metrics=("density_error",)
            )
            assert "density_error" in res.scores


class TestStandardDatasets:
    def test_loads_requested(self):
        setting = ExperimentSetting(scale=0.01, k=4, seed=0)
        data = standard_datasets(setting, names=("tdrive",))
        assert list(data) == ["tdrive"]
        assert data["tdrive"].grid.k == 4


class TestReport:
    def test_format_table_contents(self):
        rows = {"A": {1: 0.5, 2: 0.25}, "B": {1: 0.75, 2: 0.125}}
        text = format_table("T", rows, [1, 2], col_header="eps")
        assert "T" in text
        assert "0.5000" in text and "0.1250" in text
        assert "A" in text and "B" in text

    def test_best_marker_lower_better(self):
        rows = {"A": {1: 0.5}, "B": {1: 0.9}}
        text = format_table("T", rows, [1], best_of="density_error")
        a_line = next(ln for ln in text.splitlines() if ln.startswith("A"))
        assert a_line.rstrip().endswith("*")

    def test_best_marker_higher_better(self):
        rows = {"A": {1: 0.5}, "B": {1: 0.9}}
        text = format_table("T", rows, [1], best_of="kendall_tau")
        b_line = next(ln for ln in text.splitlines() if ln.startswith("B"))
        assert b_line.rstrip().endswith("*")

    def test_missing_cells_dash(self):
        rows = {"A": {1: 0.5}}
        text = format_table("T", rows, [1, 2])
        assert "-" in text

    def test_format_series(self):
        text = format_series("S", {"m": [0.1, 0.2]}, [10, 20], x_label="w")
        assert "0.1000" in text and "0.2000" in text
