"""Tests for the population-utility extension experiment."""

import numpy as np

from repro.experiments.population_utility import (
    format_population_utility,
    run_population_utility,
)
from repro.experiments.runner import ExperimentSetting

TINY = ExperimentSetting(scale=0.01, w=5, phi=5, k=4, seed=0)


class TestPopulationUtility:
    def test_structure(self):
        results = run_population_utility(
            TINY,
            fractions=(0.5, 1.0),
            datasets=("tdrive",),
            metrics=("density_error",),
            n_repeats=1,
        )
        cells = results["tdrive"]["density_error"]
        assert set(cells) == {0.5, 1.0}
        assert all(np.isfinite(v) for v in cells.values())

    def test_repeats_average(self):
        a = run_population_utility(
            TINY, fractions=(1.0,), datasets=("tdrive",),
            metrics=("density_error",), n_repeats=1,
        )
        b = run_population_utility(
            TINY, fractions=(1.0,), datasets=("tdrive",),
            metrics=("density_error",), n_repeats=2,
        )
        # Different repeat counts may differ, but both stay in range.
        for r in (a, b):
            v = r["tdrive"]["density_error"][1.0]
            assert 0.0 <= v <= 0.7

    def test_format(self):
        results = run_population_utility(
            TINY, fractions=(1.0,), datasets=("tdrive",),
            metrics=("density_error",), n_repeats=1,
        )
        text = format_population_utility(results)
        assert "Utility vs population size" in text
