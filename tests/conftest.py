"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_lane_stream,
    make_random_walks,
    make_two_hotspot_stream,
)
from repro.geo.grid import Grid, unit_grid
from repro.geo.point import BoundingBox
from repro.stream.state_space import TransitionStateSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def grid4() -> Grid:
    """A 4x4 grid over the unit square."""
    return unit_grid(4)


@pytest.fixture
def grid6() -> Grid:
    """A 6x6 grid over the unit square (the paper's default K)."""
    return unit_grid(6)


@pytest.fixture
def wide_grid() -> Grid:
    """A non-square-extent grid to catch x/y mix-ups."""
    return Grid(BoundingBox(-10.0, 0.0, 30.0, 20.0), 5)


@pytest.fixture
def space4(grid4) -> TransitionStateSpace:
    return TransitionStateSpace(grid4)


@pytest.fixture
def space4_noeq(grid4) -> TransitionStateSpace:
    return TransitionStateSpace(grid4, include_entering_quitting=False)


@pytest.fixture
def lane_data():
    """Deterministic left-to-right lane flows (known true model)."""
    return make_lane_stream(k=5, n_streams=150, n_timestamps=25, seed=7)


@pytest.fixture
def walk_data():
    """Random walks with churn."""
    return make_random_walks(k=5, n_streams=120, n_timestamps=30, seed=11)


@pytest.fixture
def hotspot_data():
    """Two-hotspot flows with a mid-stream regime shift."""
    return make_two_hotspot_stream(k=5, n_streams=150, n_timestamps=40, seed=3)
