"""Tests for the terminal visualisation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geo.grid import unit_grid
from repro.viz import density_heatmap, side_by_side, timeseries, transition_matrix_view


class TestDensityHeatmap:
    def test_dimensions(self, grid4):
        art = density_heatmap(grid4, np.zeros(16))
        lines = art.splitlines()
        assert len(lines) == 5  # 4 rows + border
        assert all(len(ln) == 2 * 4 + 2 for ln in lines)

    def test_hot_cell_rendered_dense(self, grid4):
        counts = np.zeros(16)
        counts[0] = 100.0  # row 0, col 0 -> bottom-left
        art = density_heatmap(grid4, counts)
        bottom_row = art.splitlines()[-2]
        assert bottom_row[1] == "@"

    def test_title(self, grid4):
        art = density_heatmap(grid4, np.zeros(16), title="hello")
        assert art.splitlines()[0] == "hello"

    def test_wrong_shape(self, grid4):
        with pytest.raises(ConfigurationError):
            density_heatmap(grid4, np.zeros(4))

    def test_all_zero_grid(self, grid4):
        art = density_heatmap(grid4, np.zeros(16))
        assert "@" not in art


class TestSideBySide:
    def test_joins_lines(self):
        joined = side_by_side("ab\ncd", "XY\nZW", gap=2)
        assert joined.splitlines() == ["ab  XY", "cd  ZW"]

    def test_uneven_heights(self):
        joined = side_by_side("a", "x\ny")
        assert len(joined.splitlines()) == 2


class TestTimeseries:
    def test_renders_extremes(self):
        art = timeseries([0, 1, 0, 1], width=10, height=4, label="s")
        lines = art.splitlines()
        assert "min=0" in lines[0] and "max=1" in lines[0]
        assert any("*" in ln for ln in lines[1:])

    def test_long_series_pooled(self):
        art = timeseries(list(range(1000)), width=20, height=4)
        assert max(len(ln) for ln in art.splitlines()) <= 20

    def test_empty(self):
        assert "empty" in timeseries([], label="x")

    def test_constant_series(self):
        art = timeseries([5, 5, 5], width=10, height=3)
        assert "*" in art

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            timeseries([1, 2], width=1)


class TestTransitionMatrixView:
    def test_lists_heaviest_origins(self):
        grid = unit_grid(3)
        mat = np.zeros((9, 9))
        mat[4, 5] = 0.9
        mat[4, 3] = 0.1
        text = transition_matrix_view(grid, mat)
        assert "4" in text
        assert "5:0.900" in text

    def test_wrong_shape(self):
        grid = unit_grid(3)
        with pytest.raises(ConfigurationError):
            transition_matrix_view(grid, np.zeros((4, 4)))

    def test_empty_matrix(self):
        grid = unit_grid(3)
        text = transition_matrix_view(grid, np.zeros((9, 9)))
        assert "origin" in text
