"""Tests for the rng helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro import exceptions
from repro.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_numpy_integer_seed(self):
        g = ensure_rng(np.int64(7))
        assert isinstance(g, np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn(ensure_rng(3), 3)]
        b = [g.random() for g in spawn(ensure_rng(3), 3)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            exceptions.ConfigurationError,
            exceptions.PrivacyBudgetError,
            exceptions.DomainError,
            exceptions.DatasetError,
            exceptions.SynthesisError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)
        with pytest.raises(exceptions.ReproError):
            raise exc("boom")

    def test_catchable_individually(self):
        with pytest.raises(exceptions.PrivacyBudgetError):
            raise exceptions.PrivacyBudgetError("x")


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
