"""The stdlib metrics registry and its Prometheus text rendering."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import DEFAULT_BUCKETS, PROMETHEUS_CONTENT_TYPE, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_renders_help_type_and_value(self):
        m = MetricsRegistry()
        c = m.counter("requests_total", "Requests served.")
        c.inc()
        c.inc(2)
        text = m.render()
        assert "# HELP requests_total Requests served." in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert text.endswith("\n")

    def test_counter_is_monotonic(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ConfigurationError):
            c.set(5)

    def test_gauge_sets_and_moves_both_ways(self):
        m = MetricsRegistry()
        g = m.gauge("depth", "Queue depth.")
        g.set(7)
        assert "depth 7" in m.render()
        g.set(3.5)
        assert "depth 3.5" in m.render()

    def test_callback_projection_evaluates_at_scrape_time(self):
        m = MetricsRegistry()
        state = {"n": 1}
        m.gauge("live").set_function(lambda: state["n"])
        assert "live 1" in m.render()
        state["n"] = 42
        assert "live 42" in m.render()

    def test_broken_callback_drops_only_its_own_sample(self):
        m = MetricsRegistry()
        m.gauge("broken").set_function(lambda: 1 / 0)
        m.gauge("fine").set_function(lambda: 5)
        text = m.render()
        assert "fine 5" in text
        assert "\nbroken " not in text  # TYPE/HELP stay, the sample goes
        assert "# TYPE broken gauge" in text


class TestLabels:
    def test_labelled_series_render_sorted(self):
        m = MetricsRegistry()
        fam = m.counter("rounds_total", "Rounds.", labelnames=("shard",))
        fam.labels("1").inc(4)
        fam.labels("0").inc(2)
        text = m.render()
        assert text.index('rounds_total{shard="0"} 2') < text.index(
            'rounds_total{shard="1"} 4'
        )

    def test_unlabelled_call_on_labelled_family_raises(self):
        fam = MetricsRegistry().counter("x_total", labelnames=("shard",))
        with pytest.raises(ConfigurationError):
            fam.inc()
        with pytest.raises(ConfigurationError):
            fam.labels("0", "extra")

    def test_label_values_are_escaped(self):
        m = MetricsRegistry()
        m.gauge("g", labelnames=("path",)).labels('a"b\\c\nd').set(1)
        assert 'path="a\\"b\\\\c\\nd"' in m.render()

    def test_invalid_names_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            m.counter("0bad")
        with pytest.raises(ConfigurationError):
            m.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ConfigurationError):
            m.counter("ok_total", labelnames=("__reserved",))


class TestHistograms:
    def test_buckets_are_cumulative_and_end_with_inf(self):
        m = MetricsRegistry()
        h = m.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        text = m.render()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text
        assert "lat_seconds_sum 6.05" in text

    def test_default_buckets_are_sorted_and_nonempty(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(DEFAULT_BUCKETS) >= 10
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistrySemantics:
    def test_create_or_get_is_idempotent(self):
        m = MetricsRegistry()
        a = m.counter("n_total", "first")
        b = m.counter("n_total", "second registration is a lookup")
        assert a is b

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("n_total")
        with pytest.raises(ConfigurationError):
            m.gauge("n_total")
        with pytest.raises(ConfigurationError):
            m.counter("n_total", labelnames=("shard",))

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_content_type_is_prometheus_text(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_concurrent_increments_do_not_lose_updates(self):
        c = MetricsRegistry().counter("hits_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c._sole().value == 8000
