"""Tests for the shared uid → dense-slot table."""

import pickle

import numpy as np
import pytest

from repro.stream.slots import UserSlotTable


class TestLookupIntern:
    def test_empty_table(self):
        table = UserSlotTable()
        assert table.n_slots == 0
        assert len(table) == 0
        assert table.lookup([1, 2]).tolist() == [-1, -1]
        assert table.slot_of(7) == -1
        assert 7 not in table

    def test_intern_assigns_first_appearance_order(self):
        table = UserSlotTable()
        slots = table.intern(np.asarray([30, 10, 20], dtype=np.int64))
        assert slots.tolist() == [0, 1, 2]  # not sorted-by-uid order
        assert table.uids.tolist() == [30, 10, 20]

    def test_intern_is_idempotent(self):
        table = UserSlotTable()
        first = table.intern([5, 6, 7])
        again = table.intern([7, 5, 6])
        assert first.tolist() == [0, 1, 2]
        assert again.tolist() == [2, 0, 1]
        assert table.n_slots == 3

    def test_duplicates_in_one_batch_share_a_slot(self):
        table = UserSlotTable()
        slots = table.intern([9, 9, 4, 9])
        assert slots.tolist() == [0, 0, 1, 0]
        assert table.n_slots == 2

    def test_incremental_growth_across_batches(self):
        table = UserSlotTable()
        table.intern(np.arange(10))
        slots = table.intern(np.asarray([3, 100, 7, 101]))
        assert slots.tolist() == [3, 10, 7, 11]
        assert table.slot_of(101) == 11

    def test_lookup_never_creates(self):
        table = UserSlotTable()
        table.intern([1])
        assert table.lookup([1, 2]).tolist() == [0, -1]
        assert table.n_slots == 1

    def test_scalar_and_contains(self):
        table = UserSlotTable()
        table.intern([42])
        assert 42 in table
        assert table.slot_of(np.int64(42)) == 0

    def test_float_ids_rejected_not_truncated(self):
        """7.5 must never alias user 7 (the dict stores raised too)."""
        from repro.exceptions import ConfigurationError

        table = UserSlotTable()
        table.intern([7])
        with pytest.raises(ConfigurationError):
            table.lookup([7.5])
        with pytest.raises(ConfigurationError):
            table.slot_of(7.5)
        with pytest.raises(ConfigurationError):
            table.intern(np.asarray([1.0, 2.0]))
        assert table.n_slots == 1

    def test_uint64_overflow_rejected_not_wrapped(self):
        from repro.exceptions import ConfigurationError

        table = UserSlotTable()
        with pytest.raises(ConfigurationError):
            table.intern(np.asarray([2**63 + 5], dtype=np.uint64))
        # In-range uint64 values are fine.
        assert table.intern(np.asarray([5], dtype=np.uint64)).tolist() == [0]

    def test_large_population_round_trip(self):
        rng = np.random.default_rng(0)
        uids = rng.choice(10**9, size=50_000, replace=False)
        table = UserSlotTable()
        slots = table.intern(uids)
        assert slots.tolist() == list(range(50_000))
        perm = rng.permutation(50_000)
        assert np.array_equal(table.lookup(uids[perm]), slots[perm])


class TestIdentityFastPath:
    """Pre-registered dense populations skip searchsorted entirely."""

    def test_dense_population_arms_the_fast_path(self):
        table = UserSlotTable()
        table.preregister(np.arange(10_000))
        assert table.is_identity
        assert table.lookup([0, 9_999, 10_000]).tolist() == [0, 9_999, -1]

    def test_incremental_dense_growth_keeps_identity(self):
        table = UserSlotTable()
        table.intern(np.arange(5))
        table.intern(np.arange(5, 12))
        assert table.is_identity
        assert table.lookup(np.arange(12)).tolist() == list(range(12))

    def test_gap_disarms_identity_permanently(self):
        table = UserSlotTable()
        table.intern(np.arange(4))
        table.intern([100])  # gap: uid 100 lands in slot 4
        assert not table.is_identity
        assert table.slot_of(100) == 4
        table.intern([4])  # resuming the dense run must NOT re-arm
        assert not table.is_identity
        assert table.slot_of(4) == 5

    def test_out_of_order_first_batch_disarms(self):
        table = UserSlotTable()
        table.intern([3, 1, 2])
        assert not table.is_identity
        assert table.lookup([1, 2, 3]).tolist() == [1, 2, 0]

    def test_negative_ids_disarm(self):
        table = UserSlotTable()
        table.intern([-5])
        assert not table.is_identity
        assert table.slot_of(-5) == 0

    def test_fast_and_slow_paths_agree(self):
        """Differential: identity lookups == sorted-index lookups."""
        rng = np.random.default_rng(7)
        uids = np.arange(1_000)
        fast = UserSlotTable()
        fast.preregister(uids)
        slow = UserSlotTable()
        slow.intern(uids)
        slow._identity = False  # force the searchsorted path on one twin
        assert fast.is_identity
        for _ in range(5):
            probe = rng.integers(-10, 1_200, size=500)
            np.testing.assert_array_equal(fast.lookup(probe), slow.lookup(probe))

    def test_pickle_preserves_the_flag(self):
        table = UserSlotTable()
        table.preregister(np.arange(8))
        assert pickle.loads(pickle.dumps(table)).is_identity
        table.intern([99])
        assert not pickle.loads(pickle.dumps(table)).is_identity

    def test_legacy_state_without_flag_recomputes(self):
        """Checkpoints from before the fast path restore correctly."""
        dense, sparse = UserSlotTable(), UserSlotTable()
        dense.intern(np.arange(6))
        sparse.intern([5, 1])
        for table, expect in ((dense, True), (sparse, False)):
            state = dict(table.__dict__)
            del state["_identity"]
            restored = UserSlotTable.__new__(UserSlotTable)
            restored.__setstate__(state)
            assert restored.is_identity is expect
            np.testing.assert_array_equal(
                restored.lookup(table.uids), np.arange(table.n_slots)
            )


class TestSharingAndPersistence:
    def test_shared_between_components(self):
        """Two components interning into one table agree on slots."""
        table = UserSlotTable()
        a = table.intern([7, 8])
        b = table.intern([8, 9])
        assert a.tolist() == [0, 1]
        assert b.tolist() == [1, 2]

    def test_pickle_round_trip_preserves_mapping(self):
        table = UserSlotTable()
        table.intern([5, 3, 8])
        restored = pickle.loads(pickle.dumps(table))
        assert restored.uids.tolist() == [5, 3, 8]
        assert restored.lookup([3, 8, 5]).tolist() == [1, 2, 0]
        # And it keeps interning correctly after restore.
        assert restored.intern([99]).tolist() == [3]

    def test_pickle_preserves_shared_identity(self):
        """Pickling a graph holding the table twice restores ONE table."""
        table = UserSlotTable()
        table.intern([1])
        graph = {"tracker_table": table, "accountant_table": table}
        restored = pickle.loads(pickle.dumps(graph))
        assert restored["tracker_table"] is restored["accountant_table"]
