"""Tests for user-side encoding."""

import numpy as np
import pytest

from repro.ldp.oue import OptimizedUnaryEncoding
from repro.stream.encoder import UserSideEncoder
from repro.stream.events import TransitionState


class TestEncoding:
    def test_encode_indices(self, space4):
        enc = UserSideEncoder(space4)
        states = [
            TransitionState.move(0, 1),
            TransitionState.enter(2),
            TransitionState.quit(3),
        ]
        idx = enc.encode(states)
        assert idx.tolist() == [
            space4.index_of_move(0, 1),
            space4.index_of_enter(2),
            space4.index_of_quit(3),
        ]

    def test_one_hot(self, space4):
        enc = UserSideEncoder(space4)
        vec = enc.one_hot(TransitionState.move(5, 6))
        assert vec.sum() == 1
        assert vec[space4.index_of_move(5, 6)] == 1
        assert vec.shape == (len(space4),)

    def test_collect_counts_empty(self, space4):
        enc = UserSideEncoder(space4)
        oracle = OptimizedUnaryEncoding(len(space4), 1.0, rng=0)
        counts = enc.collect_counts(oracle, [])
        assert counts.shape == (len(space4),)
        assert np.all(counts == 0)

    def test_collect_counts_recovers_dominant_state(self, space4):
        enc = UserSideEncoder(space4)
        oracle = OptimizedUnaryEncoding(len(space4), 4.0, rng=0)
        states = [TransitionState.move(5, 6)] * 2000
        counts = enc.collect_counts(oracle, states)
        assert np.argmax(counts) == space4.index_of_move(5, 6)
        assert counts.max() == pytest.approx(2000, rel=0.1)
