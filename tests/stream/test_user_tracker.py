"""Tests for the dynamic active-user set and recycling."""

import pytest

from repro.exceptions import ConfigurationError
from repro.stream.user_tracker import UserStatus, UserTracker


class TestLifecycle:
    def test_register_makes_active(self):
        tr = UserTracker(w=3)
        tr.register([1, 2])
        assert tr.status(1) is UserStatus.ACTIVE
        assert tr.n_active() == 2

    def test_report_makes_inactive(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_reported([1], timestamp=0)
        assert tr.status(1) is UserStatus.INACTIVE
        assert tr.active_users() == []

    def test_quit_is_terminal(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_quitted([1])
        assert tr.status(1) is UserStatus.QUITTED
        tr.register([1])  # re-registering a quitted user is a no-op
        assert tr.status(1) is UserStatus.QUITTED

    def test_reported_then_quit_not_recycled(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_reported([1], 0)
        tr.mark_quitted([1])
        assert tr.recycle(3) == []
        assert tr.status(1) is UserStatus.QUITTED

    def test_mark_reported_on_quitted_noop(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_quitted([1])
        tr.mark_reported([1], 5)
        assert tr.status(1) is UserStatus.QUITTED
        assert tr.report_history(1) == []

    def test_unknown_user_raises(self):
        tr = UserTracker(w=3)
        with pytest.raises(ConfigurationError):
            tr.status(42)

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            UserTracker(0)


class TestRecycling:
    def test_recycled_exactly_w_later(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_reported([1], 2)
        assert tr.recycle(3) == []
        assert tr.recycle(4) == []
        assert tr.recycle(5) == [1]  # 5 - 3 == 2, the report timestamp
        assert tr.status(1) is UserStatus.ACTIVE

    def test_recycle_early_timestamps_noop(self):
        tr = UserTracker(w=5)
        tr.register([1])
        tr.mark_reported([1], 0)
        assert tr.recycle(2) == []

    def test_only_latest_report_counts(self):
        tr = UserTracker(w=3)
        tr.register([1])
        tr.mark_reported([1], 0)
        tr.recycle(3)
        tr.mark_reported([1], 3)
        # Old report at 0 must not trigger recycling at t=3+... only t=6 does.
        assert tr.recycle(4) == []
        assert tr.recycle(6) == [1]

    def test_report_history_tracked(self):
        tr = UserTracker(w=2)
        tr.register([9])
        tr.mark_reported([9], 1)
        tr.recycle(3)
        tr.mark_reported([9], 3)
        assert tr.report_history(9) == [1, 3]

    def test_report_history_cache_sees_later_reports(self):
        """The lazily built history index must refresh after new rounds."""
        tr = UserTracker(w=2)
        tr.register([9, 10])
        tr.mark_reported([9], 1)
        assert tr.report_history(9) == [1]  # builds the cache
        tr.recycle(3)
        tr.mark_reported([9, 10], 3)  # must invalidate it
        assert tr.report_history(9) == [1, 3]
        assert tr.report_history(10) == [3]

    def test_float_uid_rejected_not_aliased(self):
        """status(7.5) must raise, never return user 7's status."""
        tr = UserTracker(w=3)
        tr.register([7])
        with pytest.raises(ConfigurationError):
            tr.status(7.5)
        with pytest.raises(ConfigurationError):
            tr.register([7.5])
        with pytest.raises(ConfigurationError):
            tr.active_mask([7.5])


class TestWEventInvariant:
    def test_never_two_reports_within_window(self):
        """Simulate the Algorithm 1 discipline; gaps must be >= w."""
        import numpy as np

        rng = np.random.default_rng(0)
        w = 4
        tr = UserTracker(w=w)
        tr.register(range(30))
        for t in range(60):
            tr.recycle(t)
            active = tr.active_users()
            chosen = [u for u in active if rng.random() < 0.5]
            tr.mark_reported(chosen, t)
        for u in range(30):
            hist = tr.report_history(u)
            gaps = [b - a for a, b in zip(hist, hist[1:])]
            assert all(g >= w for g in gaps), (u, hist)
