"""Tests for the columnar report plane (ReportBatch / ColumnarStreamView)."""

import numpy as np
import pytest

from repro.core.sharded import shard_of
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import DomainError
from repro.stream.events import TransitionState
from repro.stream.reports import (
    KIND_ENTER,
    KIND_MOVE,
    KIND_QUIT,
    ColumnarStreamView,
    ReportBatch,
    shard_of_array,
)
from repro.stream.state_space import TransitionStateSpace


@pytest.fixture(scope="module")
def walks():
    return make_random_walks(k=4, n_streams=80, n_timestamps=20, seed=5)


class TestShardOfArray:
    def test_matches_scalar_hash(self):
        uids = np.arange(0, 5000, 7, dtype=np.int64)
        for k in (1, 2, 3, 8):
            vec = shard_of_array(uids, k)
            ref = np.asarray([shard_of(int(u), k) for u in uids])
            assert np.array_equal(vec, ref), k

    def test_large_ids(self):
        uids = np.asarray([2**40, 2**50 + 3, 123456789012], dtype=np.int64)
        vec = shard_of_array(uids, 4)
        ref = [shard_of(int(u), 4) for u in uids]
        assert vec.tolist() == ref


class TestReportBatch:
    def test_from_participants_round_trip(self, space4):
        participants = [
            (3, TransitionState.enter(2)),
            (7, TransitionState.move(2, 3)),
            (9, TransitionState.quit(5)),
        ]
        batch = ReportBatch.from_participants(space4, participants)
        assert len(batch) == 3
        assert batch.kinds.tolist() == [KIND_ENTER, KIND_MOVE, KIND_QUIT]
        assert batch.user_ids.tolist() == [3, 7, 9]
        for i, (_uid, state) in enumerate(participants):
            assert batch.state_idx[i] == space4.index_of(state)

    def test_noeq_space_marks_eq_rows_unencodable(self, space4_noeq):
        participants = [
            (1, TransitionState.enter(0)),
            (2, TransitionState.move(0, 1)),
            (3, TransitionState.quit(1)),
        ]
        batch = ReportBatch.from_participants(space4_noeq, participants)
        assert batch.state_idx.tolist()[0] == -1
        assert batch.state_idx.tolist()[2] == -1
        moves = batch.moves_only()
        assert moves.user_ids.tolist() == [2]
        assert moves.state_idx[0] == space4_noeq.index_of_move(0, 1)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(DomainError):
            ReportBatch(
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int8),
            )

    def test_partition_covers_and_preserves_order(self, space4):
        uids = np.arange(100, dtype=np.int64)
        batch = ReportBatch.from_arrays(
            uids, np.zeros(100), np.full(100, KIND_MOVE)
        )
        parts = batch.partition(4)
        seen = np.concatenate([p.user_ids for p in parts])
        assert sorted(seen.tolist()) == uids.tolist()
        for k, part in enumerate(parts):
            assert all(shard_of(int(u), 4) == k for u in part.user_ids)
            # order inside a partition is the original row order
            assert part.user_ids.tolist() == sorted(part.user_ids.tolist())

    def test_partition_k1_is_identity(self, space4):
        batch = ReportBatch.from_arrays([5, 6], [0, 1], [0, 0])
        assert batch.partition(1)[0] is batch

    def test_take_preserves_selection_order(self):
        batch = ReportBatch.from_arrays([10, 20, 30], [0, 1, 2], [0, 0, 0])
        sub = batch.take(np.asarray([2, 0]))
        assert sub.user_ids.tolist() == [30, 10]
        assert sub.state_idx.tolist() == [2, 0]


class TestColumnarStreamView:
    def test_matches_participants_at(self, walks):
        space = TransitionStateSpace(walks.grid)
        view = ColumnarStreamView(walks, space)
        for t in range(walks.n_timestamps):
            batch = view.batch_at(t)
            ref = walks.participants_at(t)
            assert batch.user_ids.tolist() == [uid for uid, _s in ref]
            assert batch.state_idx.tolist() == [
                space.index_of(s) for _uid, s in ref
            ]

    def test_matches_lifecycle_views(self, walks):
        space = TransitionStateSpace(walks.grid)
        view = ColumnarStreamView(walks, space)
        for t in range(walks.n_timestamps):
            assert view.newly_entered_at(t).tolist() == walks.newly_entered_at(t)
            assert view.quitted_at(t).tolist() == walks.quitted_at(t)
            assert view.n_active_at(t) == walks.n_active_at(t)

    def test_noeq_view_keeps_unencodable_rows(self, walks):
        space = TransitionStateSpace(walks.grid, include_entering_quitting=False)
        view = ColumnarStreamView(walks, space)
        kinds = np.concatenate(
            [view.batch_at(t).kinds for t in range(walks.n_timestamps)]
        )
        idx = np.concatenate(
            [view.batch_at(t).state_idx for t in range(walks.n_timestamps)]
        )
        assert ((idx == -1) == (kinds != KIND_MOVE)).all()

    def test_out_of_range_timestamp(self, walks):
        space = TransitionStateSpace(walks.grid)
        view = ColumnarStreamView(walks, space)
        with pytest.raises(DomainError):
            view.batch_at(walks.n_timestamps)


class TestMoveIndexLookup:
    def test_matches_scalar(self, space4):
        pairs = space4.move_pairs
        origins = np.asarray([o for o, _d in pairs])
        dests = np.asarray([d for _o, d in pairs])
        out = space4.move_index_lookup(origins, dests)
        assert out.tolist() == list(range(space4.n_move))

    def test_illegal_pair_raises(self, space4):
        # cells 0 and 15 are opposite corners of the 4x4 grid: not adjacent
        with pytest.raises(DomainError):
            space4.move_index_lookup(np.asarray([0]), np.asarray([15]))
