"""Store-backed lazy StreamDataset trajectories: the batch-pipeline
boundary must not materialise CellTrajectory objects eagerly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.trajectory_store import StoreTrajectories, TrajectoryStore
from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.exceptions import DatasetError
from repro.stream.stream import StreamDataset


@pytest.fixture
def store():
    s = TrajectoryStore(initial_capacity=4, initial_horizon=4)
    rows0 = s.append_streams(0, [3, 5])          # two streams born at t=0
    s.append_cells(rows0, np.asarray([4, 6]))
    s.append_cells(rows0[:1], np.asarray([5]))   # stream 0 has length 3
    s.kill(rows0[1:])                            # stream 1 finished
    s.append_streams(2, [7])                     # stream 2 born at t=2
    return s


class TestStoreTrajectories:
    def test_sequence_protocol(self, store):
        seq = StoreTrajectories(store, np.arange(store.n_total))
        assert len(seq) == 3
        assert list(seq[0].cells) == [3, 4, 5]
        assert list(seq[1].cells) == [5, 6]
        assert seq[-1].start_time == 2
        assert [t.user_id for t in seq] == [0, 1, 2]
        assert [t.user_id for t in seq[1:]] == [1, 2]
        with pytest.raises(IndexError):
            seq[3]

    def test_views_are_cached(self, store):
        seq = StoreTrajectories(store, np.arange(store.n_total))
        assert seq[0] is seq[0]

    def test_materialisation_is_lazy(self, store):
        seq = StoreTrajectories(store, np.arange(store.n_total))
        assert not seq._cache
        seq.user_ids(), seq.horizon(), len(seq)
        assert not seq._cache          # array-side accessors build nothing
        seq[1]
        assert set(seq._cache) == {1}  # only what was touched

    def test_row_order_defines_sequence_and_user_ids(self, store):
        seq = StoreTrajectories(store, [2, 0])
        assert [t.user_id for t in seq] == [2, 0]
        assert seq.user_ids() == [2, 0]
        assert seq.index_of_user(0) == 1
        with pytest.raises(DatasetError):
            seq.index_of_user(1)

    def test_duplicate_rows_rejected(self, store):
        with pytest.raises(DatasetError):
            StoreTrajectories(store, [0, 0])

    def test_horizon_matches_object_derivation(self, store):
        seq = StoreTrajectories(store, np.arange(store.n_total))
        expected = max(t.end_time + 2 for t in store.all_views())
        assert seq.horizon() == expected
        assert StoreTrajectories(store, []).horizon() == 0

    def test_terminated_flag_mirrors_liveness(self, store):
        seq = StoreTrajectories(store, np.arange(store.n_total))
        assert [t.terminated for t in seq] == [False, True, False]

    def test_flat_cells_matches_view_concatenation(self, store):
        for rows in ([0, 1, 2], [2, 0], []):
            expected = [c for r in rows for c in store.view(r).cells]
            np.testing.assert_array_equal(
                store.flat_cells(np.asarray(rows, dtype=np.int64)), expected
            )


class TestLazyStreamDataset:
    def test_from_store_matches_eager_dataset(self, store, grid4):
        lazy = StreamDataset.from_store(grid4, store, name="lazy")
        eager = StreamDataset(grid4, store.all_views(), name="eager")
        assert lazy.n_timestamps == eager.n_timestamps
        assert lazy.user_ids == eager.user_ids
        np.testing.assert_array_equal(
            lazy.cell_counts_matrix(), eager.cell_counts_matrix()
        )
        for t in range(lazy.n_timestamps):
            assert lazy.participants_at(t) == eager.participants_at(t)
            assert lazy.n_active_at(t) == eager.n_active_at(t)

    def test_trajectory_lookup(self, store, grid4):
        lazy = StreamDataset.from_store(grid4, store)
        assert list(lazy.trajectory(2).cells) == [7]
        with pytest.raises(DatasetError):
            lazy.trajectory(99)

    def test_row_subset(self, store, grid4):
        lazy = StreamDataset.from_store(grid4, store, rows=[2, 0])
        assert lazy.user_ids == [2, 0]
        assert len(lazy) == 2

    def test_save_load_round_trip(self, store, grid4, tmp_path):
        lazy = StreamDataset.from_store(grid4, store, name="lazy")
        path = tmp_path / "lazy.npz"
        save_stream_dataset(lazy, path)
        loaded = load_stream_dataset(path)
        assert [(t.start_time, list(t.cells)) for t in loaded] == [
            (t.start_time, list(t.cells)) for t in store.all_views()
        ]

    def test_subsample_works(self, store, grid4):
        lazy = StreamDataset.from_store(grid4, store)
        sub = lazy.subsample(0.67, np.random.default_rng(0))
        assert 1 <= len(sub) <= 3

    def test_stats_matches_eager_without_materialising(self, store, grid4):
        lazy = StreamDataset.from_store(grid4, store, name="x")
        eager = StreamDataset(grid4, store.all_views(), name="x")
        assert lazy.stats() == eager.stats()
        assert not lazy.trajectories._cache, "stats() built objects"


class TestBatchPipelineBoundary:
    @pytest.mark.parametrize("engine", ["object", "vectorized"])
    def test_synthetic_dataset_is_store_backed_and_unmaterialised(
        self, walk_data, engine
    ):
        run = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=10, seed=0, engine=engine)
        ).run(walk_data)
        trajs = run.synthetic.trajectories
        assert isinstance(trajs, StoreTrajectories)
        assert not trajs._cache, "pipeline boundary materialised objects"
        # the evaluation plane's count matrix is primed from the store:
        run.synthetic.cell_counts_matrix()
        run.synthetic.active_counts()
        assert not trajs._cache
        # object consumers still work, paying only for what they touch
        assert len(trajs[0].cells) == trajs.store.lengths_of(
            trajs.rows[:1]
        )[0]

    def test_lazy_output_equals_historical_object_output(self, walk_data):
        """The lazy sequence yields exactly the trajectories the eager
        all_trajectories() boundary used to produce (order included)."""
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=10, seed=0)).run(walk_data)
        curator_views = run.synthetic.trajectories.store.views(
            run.synthetic.trajectories.rows
        )
        assert [(t.start_time, list(t.cells)) for t in run.synthetic] == [
            (t.start_time, list(t.cells)) for t in curator_views
        ]
