"""Multi-consumer assembler ≡ single-consumer reference (property tests).

The :class:`MultiConsumerAssembler` hash-partitions buffering by user id;
its one obligation is that partitioning must be *invisible* in the
output: every closed timestamp must be bit-identical to what the
single-consumer :class:`TimestampAssembler` emits for the same report
stream.  These tests sweep randomized lateness/shuffle schedules and
genuinely concurrent feeders against that reference.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geo.grid import unit_grid
from repro.stream.ingest import (
    MultiConsumerAssembler,
    TimestampAssembler,
    UserReport,
    make_assembler,
)
from repro.stream.reports import KIND_ENTER, KIND_MOVE, KIND_QUIT, ReportBatch
from repro.stream.state_space import TransitionStateSpace


@pytest.fixture(scope="module")
def space():
    return TransitionStateSpace(unit_grid(4))


def _random_schedule(rng, n_users=60, horizon=12, lateness=2):
    """An arrival-order list of encoded reports with bounded reordering.

    Each user enters once, moves, quits; arrival order is shuffled inside
    blocks of ``lateness + 1`` timestamps, so every report lands within
    the assembler's lateness budget.
    """
    rows = []  # (t, uid, idx, kind)
    for uid in range(n_users):
        t0 = int(rng.integers(0, max(1, horizon - 3)))
        length = int(rng.integers(1, 4))
        cells = rng.integers(0, 16, size=length + 1)
        rows.append((t0, uid, -1, KIND_ENTER))
        for j in range(length):
            rows.append((t0 + 1 + j, uid, int(cells[j]), KIND_MOVE))
        rows.append((t0 + 1 + length, uid, -1, KIND_QUIT))
    rows = [r for r in rows if r[0] < horizon]
    rows.sort(key=lambda r: r[0])
    block = lateness + 1
    out = []
    start = 0
    while start < len(rows):
        t_lo = rows[start][0]
        end = start
        while end < len(rows) and rows[end][0] < t_lo + block:
            end += 1
        chunk = rows[start:end]
        order = rng.permutation(len(chunk))
        out.extend(chunk[int(i)] for i in order)
        start = end
    return out


def _drain(assembler, schedule, pop_every=7):
    """Feed a schedule report-by-report, popping as we go; returns closes."""
    closed = []
    for i, (t, uid, idx, kind) in enumerate(schedule):
        assembler.add(UserReport.encoded(uid, t, idx, kind))
        if i % pop_every == 0:
            closed.extend(assembler.pop_ready())
    closed.extend(assembler.pop_ready())
    closed.extend(assembler.flush())
    return closed


def _assert_closes_identical(ref, got):
    assert [c.t for c in ref] == [c.t for c in got]
    for a, b in zip(ref, got):
        for col in ("user_ids", "state_idx", "kinds"):
            x, y = getattr(a.batch, col), getattr(b.batch, col)
            assert x.dtype == y.dtype
            np.testing.assert_array_equal(x, y, err_msg=f"t={a.t} {col}")
        np.testing.assert_array_equal(a.newly_entered, b.newly_entered)
        np.testing.assert_array_equal(a.quitted, b.quitted)
        assert a.n_active == b.n_active


class TestSequentialEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_partitions", [2, 3, 8])
    def test_randomized_schedules(self, space, seed, n_partitions):
        rng = np.random.default_rng(seed)
        lateness = int(rng.integers(0, 4))
        schedule = _random_schedule(
            np.random.default_rng(seed + 1000), lateness=lateness
        )
        ref = _drain(
            TimestampAssembler(space, max_lateness=lateness), list(schedule)
        )
        got = _drain(
            MultiConsumerAssembler(
                space, max_lateness=lateness, n_partitions=n_partitions
            ),
            list(schedule),
        )
        _assert_closes_identical(ref, got)

    def test_batch_submission_equivalence(self, space):
        rng = np.random.default_rng(3)
        ref = TimestampAssembler(space, max_lateness=1)
        got = MultiConsumerAssembler(space, max_lateness=1, n_partitions=4)
        closes_ref, closes_got = [], []
        for t in range(10):
            n = int(rng.integers(0, 50))
            batch = ReportBatch.from_arrays(
                rng.choice(10**6, size=n, replace=False) if n else [],
                rng.integers(-1, 500, size=n),
                rng.integers(0, 3, size=n),
            )
            assert ref.add_batch(t, batch) == got.add_batch(t, batch)
            closes_ref.extend(ref.pop_ready())
            closes_got.extend(got.pop_ready())
        closes_ref.extend(ref.flush())
        closes_got.extend(got.flush())
        _assert_closes_identical(closes_ref, closes_got)

    def test_duplicate_uid_rows_keep_arrival_order(self, space):
        """Same uid, same t, different states: stable order must survive."""
        ref = TimestampAssembler(space)
        got = MultiConsumerAssembler(space, n_partitions=5)
        for a in (ref, got):
            a.add(UserReport.encoded(7, 0, 11, KIND_MOVE))
            a.add(UserReport.encoded(3, 0, 22, KIND_MOVE))
            a.add(UserReport.encoded(7, 0, 33, KIND_MOVE))
            a.add(UserReport.encoded(7, 1, 44, KIND_MOVE))  # opens t=1
        _assert_closes_identical(ref.pop_ready(), got.pop_ready())

    def test_late_drop_counting_matches(self, space):
        ref = TimestampAssembler(space, max_lateness=0)
        got = MultiConsumerAssembler(space, max_lateness=0, n_partitions=3)
        for a in (ref, got):
            a.add(UserReport.encoded(1, 0, 5, KIND_MOVE))
            a.add(UserReport.encoded(2, 3, 5, KIND_MOVE))
            a.pop_ready()  # closes t<=1
            a.add(UserReport.encoded(9, 0, 5, KIND_MOVE))  # late
            late_batch = ReportBatch.from_arrays([4, 5], [1, 2], [0, 0])
            assert a.add_batch(1, late_batch) == 0  # late, whole batch
        assert ref.n_late_dropped == got.n_late_dropped == 3

    def test_empty_batch_still_advances_the_clock(self, space):
        got = MultiConsumerAssembler(space, n_partitions=2)
        got.add_batch(0, ReportBatch.empty())
        got.add_batch(1, ReportBatch.empty())
        got.add_batch(2, ReportBatch.empty())
        closed = got.pop_ready()
        assert [c.t for c in closed] == [0, 1]
        assert all(len(c.batch) == 0 for c in closed)


class TestConcurrentFeeders:
    @pytest.mark.parametrize("seed", range(4))
    def test_threaded_feeding_matches_reference(self, space, seed):
        """Real threads racing into one assembler: output is canonical."""
        lateness = 3
        schedule = _random_schedule(
            np.random.default_rng(seed), n_users=200, horizon=8,
            lateness=lateness,
        )
        ref = TimestampAssembler(space, max_lateness=lateness)
        for t, uid, idx, kind in schedule:
            ref.add(UserReport.encoded(uid, t, idx, kind))
        ref_closed = ref.flush()

        got = MultiConsumerAssembler(
            space, max_lateness=lateness, n_partitions=4
        )
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        errors = []

        def feed(slice_):
            try:
                barrier.wait(5)
                for t, uid, idx, kind in slice_:
                    got.add(UserReport.encoded(uid, t, idx, kind))
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=feed, args=(schedule[i::n_threads],))
            for i in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(10)
        assert not errors
        _assert_closes_identical(ref_closed, got.flush())

    def test_feeding_races_closing(self, space):
        """A closer thread popping while feeders stream: no lost rows.

        Every row is either in a closed batch or counted late — the
        accounting identity the lock protocol guarantees.
        """
        got = MultiConsumerAssembler(space, max_lateness=0, n_partitions=4)
        horizon, per_t = 40, 25
        total = horizon * per_t
        closed_store = []
        stop = threading.Event()

        def closer():
            while not stop.is_set():
                closed_store.extend(got.pop_ready())
            closed_store.extend(got.pop_ready())

        closer_thread = threading.Thread(target=closer)
        closer_thread.start()
        uid = 0
        for t in range(horizon):
            for _ in range(per_t):
                got.add(UserReport.encoded(uid, t, uid % 100, KIND_MOVE))
                uid += 1
        stop.set()
        closer_thread.join(10)
        closed_store.extend(got.flush())
        n_closed = sum(len(c.batch) for c in closed_store)
        assert n_closed + got.n_late_dropped == total
        assert [c.t for c in closed_store] == list(range(horizon))


class TestFactoryAndSessionWiring:
    def test_make_assembler_routes_by_consumers(self, space):
        assert type(make_assembler(space)) is TimestampAssembler
        assert type(make_assembler(space, consumers=1)) is TimestampAssembler
        multi = make_assembler(space, consumers=3)
        assert isinstance(multi, MultiConsumerAssembler)
        assert multi.n_partitions == 3

    def test_bad_partition_count(self, space):
        with pytest.raises(ConfigurationError):
            MultiConsumerAssembler(space, n_partitions=0)

    def test_ingest_session_selects_multi_consumer(self, walk_data):
        from repro.api.session import create_session
        from repro.api.specs import SessionSpec

        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=5, transport="ingest", ingest_consumers=4
        )
        session = create_session(spec, walk_data.grid, lam=5.0)
        assert isinstance(session.assembler, MultiConsumerAssembler)
        assert session.assembler.n_partitions == 4

    def test_session_replay_bit_identical_across_consumers(self, walk_data):
        """End to end: multi-consumer session ≡ single-consumer session."""
        from repro.api.session import create_session
        from repro.api.specs import SessionSpec
        from repro.stream.reports import ColumnarStreamView

        def run(consumers):
            spec = SessionSpec.from_flat(
                epsilon=1.0, w=10, seed=9, transport="ingest",
                max_lateness=1, ingest_consumers=consumers,
            )
            session = create_session(spec, walk_data.grid, lam=5.0)
            view = ColumnarStreamView(walk_data, session.curator.space)
            for t in range(walk_data.n_timestamps):
                session.submit_batch(t, view.batch_at(t))
                session.advance()
            session.close()
            return session.result(walk_data.n_timestamps)

        ref, multi = run(1), run(3)
        assert [
            (s.start_time, list(s.cells)) for s in ref.synthetic
        ] == [(s.start_time, list(s.cells)) for s in multi.synthetic]
