"""Tests for the stream dataset views."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.geo.trajectory import CellTrajectory
from repro.stream.events import StateKind
from repro.stream.stream import StreamDataset, from_continuous, split_on_gaps


@pytest.fixture
def tiny(grid4):
    """Two overlapping streams on a 4x4 grid.

    user 0: cells [0, 1, 2] at t=0..2 (quit event at t=3)
    user 1: cells [5, 6]    at t=2..3 (enter at 2, quit event at t=4)
    """
    return StreamDataset(
        grid4,
        [
            CellTrajectory(0, [0, 1, 2], user_id=0),
            CellTrajectory(2, [5, 6], user_id=1),
        ],
        n_timestamps=5,
    )


class TestBasics:
    def test_len_iter(self, tiny):
        assert len(tiny) == 2
        assert [t.user_id for t in tiny] == [0, 1]

    def test_auto_user_ids(self, grid4):
        ds = StreamDataset(grid4, [CellTrajectory(0, [0]), CellTrajectory(0, [1])])
        assert ds.user_ids == [0, 1]

    def test_duplicate_user_ids_rejected(self, grid4):
        with pytest.raises(DatasetError):
            StreamDataset(
                grid4,
                [CellTrajectory(0, [0], user_id=7), CellTrajectory(0, [1], user_id=7)],
            )

    def test_horizon_derived_when_missing(self, grid4):
        ds = StreamDataset(grid4, [CellTrajectory(3, [0, 1])])
        # end_time = 4, quit report at 5, so horizon must cover t=5.
        assert ds.n_timestamps == 6

    def test_trajectory_lookup(self, tiny):
        assert tiny.trajectory(1).cells == [5, 6]
        with pytest.raises(DatasetError):
            tiny.trajectory(99)


class TestPerTimestampViews:
    def test_active_counts(self, tiny):
        assert [tiny.n_active_at(t) for t in range(5)] == [1, 1, 2, 1, 0]

    def test_cells_at(self, tiny):
        assert tiny.cells_at(2).tolist() == [2, 5]
        assert tiny.cells_at(4).tolist() == []

    def test_transition_states(self, tiny):
        tr0 = tiny.trajectory(0)
        s = tiny.transition_state(tr0, 0)
        assert s.kind is StateKind.ENTER and s.destination == 0
        s = tiny.transition_state(tr0, 1)
        assert s.kind is StateKind.MOVE and (s.origin, s.destination) == (0, 1)
        s = tiny.transition_state(tr0, 3)
        assert s.kind is StateKind.QUIT and s.origin == 2
        assert tiny.transition_state(tr0, 4) is None

    def test_participants_per_timestamp(self, tiny):
        # t=0: user0 enter; t=2: user0 move + user1 enter; t=3: user0 quit + user1 move
        assert [uid for uid, _ in tiny.participants_at(0)] == [0]
        parts2 = dict(tiny.participants_at(2))
        assert parts2[0].kind is StateKind.MOVE
        assert parts2[1].kind is StateKind.ENTER
        parts3 = dict(tiny.participants_at(3))
        assert parts3[0].kind is StateKind.QUIT
        assert parts3[1].kind is StateKind.MOVE

    def test_entered_and_quitted(self, tiny):
        assert tiny.newly_entered_at(0) == [0]
        assert tiny.newly_entered_at(2) == [1]
        assert tiny.quitted_at(3) == [0]
        assert tiny.quitted_at(4) == [1]

    def test_every_stream_reports_every_active_timestamp(self, walk_data):
        """Between enter and quit a stream has exactly one state per t."""
        for traj in walk_data.trajectories:
            for t in range(traj.start_time, min(traj.end_time + 2, walk_data.n_timestamps)):
                state = walk_data.transition_state(traj, t)
                assert state is not None


class TestCachedViews:
    def test_cell_counts_matrix_shape(self, tiny):
        counts = tiny.cell_counts_matrix()
        assert counts.shape == (5, 16)
        assert counts.sum() == 5  # total points

    def test_cell_counts_match_cells_at(self, walk_data):
        counts = walk_data.cell_counts_matrix()
        for t in range(walk_data.n_timestamps):
            expected = np.bincount(
                walk_data.cells_at(t), minlength=walk_data.grid.n_cells
            )
            assert np.array_equal(counts[t], expected)

    def test_transitions_at(self, tiny):
        assert tiny.transitions_at(1) == [(0, 1)]
        assert sorted(tiny.transitions_at(2)) == [(1, 2)]
        assert tiny.transitions_at(3) == [(5, 6)]
        assert tiny.transitions_at(0) == []

    def test_active_counts_vector(self, tiny):
        assert tiny.active_counts().tolist() == [1, 1, 2, 1, 0]


class TestStats:
    def test_stats_fields(self, tiny):
        s = tiny.stats()
        assert s["size"] == 2
        assert s["n_points"] == 5
        assert s["average_length"] == 2.5
        assert s["timestamps"] == 5
        assert s["grid_k"] == 4


class TestSubsample:
    def test_subsample_size(self, walk_data, rng):
        sub = walk_data.subsample(0.5, rng)
        assert len(sub) == round(len(walk_data) * 0.5)
        assert sub.n_timestamps == walk_data.n_timestamps

    def test_subsample_full(self, walk_data, rng):
        sub = walk_data.subsample(1.0, rng)
        assert len(sub) == len(walk_data)

    def test_subsample_does_not_share_cells(self, walk_data, rng):
        sub = walk_data.subsample(0.5, rng)
        sub.trajectories[0].cells.append(0)  # mutate copy
        lengths = {len(t) for t in walk_data.trajectories}
        assert max(lengths) <= walk_data.n_timestamps  # original unchanged shape

    def test_invalid_fraction(self, walk_data, rng):
        with pytest.raises(DatasetError):
            walk_data.subsample(0.0, rng)
        with pytest.raises(DatasetError):
            walk_data.subsample(1.5, rng)


class TestSplitOnGaps:
    def test_no_gap_single_stream(self):
        streams = split_on_gaps(0, [(0, 5), (1, 6), (2, 7)])
        assert len(streams) == 1
        assert streams[0].cells == [5, 6, 7]
        assert streams[0].start_time == 0

    def test_gap_splits(self):
        streams = split_on_gaps(0, [(0, 5), (1, 6), (5, 8), (6, 9)])
        assert len(streams) == 2
        assert streams[0].cells == [5, 6]
        assert streams[1].start_time == 5
        assert streams[1].cells == [8, 9]

    def test_offset_applied(self):
        streams = split_on_gaps(10, [(0, 1), (1, 2)])
        assert streams[0].start_time == 10

    def test_empty(self):
        assert split_on_gaps(0, []) == []

    def test_user_ids_increment(self):
        streams = split_on_gaps(0, [(0, 1), (5, 2), (9, 3)], user_id_start=100)
        assert [s.user_id for s in streams] == [100, 101, 102]


class TestFromContinuous:
    def test_discretises_and_ids(self, grid4):
        from repro.geo.point import Point
        from repro.geo.trajectory import Trajectory

        raw = [
            Trajectory(0, [Point(0.1, 0.1), Point(0.3, 0.1)]),
            Trajectory(1, [Point(0.9, 0.9)]),
        ]
        ds = from_continuous(grid4, raw, name="x")
        assert len(ds) == 2
        assert ds.user_ids == [0, 1]
        assert ds.name == "x"
