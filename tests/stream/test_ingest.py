"""Tests for the async ingestion front-end (assembler + service)."""

import pytest

from repro.core.online import OnlineRetraSyn
from repro.core.retrasyn import RetraSynConfig
from repro.datasets.synthetic import make_random_walks
from repro.exceptions import ConfigurationError
from repro.stream.events import TransitionState
from repro.stream.ingest import (
    IngestionService,
    TimestampAssembler,
    UserReport,
    dataset_reports,
    ingest_events,
)
from repro.stream.reports import KIND_ENTER, ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace


@pytest.fixture(scope="module")
def walks():
    return make_random_walks(k=4, n_streams=60, n_timestamps=16, seed=2)


@pytest.fixture
def space(walks):
    return TransitionStateSpace(walks.grid)


class TestTimestampAssembler:
    def test_in_order_closing(self, space):
        asm = TimestampAssembler(space)
        asm.add(UserReport(1, 0, TransitionState.enter(0)))
        asm.add(UserReport(2, 0, TransitionState.enter(1)))
        assert asm.pop_ready() == []  # t=0 may still receive reports
        asm.add(UserReport(1, 1, TransitionState.move(0, 1)))
        closed = asm.pop_ready()
        assert [c.t for c in closed] == [0]
        assert closed[0].batch.user_ids.tolist() == [1, 2]
        assert closed[0].newly_entered.tolist() == [1, 2]
        assert closed[0].n_active == 2

    def test_out_of_order_within_lateness(self, space):
        asm = TimestampAssembler(space, max_lateness=2)
        asm.add(UserReport(1, 2, TransitionState.move(1, 2)))
        asm.add(UserReport(1, 0, TransitionState.enter(0)))  # 2 behind max
        asm.add(UserReport(1, 1, TransitionState.move(0, 1)))
        assert asm.pop_ready() == []  # watermark = 2 - 2 - 1 < 0
        asm.add(UserReport(2, 4, TransitionState.enter(2)))
        closed = asm.pop_ready()
        assert [c.t for c in closed] == [0, 1]
        assert asm.n_late_dropped == 0

    def test_late_report_dropped_and_counted(self, space):
        asm = TimestampAssembler(space)
        asm.add(UserReport(1, 0, TransitionState.enter(0)))
        asm.add(UserReport(1, 1, TransitionState.move(0, 1)))
        asm.pop_ready()  # closes t=0
        asm.add(UserReport(9, 0, TransitionState.enter(3)))  # too late
        assert asm.n_late_dropped == 1

    def test_gap_timestamps_close_empty(self, space):
        asm = TimestampAssembler(space)
        asm.add(UserReport(1, 0, TransitionState.enter(0)))
        asm.add(UserReport(2, 5, TransitionState.enter(1)))
        closed = asm.pop_ready()
        assert [c.t for c in closed] == [0, 1, 2, 3, 4]
        assert all(len(c.batch) == 0 for c in closed[1:])

    def test_canonical_order_is_arrival_independent(self, space):
        def close_one(order):
            asm = TimestampAssembler(space)
            for uid in order:
                asm.add(UserReport(uid, 0, TransitionState.enter(uid % 4)))
            return asm.flush()[0].batch

        a = close_one([5, 1, 9, 3])
        b = close_one([3, 9, 1, 5])
        assert a.user_ids.tolist() == b.user_ids.tolist() == [1, 3, 5, 9]
        assert a.state_idx.tolist() == b.state_idx.tolist()

    def test_flush_closes_everything(self, space):
        asm = TimestampAssembler(space, max_lateness=3)
        asm.add(UserReport(1, 0, TransitionState.enter(0)))
        asm.add(UserReport(1, 1, TransitionState.move(0, 1)))
        assert asm.pop_ready() == []
        assert [c.t for c in asm.flush()] == [0, 1]

    def test_encoded_reports(self, space):
        asm = TimestampAssembler(space)
        asm.add(UserReport.encoded(4, 0, space.index_of_enter(1), KIND_ENTER))
        closed = asm.flush()
        assert closed[0].batch.state_idx.tolist() == [space.index_of_enter(1)]

    def test_invalid_report_rejected(self, space):
        asm = TimestampAssembler(space)
        with pytest.raises(ConfigurationError):
            asm.add(UserReport(1, 0))  # neither state nor encoded form

    def test_negative_lateness_rejected(self, space):
        with pytest.raises(ConfigurationError):
            TimestampAssembler(space, max_lateness=-1)


class TestIngestionService:
    def _curator(self, walks, **overrides):
        cfg = RetraSynConfig(epsilon=1.0, w=5, seed=0, **overrides)
        return OnlineRetraSyn(walks.grid, cfg, lam=5.0)

    def test_full_replay_processes_everything(self, walks):
        curator = self._curator(walks)
        view = ColumnarStreamView(walks, curator.space)
        stats = ingest_events(curator, dataset_reports(view))
        assert stats.n_timestamps == walks.n_timestamps
        assert stats.n_late_dropped == 0
        assert stats.n_reports_processed == stats.n_submitted
        assert curator.accountant.verify()

    def test_backpressure_with_tiny_queue(self, walks):
        curator = self._curator(walks)
        view = ColumnarStreamView(walks, curator.space)
        stats = ingest_events(curator, dataset_reports(view), queue_size=8)
        assert stats.backpressure_waits > 0
        assert stats.n_timestamps == walks.n_timestamps

    def test_curator_error_propagates_not_deadlocks(self, walks):
        curator = self._curator(walks)
        view = ColumnarStreamView(walks, curator.space)
        # Unknown user 999 moves without ever entering: the tracker must
        # reject it and the error must surface through ingest_events.
        bad = [UserReport(999, 0, TransitionState.move(0, 1))] + list(
            dataset_reports(view)
        )
        with pytest.raises(ConfigurationError):
            ingest_events(curator, bad, queue_size=4)

    def test_invalid_queue_size(self, walks):
        with pytest.raises(ConfigurationError):
            IngestionService(self._curator(walks), queue_size=0)

    def test_final_checkpoint_written_without_interval(self, walks, tmp_path):
        """checkpoint_path alone means 'checkpoint at end of stream'."""
        curator = self._curator(walks)
        view = ColumnarStreamView(walks, curator.space)
        path = tmp_path / "c.ckpt"
        stats = ingest_events(
            curator, dataset_reports(view),
            checkpoint_path=path, checkpoint_every=0,
        )
        assert path.exists()
        assert stats.checkpoints_written == 1

    def test_periodic_checkpoints(self, walks, tmp_path):
        curator = self._curator(walks)
        view = ColumnarStreamView(walks, curator.space)
        path = tmp_path / "c.ckpt"
        stats = ingest_events(
            curator, dataset_reports(view),
            checkpoint_path=path, checkpoint_every=4,
        )
        # 16 timestamps / every 4 => 4 periodic + the final one
        assert stats.checkpoints_written == 5
