"""Tests for the transition-state space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DomainError
from repro.geo.grid import unit_grid
from repro.stream.events import StateKind, TransitionState
from repro.stream.state_space import TransitionStateSpace


class TestSize:
    def test_size_formula(self, grid4, space4):
        n_move = sum(len(grid4.neighbor_lists[c]) for c in range(grid4.n_cells))
        assert space4.n_move == n_move
        assert len(space4) == n_move + 2 * grid4.n_cells

    def test_size_without_eq(self, space4_noeq):
        assert len(space4_noeq) == space4_noeq.n_move

    def test_o9c_bound(self):
        """Paper: the reduced state space is O(9|C|) (+ enter/quit)."""
        for k in (2, 4, 8):
            grid = unit_grid(k)
            space = TransitionStateSpace(grid)
            assert space.n_move <= 9 * grid.n_cells
            assert len(space) <= 11 * grid.n_cells

    def test_k1_grid(self):
        space = TransitionStateSpace(unit_grid(1))
        # One self-loop movement + one enter + one quit.
        assert len(space) == 3


class TestIndexing:
    def test_roundtrip_all_states(self, space4):
        for i in range(len(space4)):
            state = space4.state_of(i)
            assert space4.index_of(state) == i

    def test_move_index(self, space4):
        s = TransitionState.move(0, 1)
        idx = space4.index_of(s)
        back = space4.state_of(idx)
        assert back.kind is StateKind.MOVE
        assert (back.origin, back.destination) == (0, 1)

    def test_enter_quit_blocks_are_disjoint(self, space4):
        enters = set(space4.enter_indices.tolist())
        quits = set(space4.quit_indices.tolist())
        moves = set(space4.move_indices.tolist())
        assert not (enters & quits)
        assert not (enters & moves)
        assert not (quits & moves)
        assert enters | quits | moves == set(range(len(space4)))

    def test_illegal_move_rejected(self, space4):
        with pytest.raises(DomainError):
            space4.index_of_move(0, 15)  # opposite corners not adjacent

    def test_self_loop_is_legal(self, space4):
        idx = space4.index_of_move(5, 5)
        assert space4.state_of(idx) == TransitionState.move(5, 5)

    def test_bad_cell_rejected(self, space4):
        with pytest.raises(DomainError):
            space4.index_of_enter(16)
        with pytest.raises(DomainError):
            space4.index_of_quit(-1)

    def test_bad_index_rejected(self, space4):
        with pytest.raises(DomainError):
            space4.state_of(len(space4))

    def test_eq_states_rejected_without_eq(self, space4_noeq):
        with pytest.raises(DomainError):
            space4_noeq.index_of(TransitionState.enter(0))
        with pytest.raises(DomainError):
            space4_noeq.index_of(TransitionState.quit(0))
        with pytest.raises(DomainError):
            _ = space4_noeq.enter_indices


class TestRowGroups:
    def test_out_moves_match_neighbors(self, grid4, space4):
        for origin in range(grid4.n_cells):
            dests = space4.out_destinations(origin)
            assert dests == grid4.neighbor_lists[origin]
            idx = space4.out_move_indices(origin)
            for i, d in zip(idx, dests):
                s = space4.state_of(int(i))
                assert s.kind is StateKind.MOVE
                assert s.origin == origin and s.destination == d

    def test_every_move_in_exactly_one_row(self, space4):
        seen = []
        for origin in range(space4.n_cells):
            seen.extend(space4.out_move_indices(origin).tolist())
        assert sorted(seen) == list(range(space4.n_move))

    @given(k=st.integers(1, 8))
    @settings(max_examples=20)
    def test_iteration_covers_space(self, k):
        space = TransitionStateSpace(unit_grid(k))
        states = list(space)
        assert len(states) == len(space)
        assert len({space.index_of(s) for s in states}) == len(space)


class TestEventStrings:
    def test_str_forms(self):
        assert str(TransitionState.move(1, 2)) == "m(1->2)"
        assert str(TransitionState.enter(3)) == "e(3)"
        assert str(TransitionState.quit(4)) == "q(4)"

    def test_constructors(self):
        m = TransitionState.move(1, 2)
        assert m.kind is StateKind.MOVE and m.origin == 1 and m.destination == 2
        e = TransitionState.enter(3)
        assert e.kind is StateKind.ENTER and e.origin is None and e.destination == 3
        q = TransitionState.quit(4)
        assert q.kind is StateKind.QUIT and q.origin == 4 and q.destination is None

    def test_hashable(self):
        s = {TransitionState.move(0, 1), TransitionState.move(0, 1)}
        assert len(s) == 1
