"""ISSUE 3 differential suite: columnar ledger ≡ object ledger.

Seeded random spend/recycle schedules are replayed through both accountant
engines, asserting identical spends, refusals, violations and window
totals at every timestamp — including w-boundary and re-registered-uid
edge cases, duplicate ids inside one batch, and partial-prefix recording
on a strict refusal.

Spend values are dyadic rationals (k/64): exact in binary floating point,
so partial sums are identical regardless of summation order and every
comparison below can be **exact** (`==`), not approximate.  Any drift
between the two engines is a real semantic divergence, not float noise.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.ldp.accountant import (
    ColumnarPrivacyAccountant,
    PrivacyAccountant,
    make_accountant,
)
from repro.stream.slots import UserSlotTable
from repro.stream.user_tracker import UserTracker


def _pair(epsilon, w, strict=True):
    return (
        PrivacyAccountant(epsilon, w, strict=strict),
        ColumnarPrivacyAccountant(epsilon, w, strict=strict),
    )


def _assert_same_state(obj, col, pool, t):
    """Full audit-surface equality at timestamp ``t`` over a uid pool."""
    ws_obj = obj.window_spend_many(pool, t)
    ws_col = col.window_spend_many(pool, t)
    assert ws_obj.tolist() == ws_col.tolist()
    assert obj.remaining_many(pool, t).tolist() == col.remaining_many(pool, t).tolist()
    for uid in pool:
        assert obj.window_spend(uid, t) == col.window_spend(uid, t)
        assert obj.total_spend(uid) == col.total_spend(uid)
    assert obj.n_users == col.n_users
    assert sorted(obj.user_ids()) == sorted(col.user_ids())
    assert obj.max_window_spend() == col.max_window_spend()
    assert obj.violations == col.violations
    assert obj.verify() == col.verify()
    assert obj.summary() == col.summary()


def _random_schedule(seed, n_rounds, pool, w):
    """Per-round (uids, epsilon) batches with dyadic spend values."""
    rng = np.random.default_rng(seed)
    rounds = []
    for _t in range(n_rounds):
        size = int(rng.integers(0, len(pool) + 1))
        uids = rng.choice(pool, size=size, replace=False)
        if rng.random() < 0.3 and size:
            # Occasionally duplicate some ids inside the batch.
            extra = rng.choice(uids, size=int(rng.integers(1, 3)))
            uids = np.concatenate([uids, extra])
        eps_t = int(rng.integers(1, 2 * 64 // w + 2)) / 64.0
        rounds.append((uids.astype(np.int64), eps_t))
    return rounds


class TestRandomSchedules:
    @pytest.mark.parametrize("seed", range(6))
    def test_non_strict_schedules_identical(self, seed):
        """Violations are recorded, never raised: full ledger equality."""
        w, eps = 4, 1.0
        pool = np.arange(1000, 1012, dtype=np.int64)
        obj, col = _pair(eps, w, strict=False)
        for t, (uids, eps_t) in enumerate(_random_schedule(seed, 30, pool, w)):
            obj.spend_many(uids, t, eps_t)
            col.spend_many(uids, t, eps_t)
            _assert_same_state(obj, col, pool, t)
        assert col.violations  # schedules are hot enough to violate

    @pytest.mark.parametrize("seed", range(6))
    def test_strict_schedules_refuse_identically(self, seed):
        """Refusals fire on the same round, same uid, same message — and the
        prefix of the batch recorded before the refusal is identical."""
        w, eps = 5, 0.5
        pool = np.arange(8, dtype=np.int64)
        obj, col = _pair(eps, w, strict=True)
        n_refused = 0
        for t, (uids, eps_t) in enumerate(_random_schedule(seed, 40, pool, w)):
            err_obj = err_col = None
            try:
                obj.spend_many(uids, t, eps_t)
            except PrivacyBudgetError as e:
                err_obj = str(e)
            try:
                col.spend_many(uids, t, eps_t)
            except PrivacyBudgetError as e:
                err_col = str(e)
            assert err_obj == err_col, (t, err_obj, err_col)
            n_refused += err_obj is not None
            _assert_same_state(obj, col, pool, t)
        assert n_refused > 0  # schedules are hot enough to refuse
        assert obj.verify() and col.verify()  # refused spends never happened


class TestRecycleSchedules:
    def test_population_division_with_shared_tracker(self):
        """Algorithm-1 style: register → recycle → sample → report → spend.

        The columnar accountant shares one slot table with the tracker
        (the unsharded curator's layout); the object ledger runs beside
        them as the reference.  Users re-registering after quitting peers
        and w-spaced full-ε spends must account identically.
        """
        w, eps = 3, 1.0
        rng = np.random.default_rng(7)
        table = UserSlotTable()
        tracker = UserTracker(w, slots=table)
        col = ColumnarPrivacyAccountant(eps, w, slots=table)
        obj = PrivacyAccountant(eps, w)
        pool = np.arange(40, dtype=np.int64)
        tracker.register(pool[:25])
        n_known = 25
        for t in range(25):
            if t % 5 == 0 and n_known < len(pool):  # late arrivals
                tracker.register(pool[n_known : n_known + 5])
                n_known += 5
            tracker.recycle(t)
            active = np.asarray(tracker.active_users(), dtype=np.int64)
            chosen = active[rng.random(active.size) < 0.5]
            tracker.mark_reported(chosen, t)
            obj.spend_many(chosen, t, eps)
            col.spend_many(chosen, t, eps)
            _assert_same_state(obj, col, pool, t)
        assert obj.verify() and col.verify()
        assert col.max_window_spend() == eps

    def test_active_mask_consistent_with_status_loop(self):
        """Vectorized active_mask over a shared table ≡ per-uid status."""
        table = UserSlotTable()
        tracker = UserTracker(3, slots=table)
        col = ColumnarPrivacyAccountant(1.0, 3, slots=table)
        tracker.register([1, 2, 3, 4])
        tracker.mark_reported([2, 3], 0)
        tracker.mark_quitted([4])
        col.spend_many(np.asarray([2, 3]), 0, 1.0)
        mask = tracker.active_mask([1, 2, 3, 4])
        assert mask.tolist() == [
            tracker.status(u).value == "active" for u in [1, 2, 3, 4]
        ]

    def test_accountant_interned_uid_is_still_unknown_to_tracker(self):
        """Sharing the table must not leak accountant-only users into the
        tracker's known set."""
        table = UserSlotTable()
        tracker = UserTracker(3, slots=table)
        col = ColumnarPrivacyAccountant(1.0, 3, slots=table)
        col.spend(99, 0, 0.5)
        with pytest.raises(ConfigurationError):
            tracker.status(99)
        with pytest.raises(ConfigurationError):
            tracker.active_mask(np.asarray([99]))
        assert 99 not in tracker.known_users()
        assert tracker.n_known() == 0


class TestEdgeCases:
    def test_w_boundary_exact(self):
        """A full-ε respend is legal exactly at t + w, not at t + w − 1."""
        for t0 in (0, 3):
            obj, col = _pair(1.0, 4)
            for acc in (obj, col):
                acc.spend(5, t0, 1.0)
                with pytest.raises(PrivacyBudgetError):
                    acc.spend(5, t0 + 4 - 1, 1.0)
                acc.spend(5, t0 + 4, 1.0)  # window slid: legal
                assert acc.verify()
                assert acc.max_window_spend() == 1.0
                assert acc.total_spend(5) == 2.0

    def test_reregistered_uid_many_windows(self):
        """A uid recycling through many windows accounts identically."""
        obj, col = _pair(1.0, 5)
        for k in range(10):
            obj.spend(77, 5 * k, 1.0)
            col.spend(77, 5 * k, 1.0)
        _assert_same_state(obj, col, np.asarray([77]), 45)
        assert col.total_spend(77) == 10.0

    def test_duplicate_uid_in_batch_sequential_semantics(self):
        """The k-th duplicate sees the window left by the first k−1."""
        obj, col = _pair(1.0, 3, strict=False)
        batch = np.asarray([9, 9, 9, 8], dtype=np.int64)
        obj.spend_many(batch, 0, 0.625)
        col.spend_many(batch, 0, 0.625)
        _assert_same_state(obj, col, np.asarray([8, 9]), 0)
        # occurrences 2 (1.25) and 3 (1.875) of uid 9 exceed 1.0: two
        # violations, in batch-row order; uid 8 stays clean.
        assert [v[0] for v in col.violations] == [9, 9]

    def test_duplicate_uid_strict_prefix_recorded(self):
        """Strict refusal mid-batch keeps the already-recorded prefix."""
        batch = np.asarray([3, 9, 9, 4], dtype=np.int64)
        obj, col = _pair(1.0, 3, strict=True)
        msgs = []
        for acc in (obj, col):
            with pytest.raises(PrivacyBudgetError) as exc:
                acc.spend_many(batch, 2, 0.75)
            msgs.append(str(exc.value))
        assert msgs[0] == msgs[1]
        # uid 3 and the first occurrence of 9 were recorded; 4 never was.
        _assert_same_state(obj, col, np.asarray([3, 4, 9]), 2)
        assert col.window_spend(3, 2) == 0.75
        assert col.window_spend(9, 2) == 0.75
        assert col.window_spend(4, 2) == 0.0

    def test_zero_and_negative_spends(self):
        obj, col = _pair(1.0, 3)
        for acc in (obj, col):
            acc.spend_many(np.asarray([1, 2]), 0, 0.0)
            assert acc.n_users == 0
            with pytest.raises(ConfigurationError):
                acc.spend_many(np.asarray([1, 2]), 0, -0.25)

    def test_empty_batch_is_free(self):
        obj, col = _pair(1.0, 3)
        for acc in (obj, col):
            acc.spend_many(np.empty(0, dtype=np.int64), 0, 0.5)
            assert acc.n_users == 0

    def test_columnar_requires_monotone_timestamps(self):
        """Documented divergence: the ring ledger keeps only the live
        window, so out-of-order spends are rejected instead of silently
        corrupting recycled cells.  The object reference accepts them."""
        obj, col = _pair(1.0, 3)
        obj.spend(1, 5, 0.25)
        obj.spend(1, 2, 0.25)  # reference: order-free
        col.spend(1, 5, 0.25)
        with pytest.raises(ConfigurationError):
            col.spend(1, 2, 0.25)
        col.spend(2, 5, 0.25)  # same-t spends remain fine

    def test_same_timestamp_accumulates(self):
        obj, col = _pair(1.0, 3)
        for acc in (obj, col):
            acc.spend(4, 1, 0.25)
            acc.spend(4, 1, 0.5)
            assert acc.window_spend(4, 1) == 0.75

    def test_unknown_uid_queries_are_zero(self):
        obj, col = _pair(1.0, 3)
        for acc in (obj, col):
            assert acc.window_spend(12345, 0) == 0.0
            assert acc.total_spend(12345) == 0.0
            assert acc.remaining_many(np.asarray([12345]), 0).tolist() == [1.0]


class TestFactory:
    def test_make_accountant_modes(self):
        assert isinstance(make_accountant(1.0, 3, mode="object"), PrivacyAccountant)
        assert isinstance(
            make_accountant(1.0, 3, mode="columnar"), ColumnarPrivacyAccountant
        )
        with pytest.raises(ConfigurationError):
            make_accountant(1.0, 3, mode="ledger-9000")

    def test_shared_slots_honoured(self):
        table = UserSlotTable()
        acc = make_accountant(1.0, 3, slots=table)
        acc.spend(7, 0, 0.5)
        assert table.slot_of(7) == 0
