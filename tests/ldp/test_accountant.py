"""Tests for w-event privacy accounting.

``TestPrivacyAccountant`` is parametrized over both ledger engines: every
semantic assertion must hold for the dict reference *and* the columnar
ring-buffer ledger (deeper cross-engine checks live in
``test_accountant_differential.py``).
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.ldp.accountant import (
    PrivacyAccountant as ObjectPrivacyAccountant,
    SlidingBudgetTracker,
    make_accountant,
)


@pytest.fixture(params=["object", "columnar"])
def PrivacyAccountant(request):  # noqa: N802 - reads like the class it builds
    """Both engines behind the reference constructor signature."""
    mode = request.param

    def build(epsilon, w, strict=True):
        return make_accountant(epsilon, w, mode=mode, strict=strict)

    return build


class TestPrivacyAccountant:
    def test_single_spend_ok(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 1.0)
        assert acc.verify()

    def test_overspend_same_timestamp_raises(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 0.6)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(1, 0, 0.6)

    def test_overspend_within_window_raises(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 0.6)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(1, 2, 0.6)

    def test_spend_outside_window_ok(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 1.0)
        acc.spend(1, 3, 1.0)  # window [1..3] contains only the second spend
        assert acc.verify()
        assert acc.max_window_spend() == pytest.approx(1.0)

    def test_different_users_independent(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=5)
        acc.spend(1, 0, 1.0)
        acc.spend(2, 0, 1.0)
        assert acc.verify()

    def test_strict_refusal_leaves_ledger_clean(self, PrivacyAccountant):
        """A refused spend never happened: the ledger must still verify."""
        acc = PrivacyAccountant(epsilon=1.0, w=6)
        for t, a in enumerate([0.125, 0.125, 0.1875, 0.1875, 0.1875]):
            acc.spend(0, t, a)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(0, 5, 0.1953125)  # would tip the window over 1.0
        assert acc.verify()
        assert acc.violations == []

    def test_uniform_budget_division_fills_window_exactly(self, PrivacyAccountant):
        w, eps = 4, 1.0
        acc = PrivacyAccountant(eps, w)
        for t in range(20):
            acc.spend(7, t, eps / w)
        assert acc.verify()
        assert acc.max_window_spend() == pytest.approx(eps)

    def test_non_strict_records_violations(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3, strict=False)
        acc.spend(1, 0, 0.8)
        acc.spend(1, 1, 0.8)  # violation, recorded not raised
        assert not acc.verify()
        assert len(acc.violations) == 1
        uid, t, total = acc.violations[0]
        assert uid == 1 and t == 1 and total == pytest.approx(1.6)

    def test_zero_spend_is_free(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        for t in range(100):
            acc.spend(1, t, 0.0)
        assert acc.total_spend(1) == 0.0
        assert acc.n_users == 0  # zero spends are not recorded

    def test_negative_spend_rejected(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        with pytest.raises(ConfigurationError):
            acc.spend(1, 0, -0.1)

    def test_spend_many(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=1.0, w=2)
        acc.spend_many([1, 2, 3], 0, 0.5)
        assert acc.n_users == 3
        assert acc.window_spend(2, 0) == pytest.approx(0.5)

    def test_summary_fields(self, PrivacyAccountant):
        acc = PrivacyAccountant(epsilon=2.0, w=4)
        acc.spend(1, 0, 1.0)
        s = acc.summary()
        assert s["epsilon"] == 2.0
        assert s["w"] == 4
        assert s["n_users"] == 1
        assert s["satisfied"] is True

    def test_invalid_construction(self, PrivacyAccountant):
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(0.0, 3)
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(1.0, 0)


class TestSpendManyDtypes:
    """ISSUE 3 satellite: numpy int arrays in, no silent coercion.

    ``spend_many`` historically required ``.tolist()`` at every call site;
    passing arrays directly must now work for any integer width and must
    *reject* float/object arrays instead of quietly keying the ledger on
    non-int values.
    """

    @pytest.mark.parametrize(
        "dtype", [np.int16, np.int32, np.int64, np.uint32]
    )
    def test_integer_arrays_accepted(self, PrivacyAccountant, dtype):
        acc = PrivacyAccountant(1.0, 3)
        acc.spend_many(np.asarray([1, 2, 3], dtype=dtype), 0, 0.5)
        assert acc.n_users == 3
        # Queries keyed by plain Python ints must see the spends.
        assert acc.window_spend(2, 0) == 0.5
        assert sorted(acc.user_ids()) == [1, 2, 3]

    def test_object_ledger_keys_are_python_ints(self):
        acc = ObjectPrivacyAccountant(1.0, 3)
        acc.spend_many(np.asarray([5, 6], dtype=np.int64), 0, 0.5)
        acc.spend(np.int64(7), 1, 0.5)
        assert all(type(uid) is int for uid in acc._spends)

    def test_float_array_rejected(self, PrivacyAccountant):
        acc = PrivacyAccountant(1.0, 3)
        with pytest.raises(ConfigurationError):
            acc.spend_many(np.asarray([1.0, 2.0]), 0, 0.5)
        assert acc.n_users == 0

    def test_object_array_rejected(self, PrivacyAccountant):
        acc = PrivacyAccountant(1.0, 3)
        with pytest.raises(ConfigurationError):
            acc.spend_many(np.asarray(["a", "b"], dtype=object), 0, 0.5)

    def test_float_scalar_uid_rejected(self, PrivacyAccountant):
        acc = PrivacyAccountant(1.0, 3)
        with pytest.raises(ConfigurationError):
            acc.spend(1.5, 0, 0.5)

    def test_uint64_overflow_rejected(self, PrivacyAccountant):
        """ids above int64 max must raise, not wrap to negative keys."""
        acc = PrivacyAccountant(1.0, 3)
        with pytest.raises(ConfigurationError):
            acc.spend_many(np.asarray([2**63 + 5], dtype=np.uint64), 0, 0.5)
        assert acc.n_users == 0

    def test_zero_spend_still_validates_uid(self, PrivacyAccountant):
        """Both engines reject a bad uid identically even when ε == 0."""
        acc = PrivacyAccountant(1.0, 3)
        with pytest.raises(ConfigurationError):
            acc.spend(1.5, 0, 0.0)

    def test_generators_still_accepted(self, PrivacyAccountant):
        """Baselines feed generator expressions; they must keep working."""
        acc = PrivacyAccountant(1.0, 3)
        acc.spend_many((u for u in [1, 2, 3]), 0, 0.5)
        assert acc.n_users == 3

    def test_batch_and_scalar_paths_agree(self, PrivacyAccountant):
        a = PrivacyAccountant(1.0, 4)
        b = PrivacyAccountant(1.0, 4)
        a.spend_many(np.asarray([1, 2], dtype=np.int32), 3, 0.25)
        b.spend(1, 3, 0.25)
        b.spend(2, 3, 0.25)
        assert a.summary() == b.summary()


class TestSlidingBudgetTracker:
    def test_initial_remaining_is_full(self):
        tr = SlidingBudgetTracker(1.0, 4)
        assert tr.remaining == pytest.approx(1.0)

    def test_remaining_shrinks_with_commits(self):
        tr = SlidingBudgetTracker(1.0, 4)
        tr.commit(0.3)
        assert tr.remaining == pytest.approx(0.7)
        tr.commit(0.3)
        assert tr.remaining == pytest.approx(0.4)

    def test_window_slides(self):
        tr = SlidingBudgetTracker(1.0, 2)
        tr.commit(1.0)
        assert tr.remaining == pytest.approx(0.0)
        tr.commit(0.0)
        # Oldest (the 1.0) is now outside the next window.
        assert tr.remaining == pytest.approx(1.0)

    def test_over_commit_raises(self):
        tr = SlidingBudgetTracker(1.0, 3)
        tr.commit(0.8)
        with pytest.raises(PrivacyBudgetError):
            tr.commit(0.3)

    def test_negative_commit_rejected(self):
        tr = SlidingBudgetTracker(1.0, 3)
        with pytest.raises(ConfigurationError):
            tr.commit(-0.1)

    def test_uniform_commits_sustainable_forever(self):
        w = 5
        tr = SlidingBudgetTracker(1.0, w)
        for _ in range(50):
            tr.commit(1.0 / w)
        assert tr.remaining == pytest.approx(1.0 / w)

    def test_window_history_order(self):
        tr = SlidingBudgetTracker(1.0, 3)
        tr.commit(0.1)
        tr.commit(0.2)
        assert tr.window_history() == [0.0, 0.1, 0.2]
