"""Tests for w-event privacy accounting."""

import pytest

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.ldp.accountant import PrivacyAccountant, SlidingBudgetTracker


class TestPrivacyAccountant:
    def test_single_spend_ok(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 1.0)
        assert acc.verify()

    def test_overspend_same_timestamp_raises(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 0.6)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(1, 0, 0.6)

    def test_overspend_within_window_raises(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 0.6)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(1, 2, 0.6)

    def test_spend_outside_window_ok(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        acc.spend(1, 0, 1.0)
        acc.spend(1, 3, 1.0)  # window [1..3] contains only the second spend
        assert acc.verify()
        assert acc.max_window_spend() == pytest.approx(1.0)

    def test_different_users_independent(self):
        acc = PrivacyAccountant(epsilon=1.0, w=5)
        acc.spend(1, 0, 1.0)
        acc.spend(2, 0, 1.0)
        assert acc.verify()

    def test_strict_refusal_leaves_ledger_clean(self):
        """A refused spend never happened: the ledger must still verify."""
        acc = PrivacyAccountant(epsilon=1.0, w=6)
        for t, a in enumerate([0.125, 0.125, 0.1875, 0.1875, 0.1875]):
            acc.spend(0, t, a)
        with pytest.raises(PrivacyBudgetError):
            acc.spend(0, 5, 0.1953125)  # would tip the window over 1.0
        assert acc.verify()
        assert acc.violations == []

    def test_uniform_budget_division_fills_window_exactly(self):
        w, eps = 4, 1.0
        acc = PrivacyAccountant(eps, w)
        for t in range(20):
            acc.spend(7, t, eps / w)
        assert acc.verify()
        assert acc.max_window_spend() == pytest.approx(eps)

    def test_non_strict_records_violations(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3, strict=False)
        acc.spend(1, 0, 0.8)
        acc.spend(1, 1, 0.8)  # violation, recorded not raised
        assert not acc.verify()
        assert len(acc.violations) == 1
        uid, t, total = acc.violations[0]
        assert uid == 1 and t == 1 and total == pytest.approx(1.6)

    def test_zero_spend_is_free(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        for t in range(100):
            acc.spend(1, t, 0.0)
        assert acc.total_spend(1) == 0.0
        assert acc.n_users == 0  # zero spends are not recorded

    def test_negative_spend_rejected(self):
        acc = PrivacyAccountant(epsilon=1.0, w=3)
        with pytest.raises(ConfigurationError):
            acc.spend(1, 0, -0.1)

    def test_spend_many(self):
        acc = PrivacyAccountant(epsilon=1.0, w=2)
        acc.spend_many([1, 2, 3], 0, 0.5)
        assert acc.n_users == 3
        assert acc.window_spend(2, 0) == pytest.approx(0.5)

    def test_summary_fields(self):
        acc = PrivacyAccountant(epsilon=2.0, w=4)
        acc.spend(1, 0, 1.0)
        s = acc.summary()
        assert s["epsilon"] == 2.0
        assert s["w"] == 4
        assert s["n_users"] == 1
        assert s["satisfied"] is True

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(0.0, 3)
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(1.0, 0)


class TestSlidingBudgetTracker:
    def test_initial_remaining_is_full(self):
        tr = SlidingBudgetTracker(1.0, 4)
        assert tr.remaining == pytest.approx(1.0)

    def test_remaining_shrinks_with_commits(self):
        tr = SlidingBudgetTracker(1.0, 4)
        tr.commit(0.3)
        assert tr.remaining == pytest.approx(0.7)
        tr.commit(0.3)
        assert tr.remaining == pytest.approx(0.4)

    def test_window_slides(self):
        tr = SlidingBudgetTracker(1.0, 2)
        tr.commit(1.0)
        assert tr.remaining == pytest.approx(0.0)
        tr.commit(0.0)
        # Oldest (the 1.0) is now outside the next window.
        assert tr.remaining == pytest.approx(1.0)

    def test_over_commit_raises(self):
        tr = SlidingBudgetTracker(1.0, 3)
        tr.commit(0.8)
        with pytest.raises(PrivacyBudgetError):
            tr.commit(0.3)

    def test_negative_commit_rejected(self):
        tr = SlidingBudgetTracker(1.0, 3)
        with pytest.raises(ConfigurationError):
            tr.commit(-0.1)

    def test_uniform_commits_sustainable_forever(self):
        w = 5
        tr = SlidingBudgetTracker(1.0, w)
        for _ in range(50):
            tr.commit(1.0 / w)
        assert tr.remaining == pytest.approx(1.0 / w)

    def test_window_history_order(self):
        tr = SlidingBudgetTracker(1.0, 3)
        tr.commit(0.1)
        tr.commit(0.2)
        assert tr.window_history() == [0.0, 0.1, 0.2]
