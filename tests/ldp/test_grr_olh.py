"""Tests for the GRR and OLH frequency oracles."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing


class TestGRR:
    def test_probabilities_sum(self):
        grr = GeneralizedRandomizedResponse(10, 1.0, rng=0)
        # p + (d-1) q == 1
        assert grr.p + 9 * grr.q == pytest.approx(1.0)

    def test_ldp_ratio(self):
        grr = GeneralizedRandomizedResponse(10, 1.0, rng=0)
        assert grr.p / grr.q == pytest.approx(np.e)

    def test_reports_in_domain(self):
        grr = GeneralizedRandomizedResponse(7, 1.0, rng=0)
        reports = grr.perturb_many([3] * 500)
        assert reports.min() >= 0 and reports.max() < 7

    def test_unbiasedness(self):
        values = [0] * 700 + [1] * 300
        runs = np.stack([
            GeneralizedRandomizedResponse(4, 2.0, rng=i).collect(values)
            for i in range(80)
        ])
        mean_est = runs.mean(axis=0)
        assert mean_est[0] == pytest.approx(700, abs=40)
        assert mean_est[1] == pytest.approx(300, abs=40)
        assert mean_est[3] == pytest.approx(0, abs=40)

    def test_singleton_domain(self):
        grr = GeneralizedRandomizedResponse(1, 1.0, rng=0)
        est = grr.collect([0, 0, 0])
        assert est.shape == (1,)

    def test_domain_check(self):
        grr = GeneralizedRandomizedResponse(4, 1.0, rng=0)
        with pytest.raises(DomainError):
            grr.collect([4])

    def test_variance_positive_and_decreasing(self):
        grr = GeneralizedRandomizedResponse(10, 1.0, rng=0)
        assert grr.variance(100) > grr.variance(1000) > 0

    def test_agreement_with_oue_on_large_sample(self):
        """Independent protocols should agree on the underlying frequencies."""
        from repro.ldp.oue import OptimizedUnaryEncoding

        values = ([0] * 500 + [1] * 300 + [2] * 200) * 3
        grr_est = np.mean(
            [GeneralizedRandomizedResponse(3, 2.0, rng=i).collect(values) for i in range(40)],
            axis=0,
        )
        oue_est = np.mean(
            [OptimizedUnaryEncoding(3, 2.0, rng=i).collect(values) for i in range(40)],
            axis=0,
        )
        assert grr_est == pytest.approx(oue_est, abs=120)


class TestOLH:
    def test_hash_domain_size(self):
        olh = OptimizedLocalHashing(20, 1.0, rng=0)
        assert olh.g == max(2, round(np.e) + 1)

    def test_unbiasedness(self):
        values = [0] * 600 + [5] * 400
        runs = np.stack([
            OptimizedLocalHashing(8, 2.0, rng=i).collect(values)
            for i in range(60)
        ])
        mean_est = runs.mean(axis=0)
        assert mean_est[0] == pytest.approx(600, abs=80)
        assert mean_est[5] == pytest.approx(400, abs=80)
        assert mean_est[3] == pytest.approx(0, abs=80)

    def test_empty_input(self):
        olh = OptimizedLocalHashing(8, 1.0, rng=0)
        assert np.all(olh.collect([]) == 0)

    def test_variance_matches_oue_form(self):
        olh = OptimizedLocalHashing(8, 1.0, rng=0)
        e = np.exp(1.0)
        assert olh.variance(100) == pytest.approx(4 * e / (100 * (e - 1) ** 2))
