"""Tests for the OUE frequency oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DomainError
from repro.ldp.oue import OptimizedUnaryEncoding, oue_variance


class TestParameters:
    def test_flip_probabilities(self):
        oue = OptimizedUnaryEncoding(10, epsilon=1.0, rng=0)
        assert oue.p == 0.5
        assert oue.q == pytest.approx(1.0 / (np.e + 1.0))

    def test_q_decreases_with_epsilon(self):
        q1 = OptimizedUnaryEncoding(10, 0.5, rng=0).q
        q2 = OptimizedUnaryEncoding(10, 2.0, rng=0).q
        assert q2 < q1

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(10, 0.0)
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(10, -1.0)
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(10, float("inf"))

    def test_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(0, 1.0)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(10, 1.0, mode="bogus")


class TestVariance:
    def test_paper_equation_3(self):
        # Var = 4 e^eps / (n (e^eps - 1)^2)
        eps, n = 1.0, 1000
        expected = 4 * np.e / (n * (np.e - 1) ** 2)
        assert oue_variance(eps, n) == pytest.approx(expected)

    def test_decreases_in_n_and_epsilon(self):
        assert oue_variance(1.0, 2000) < oue_variance(1.0, 1000)
        assert oue_variance(2.0, 1000) < oue_variance(1.0, 1000)

    def test_zero_users_infinite(self):
        assert oue_variance(1.0, 0) == float("inf")


class TestUserSide:
    def test_perturb_one_shape(self):
        oue = OptimizedUnaryEncoding(8, 1.0, rng=0)
        vec = oue.perturb_one(3)
        assert vec.shape == (8,)
        assert set(np.unique(vec)).issubset({0, 1})

    def test_perturb_many_shape(self):
        oue = OptimizedUnaryEncoding(8, 1.0, rng=0)
        mat = oue.perturb_many([0, 1, 2, 3])
        assert mat.shape == (4, 8)

    def test_out_of_domain_value(self):
        oue = OptimizedUnaryEncoding(8, 1.0, rng=0)
        with pytest.raises(DomainError):
            oue.perturb_many([8])
        with pytest.raises(DomainError):
            oue.perturb_many([-1])

    def test_true_bit_kept_half_the_time(self):
        oue = OptimizedUnaryEncoding(4, 1.0, rng=0)
        mat = oue.perturb_many([2] * 4000)
        assert mat[:, 2].mean() == pytest.approx(0.5, abs=0.03)

    def test_false_bits_flip_at_q(self):
        oue = OptimizedUnaryEncoding(4, 1.0, rng=0)
        mat = oue.perturb_many([2] * 4000)
        assert mat[:, 0].mean() == pytest.approx(oue.q, abs=0.03)


class TestCuratorSide:
    def test_unbiasedness_exact_mode(self):
        values = [0] * 600 + [1] * 300 + [2] * 100
        runs = np.stack([
            OptimizedUnaryEncoding(5, 2.0, rng=i, mode="exact").collect(values)
            for i in range(60)
        ])
        mean_est = runs.mean(axis=0)
        assert mean_est[0] == pytest.approx(600, abs=40)
        assert mean_est[1] == pytest.approx(300, abs=40)
        assert mean_est[4] == pytest.approx(0, abs=40)

    def test_unbiasedness_fast_mode(self):
        values = [0] * 600 + [1] * 300 + [2] * 100
        runs = np.stack([
            OptimizedUnaryEncoding(5, 2.0, rng=i, mode="fast").collect(values)
            for i in range(60)
        ])
        mean_est = runs.mean(axis=0)
        assert mean_est[0] == pytest.approx(600, abs=40)
        assert mean_est[2] == pytest.approx(100, abs=40)

    def test_fast_and_exact_same_distribution(self):
        """Fast mode must match exact mode in mean and spread."""
        values = [0] * 400 + [3] * 600
        exact = np.stack([
            OptimizedUnaryEncoding(6, 1.0, rng=i, mode="exact").collect(values)
            for i in range(80)
        ])
        fast = np.stack([
            OptimizedUnaryEncoding(6, 1.0, rng=1000 + i, mode="fast").collect(values)
            for i in range(80)
        ])
        assert exact.mean(axis=0) == pytest.approx(fast.mean(axis=0), abs=60)
        # Std per position should agree within sampling error.
        assert exact.std(axis=0) == pytest.approx(fast.std(axis=0), rel=0.5)

    def test_empirical_variance_matches_equation(self):
        n, eps, d = 800, 1.0, 4
        freqs = np.stack([
            OptimizedUnaryEncoding(d, eps, rng=i).collect([0] * n) / n
            for i in range(200)
        ])
        # Position 1 has true frequency 0; its estimator variance is Eq. 3.
        emp = freqs[:, 1].var()
        assert emp == pytest.approx(oue_variance(eps, n), rel=0.35)

    def test_empty_input(self):
        oue = OptimizedUnaryEncoding(5, 1.0, rng=0)
        assert np.all(oue.collect([]) == 0)

    def test_estimate_frequencies_sums_near_one(self):
        oue = OptimizedUnaryEncoding(5, 4.0, rng=0)
        freqs = oue.estimate_frequencies([0, 1, 2, 3, 4] * 200)
        assert freqs.sum() == pytest.approx(1.0, abs=0.2)

    def test_aggregate_rejects_bad_shape(self):
        oue = OptimizedUnaryEncoding(5, 1.0, rng=0)
        with pytest.raises(ConfigurationError):
            oue.aggregate(np.zeros((3, 4)))

    def test_split_round_trip_matches_collect(self):
        """simulate_ones + debias == collect for the same RNG stream."""
        values = [1, 2, 3] * 50
        a = OptimizedUnaryEncoding(5, 1.0, rng=7)
        ones = a.simulate_ones(values)
        est_split = a.debias(ones, len(values))
        b = OptimizedUnaryEncoding(5, 1.0, rng=7)
        est_direct = b.collect(values)
        assert est_split == pytest.approx(est_direct)


class TestBatchedExactMode:
    """The batched exact path must match the per-user reference loop."""

    def test_batched_and_loop_same_distribution(self):
        values = [0] * 300 + [2] * 500 + [5] * 200
        batched = np.stack([
            OptimizedUnaryEncoding(6, 1.0, rng=i, mode="exact").collect(values)
            for i in range(80)
        ])
        loop = np.stack([
            OptimizedUnaryEncoding(
                6, 1.0, rng=5000 + i, mode="exact-loop"
            ).collect(values)
            for i in range(80)
        ])
        assert batched.mean(axis=0) == pytest.approx(loop.mean(axis=0), abs=60)
        assert batched.std(axis=0) == pytest.approx(loop.std(axis=0), rel=0.5)

    def test_batched_unbiased(self):
        values = [1] * 700 + [3] * 300
        runs = np.stack([
            OptimizedUnaryEncoding(4, 2.0, rng=i, mode="exact").collect(values)
            for i in range(60)
        ])
        mean_est = runs.mean(axis=0)
        assert mean_est[1] == pytest.approx(700, abs=45)
        assert mean_est[3] == pytest.approx(300, abs=45)
        assert mean_est[0] == pytest.approx(0, abs=45)

    def test_chunked_accumulation_spans_batches(self, monkeypatch):
        """Forcing tiny chunks must not change the estimator's behaviour."""
        import repro.ldp.oue as oue_mod

        monkeypatch.setattr(oue_mod, "_BATCH_ELEMENTS", 16)
        values = [0] * 500 + [2] * 500
        runs = np.stack([
            OptimizedUnaryEncoding(4, 2.0, rng=i, mode="exact").collect(values)
            for i in range(40)
        ])
        assert runs.mean(axis=0)[0] == pytest.approx(500, abs=60)
        assert runs.mean(axis=0)[2] == pytest.approx(500, abs=60)

    def test_loop_mode_matches_perturb_one_stream(self):
        """exact-loop is literally perturb_one per user on the same rng."""
        values = [1, 0, 2, 2, 1]
        a = OptimizedUnaryEncoding(3, 1.0, rng=11, mode="exact-loop")
        ones = a.simulate_ones(values)
        b = OptimizedUnaryEncoding(3, 1.0, rng=11, mode="exact-loop")
        expected = np.zeros(3)
        for v in values:
            expected += b.perturb_one(v)
        assert ones == pytest.approx(expected)

    def test_empty_input_all_modes(self):
        for mode in ("exact", "exact-loop", "fast"):
            oue = OptimizedUnaryEncoding(5, 1.0, rng=0, mode=mode)
            assert np.all(oue.collect([]) == 0)


class TestPrivacyProperty:
    @given(eps=st.floats(0.1, 4.0))
    @settings(max_examples=30)
    def test_flip_probability_ratio_bounded(self, eps):
        """Per-bit randomized response satisfies eps-LDP:
        the odds ratio of observing 1 under bit=1 vs bit=0 is <= e^eps."""
        oue = OptimizedUnaryEncoding(4, eps, rng=0)
        ratio_one = oue.p / oue.q
        ratio_zero = (1 - oue.q) / (1 - oue.p)
        assert ratio_one <= np.exp(eps) * (1 + 1e-9)
        assert ratio_zero <= np.exp(eps) * (1 + 1e-9)
