"""Tests for the LDP-IDS baselines (LBD/LBA/LPD/LPA)."""

import numpy as np
import pytest

from repro.baselines.ldp_ids import LBA, LBD, LPA, LPD, LdpIdsConfig, make_baseline
from repro.exceptions import ConfigurationError
from repro.metrics.length import length_error
from repro.metrics.divergence import LN2


class TestConfig:
    def test_labels_and_division(self):
        assert LdpIdsConfig(strategy="lbd").label == "LBD"
        assert LdpIdsConfig(strategy="lbd").division == "budget"
        assert LdpIdsConfig(strategy="lba").division == "budget"
        assert LdpIdsConfig(strategy="lpd").division == "population"
        assert LdpIdsConfig(strategy="lpa").division == "population"

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            LdpIdsConfig(strategy="xyz")

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            LdpIdsConfig(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            LdpIdsConfig(w=0)

    def test_factory(self):
        assert isinstance(make_baseline("LBD"), LBD)
        assert isinstance(make_baseline("lba"), LBA)
        assert isinstance(make_baseline("LPD"), LPD)
        assert isinstance(make_baseline("lpa"), LPA)
        with pytest.raises(ConfigurationError):
            make_baseline("nope")


@pytest.mark.parametrize("strategy", ["lbd", "lba", "lpd", "lpa"])
class TestAllStrategies:
    def test_privacy_guarantee(self, walk_data, strategy):
        run = make_baseline(strategy, epsilon=1.0, w=4, seed=0).run(walk_data)
        assert run.accountant is not None
        assert run.accountant.verify(), run.accountant.summary()

    def test_synthetic_shape(self, walk_data, strategy):
        run = make_baseline(strategy, epsilon=1.0, w=4, seed=0).run(walk_data)
        syn = run.synthetic
        assert syn.n_timestamps == walk_data.n_timestamps
        # Baselines never terminate or add streams: constant population.
        counts = syn.active_counts()
        assert np.all(counts == counts[0])

    def test_streams_respect_adjacency(self, walk_data, strategy):
        run = make_baseline(strategy, epsilon=1.0, w=4, seed=0).run(walk_data)
        grid = walk_data.grid
        for traj in run.synthetic.trajectories:
            for a, b in traj.transitions():
                assert grid.are_adjacent(a, b)

    def test_length_error_near_ln2(self, walk_data, strategy):
        """Never-terminating streams => travel-distance supports separate."""
        run = make_baseline(strategy, epsilon=1.0, w=4, seed=0).run(walk_data)
        assert length_error(walk_data, run.synthetic) > 0.5 * LN2

    def test_deterministic_given_seed(self, walk_data, strategy):
        r1 = make_baseline(strategy, epsilon=1.0, w=4, seed=9).run(walk_data)
        r2 = make_baseline(strategy, epsilon=1.0, w=4, seed=9).run(walk_data)
        assert [t.cells for t in r1.synthetic.trajectories] == [
            t.cells for t in r2.synthetic.trajectories
        ]

    def test_reusable_instance(self, walk_data, strategy):
        algo = make_baseline(strategy, epsilon=1.0, w=4, seed=0)
        r1 = algo.run(walk_data)
        r2 = algo.run(walk_data)
        assert r2.accountant.verify()
        assert len(r1.synthetic) == len(r2.synthetic)


class TestBudgetSplit:
    def test_lbd_reports_every_timestamp(self, walk_data):
        """Budget division: all movers pay the dissimilarity budget each t."""
        run = LBD(epsilon=1.0, w=4, seed=0).run(walk_data)
        # Reporters appear whenever there are movement participants.
        from repro.stream.events import StateKind

        for t, n in enumerate(run.reporters_per_timestamp):
            movers = [
                1
                for _u, s in walk_data.participants_at(t)
                if s.kind is StateKind.MOVE
            ]
            assert (n > 0) == (len(movers) > 0)

    def test_lpd_reports_fraction(self, walk_data):
        run = LPD(epsilon=1.0, w=4, seed=0).run(walk_data)
        total_reports = sum(run.reporters_per_timestamp)
        total_movers = sum(
            1
            for t in range(walk_data.n_timestamps)
            for _u, s in walk_data.participants_at(t)
            if s.kind.value == "move"
        )
        assert 0 < total_reports < total_movers
