"""Unit tests for the Budget/Population Absorption schedule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ldp_ids import AbsorptionSchedule


class TestAbsorptionSchedule:
    def test_first_tick_allows(self):
        s = AbsorptionSchedule()
        assert s.tick() is True
        assert s.units == 1

    def test_units_accumulate_on_skips(self):
        s = AbsorptionSchedule()
        for _ in range(4):
            s.tick()
        assert s.units == 4

    def test_publish_consumes_all_units(self):
        s = AbsorptionSchedule()
        for _ in range(3):
            s.tick()
        assert s.publish() == 3
        assert s.units == 0

    def test_nullification_after_absorbing(self):
        """Absorbing k units blocks the next k-1 timestamps."""
        s = AbsorptionSchedule()
        for _ in range(3):
            s.tick()
        s.publish()  # absorbed 3 -> 2 nullified
        assert s.tick() is False
        assert s.tick() is False
        assert s.tick() is True

    def test_single_unit_publication_no_nullification(self):
        s = AbsorptionSchedule()
        s.tick()
        s.publish()
        assert s.tick() is True

    def test_units_keep_accruing_while_nullified(self):
        """Nullified timestamps still deposit their unit for later use."""
        s = AbsorptionSchedule()
        for _ in range(3):
            s.tick()
        s.publish()
        s.tick()  # nullified, unit banked
        s.tick()  # nullified, unit banked
        assert s.units == 2

    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_window_invariant(self, pattern):
        """Over any horizon, published units never exceed elapsed ticks.

        This is the property that keeps LBA/LPA inside the ε/2 publication
        cap: each timestamp mints exactly one unit, and every published unit
        was minted by some earlier (or current) timestamp.
        """
        s = AbsorptionSchedule()
        minted = 0
        published = 0
        for wants_publish in pattern:
            allowed = s.tick()
            minted += 1
            if wants_publish and allowed:
                published += s.publish()
            assert published <= minted
