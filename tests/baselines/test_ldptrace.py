"""Tests for the LDPTrace-style historical synthesizer."""

import pytest

from repro.baselines.ldptrace import (
    HistoricalRelease,
    LDPTraceConfig,
    LDPTraceSynthesizer,
)
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_defaults(self):
        cfg = LDPTraceConfig()
        assert cfg.label == "LDPTrace"
        assert cfg.n_length_bins == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LDPTraceConfig(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            LDPTraceConfig(n_length_bins=0)


class TestRelease:
    @pytest.fixture(scope="class")
    def release(self):
        from repro.datasets.synthetic import make_random_walks

        data = make_random_walks(k=5, n_streams=400, n_timestamps=30, seed=1)
        return data, LDPTraceSynthesizer(
            LDPTraceConfig(epsilon=2.0, seed=0)
        ).run(data)

    def test_is_historical_release(self, release):
        _data, rel = release
        assert isinstance(rel, HistoricalRelease)
        assert all(t.start_time == 0 for t in rel.synthetic.trajectories)

    def test_same_number_of_trajectories(self, release):
        data, rel = release
        assert len(rel.synthetic) == len(data)

    def test_user_level_privacy(self, release):
        """One report per user with full epsilon: user-level LDP."""
        _data, rel = release
        assert rel.accountant.verify()
        spends = [
            rel.accountant.total_spend(uid)
            for uid in range(rel.accountant.n_users)
        ]
        assert max(spends, default=0.0) <= rel.config.epsilon + 1e-9

    def test_adjacency_respected(self, release):
        data, rel = release
        for traj in rel.synthetic.trajectories:
            for a, b in traj.transitions():
                assert data.grid.are_adjacent(a, b)

    def test_lengths_bounded(self, release):
        data, rel = release
        max_real = max(len(t) for t in data.trajectories)
        for traj in rel.synthetic.trajectories:
            assert 1 <= len(traj) <= max_real + 1

    def test_length_distribution_normalised(self, release):
        _data, rel = release
        assert rel.length_distribution.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        from repro.datasets.synthetic import make_random_walks

        data = make_random_walks(k=4, n_streams=100, n_timestamps=20, seed=2)
        a = LDPTraceSynthesizer(LDPTraceConfig(seed=3)).run(data)
        b = LDPTraceSynthesizer(LDPTraceConfig(seed=3)).run(data)
        assert [t.cells for t in a.synthetic.trajectories] == [
            t.cells for t in b.synthetic.trajectories
        ]


class TestModelQuality:
    def test_recovers_lane_structure(self):
        """On deterministic lanes with generous budget, trips look lane-like."""
        from repro.datasets.synthetic import make_lane_stream

        data = make_lane_stream(k=4, n_streams=1200, n_timestamps=25, seed=0)
        rel = LDPTraceSynthesizer(LDPTraceConfig(epsilon=6.0, seed=0)).run(data)
        right = left = 0
        for traj in rel.synthetic.trajectories:
            for a, b in traj.transitions():
                ra, ca = data.grid.cell_to_rowcol(a)
                rb, cb = data.grid.cell_to_rowcol(b)
                if ra != 0 or rb != 0:
                    continue
                if cb == ca + 1:
                    right += 1
                elif cb == ca - 1:
                    left += 1
        assert right > 2 * max(left, 1)

    def test_historical_metrics_reasonable(self):
        """A generous-budget release should preserve trip structure better
        than a uniform random baseline would."""
        from repro.datasets.synthetic import make_random_walks
        from repro.metrics.length import length_error
        from repro.metrics.divergence import LN2

        data = make_random_walks(k=5, n_streams=600, n_timestamps=30, seed=4)
        rel = LDPTraceSynthesizer(LDPTraceConfig(epsilon=4.0, seed=0)).run(data)
        assert length_error(data, rel.synthetic) < 0.6 * LN2


class TestEdgeCases:
    def test_empty_dataset(self, grid4):
        from repro.stream.stream import StreamDataset

        data = StreamDataset(grid4, [], n_timestamps=5)
        rel = LDPTraceSynthesizer(LDPTraceConfig(seed=0)).run(data)
        assert len(rel.synthetic) == 0

    def test_single_point_trajectories(self, grid4):
        from repro.geo.trajectory import CellTrajectory
        from repro.stream.stream import StreamDataset

        data = StreamDataset(
            grid4,
            [CellTrajectory(0, [i % 16], user_id=i) for i in range(50)],
            n_timestamps=3,
        )
        rel = LDPTraceSynthesizer(LDPTraceConfig(seed=0)).run(data)
        assert len(rel.synthetic) == 50
        assert rel.accountant.verify()
