"""Tests for the generic LDP-IDS histogram stream publisher."""

import numpy as np
import pytest

from repro.baselines.histogram import HistogramRun, HistogramStreamPublisher
from repro.baselines.ldp_ids import LdpIdsConfig
from repro.exceptions import ConfigurationError


def constant_stream(n_users=200, d=5, horizon=20, hot=0):
    """Every user reports the same value at every timestamp."""
    return [[(u, hot) for u in range(n_users)] for _ in range(horizon)]


def shifting_stream(n_users=200, d=5, horizon=20, shift_at=10):
    """Value 0 dominates early, value d-1 dominates late."""
    stream = []
    for t in range(horizon):
        hot = 0 if t < shift_at else d - 1
        stream.append([(u, hot) for u in range(n_users)])
    return stream


@pytest.mark.parametrize("strategy", ["lbd", "lba", "lpd", "lpa"])
class TestAllStrategies:
    def test_privacy_holds(self, strategy):
        pub = HistogramStreamPublisher(
            5, LdpIdsConfig(epsilon=1.0, w=4, strategy=strategy, seed=0)
        )
        run = pub.run(constant_stream())
        assert run.accountant.verify(), run.accountant.summary()

    def test_release_every_timestamp(self, strategy):
        pub = HistogramStreamPublisher(
            5, LdpIdsConfig(epsilon=1.0, w=4, strategy=strategy, seed=0)
        )
        run = pub.run(constant_stream(horizon=15))
        assert len(run.releases) == 15
        assert run.frequency_matrix().shape == (15, 5)

    def test_recovers_dominant_value(self, strategy):
        pub = HistogramStreamPublisher(
            4, LdpIdsConfig(epsilon=2.0, w=4, strategy=strategy, seed=0)
        )
        run = pub.run(constant_stream(n_users=400, d=4, hot=2))
        final = run.releases[-1].frequencies
        assert int(np.argmax(final)) == 2

    def test_approximation_happens_on_steady_streams(self, strategy):
        """A constant stream should mostly re-release, not re-publish."""
        pub = HistogramStreamPublisher(
            4, LdpIdsConfig(epsilon=1.0, w=5, strategy=strategy, seed=0)
        )
        run = pub.run(constant_stream(n_users=300, horizon=30))
        assert run.n_published < 30

    def test_empty_timestamps_survive(self, strategy):
        stream = [[] for _ in range(10)]
        pub = HistogramStreamPublisher(
            4, LdpIdsConfig(epsilon=1.0, w=3, strategy=strategy, seed=0)
        )
        run = pub.run(stream)
        assert len(run.releases) == 10
        assert all(r.n_reporters == 0 for r in run.releases)


class TestDistributionShift:
    def test_tracks_shift(self):
        """After the shift the release must move to the new hot value."""
        pub = HistogramStreamPublisher(
            5, LdpIdsConfig(epsilon=2.0, w=4, strategy="lbd", seed=0)
        )
        run = pub.run(shifting_stream(n_users=400, horizon=24, shift_at=12))
        early = run.releases[10].frequencies
        late = run.releases[-1].frequencies
        assert int(np.argmax(early)) == 0
        assert int(np.argmax(late)) == 4

    def test_shift_triggers_publication(self):
        pub = HistogramStreamPublisher(
            5, LdpIdsConfig(epsilon=2.0, w=4, strategy="lba", seed=0)
        )
        run = pub.run(shifting_stream(n_users=400, horizon=24, shift_at=12))
        # At least one publication in the few timestamps after the shift.
        assert any(r.published for r in run.releases[12:16])


class TestValidation:
    def test_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            HistogramStreamPublisher(0, LdpIdsConfig())

    def test_empty_stream(self):
        pub = HistogramStreamPublisher(3, LdpIdsConfig(seed=0))
        run = pub.run([])
        assert isinstance(run, HistogramRun)
        assert run.releases == []

    def test_deterministic_given_seed(self):
        cfg = LdpIdsConfig(epsilon=1.0, w=4, strategy="lpd", seed=9)
        a = HistogramStreamPublisher(4, cfg).run(constant_stream(horizon=10))
        b = HistogramStreamPublisher(4, cfg).run(constant_stream(horizon=10))
        assert np.array_equal(a.frequency_matrix(), b.frequency_matrix())
