"""Tests for JSD and KL helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.divergence import (
    LN2,
    jensen_shannon_divergence,
    jsd_from_counts,
    kl_divergence,
)

prob_vec = st.lists(st.floats(0.0, 10.0), min_size=2, max_size=10).filter(
    lambda v: sum(v) > 0
)


class TestJSD:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0)

    def test_disjoint_is_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon_divergence(p, q) == pytest.approx(LN2)

    def test_unnormalised_counts_accepted(self):
        assert jensen_shannon_divergence(
            np.array([2.0, 2.0]), np.array([500.0, 500.0])
        ) == pytest.approx(0.0)

    def test_zero_vector_treated_uniform(self):
        p = np.zeros(4)
        q = np.full(4, 0.25)
        assert jensen_shannon_divergence(p, q) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence(np.ones(2), np.ones(3))

    @given(p=prob_vec, q=prob_vec)
    @settings(max_examples=60)
    def test_bounded_and_symmetric(self, p, q):
        n = max(len(p), len(q))
        p = np.asarray(p + [0.0] * (n - len(p)))
        q = np.asarray(q + [0.0] * (n - len(q)))
        d1 = jensen_shannon_divergence(p, q)
        d2 = jensen_shannon_divergence(q, p)
        assert 0.0 <= d1 <= LN2 + 1e-9
        assert d1 == pytest.approx(d2)

    @given(p=prob_vec)
    @settings(max_examples=30)
    def test_self_divergence_zero(self, p):
        arr = np.asarray(p)
        assert jensen_shannon_divergence(arr, arr) == pytest.approx(0.0, abs=1e-12)


class TestKL:
    def test_zero_p_entries_ignored(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(np.log(2.0))

    def test_identical_zero(self):
        p = np.array([0.5, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)


class TestSparseCounts:
    def test_matching_dicts(self):
        a = {"x": 3, "y": 1}
        b = {"x": 300, "y": 100}
        assert jsd_from_counts(a, b) == pytest.approx(0.0)

    def test_disjoint_dicts(self):
        assert jsd_from_counts({"x": 1}, {"y": 1}) == pytest.approx(LN2)

    def test_empty_dicts(self):
        assert jsd_from_counts({}, {}) == 0.0

    def test_union_support(self):
        a = {(0, 1): 5}
        b = {(0, 1): 5, (1, 2): 5}
        d = jsd_from_counts(a, b)
        assert 0.0 < d < LN2
