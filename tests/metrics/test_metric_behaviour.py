"""Behavioural tests: metrics must order synthetic quality sensibly."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_random_walks
from repro.geo.trajectory import CellTrajectory
from repro.metrics.registry import evaluate_all
from repro.stream.stream import StreamDataset


def blend(real: StreamDataset, noise_fraction: float, seed: int) -> StreamDataset:
    """A degraded copy: a fraction of trajectories replaced by uniform noise."""
    rng = np.random.default_rng(seed)
    out = []
    for i, traj in enumerate(real.trajectories):
        if rng.random() < noise_fraction:
            cells = [int(rng.integers(0, real.grid.n_cells))]
            for _ in range(len(traj) - 1):
                nbrs = real.grid.neighbor_lists[cells[-1]]
                cells.append(int(nbrs[rng.integers(0, len(nbrs))]))
            out.append(CellTrajectory(traj.start_time, cells, user_id=i))
        else:
            out.append(
                CellTrajectory(traj.start_time, list(traj.cells), user_id=i)
            )
    return StreamDataset(real.grid, out, n_timestamps=real.n_timestamps)


@pytest.fixture(scope="module")
def real():
    return make_random_walks(k=5, n_streams=300, n_timestamps=30, seed=0)


class TestQualityOrdering:
    """More corruption must never look better, for every error metric."""

    @pytest.fixture(scope="class")
    def graded_scores(self, real):
        scores = []
        for frac in (0.0, 0.5, 1.0):
            syn = blend(real, frac, seed=1)
            scores.append(
                evaluate_all(real, syn, phi=5, rng=0)
            )
        return scores

    @pytest.mark.parametrize(
        "metric", ["density_error", "query_error", "transition_error"]
    )
    def test_error_metrics_monotone(self, graded_scores, metric):
        clean, half, full = (s[metric] for s in graded_scores)
        assert clean <= half + 1e-9
        assert half <= full + 0.05  # allow metric noise between close grades

    @pytest.mark.parametrize("metric", ["hotspot_ndcg", "pattern_f1", "kendall_tau"])
    def test_gain_metrics_monotone(self, graded_scores, metric):
        clean, half, full = (s[metric] for s in graded_scores)
        assert clean >= half - 1e-9
        assert half >= full - 0.1

    def test_clean_is_perfect(self, graded_scores):
        clean = graded_scores[0]
        assert clean["density_error"] == pytest.approx(0.0)
        assert clean["kendall_tau"] == pytest.approx(1.0)


class TestDeterminism:
    def test_evaluate_all_deterministic_under_seed(self, real):
        syn = blend(real, 0.5, seed=2)
        a = evaluate_all(real, syn, phi=5, rng=42)
        b = evaluate_all(real, syn, phi=5, rng=42)
        assert a == b

    def test_different_seed_changes_sampled_metrics_only(self, real):
        syn = blend(real, 0.5, seed=2)
        a = evaluate_all(real, syn, phi=5, rng=1)
        b = evaluate_all(real, syn, phi=5, rng=2)
        # Deterministic metrics must be identical regardless of rng.
        for metric in ("density_error", "transition_error", "kendall_tau",
                       "trip_error", "length_error"):
            assert a[metric] == b[metric], metric
