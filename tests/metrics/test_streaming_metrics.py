"""Tests for the streaming metrics: density, query, hotspot, transition, pattern."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_random_walks
from repro.geo.trajectory import CellTrajectory
from repro.metrics.density import density_error, evaluation_timestamps
from repro.metrics.hotspot import _ndcg_at, hotspot_ndcg
from repro.metrics.pattern import f1_of_sets, mine_patterns, pattern_f1
from repro.metrics.query import query_error
from repro.metrics.transition import transition_error
from repro.stream.stream import StreamDataset


@pytest.fixture
def pair():
    """Two independent draws of the same random-walk process."""
    real = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=1)
    same = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=1)
    other = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=2)
    return real, same, other


class TestEvaluationTimestamps:
    def test_only_active_timestamps(self, walk_data):
        ts = evaluation_timestamps(walk_data)
        active = walk_data.active_counts()
        assert all(active[t] > 0 for t in ts)

    def test_subsampling_cap(self, walk_data):
        ts = evaluation_timestamps(walk_data, max_eval=5)
        assert len(ts) <= 5

    def test_empty_dataset(self, grid4):
        ds = StreamDataset(grid4, [], n_timestamps=10)
        assert evaluation_timestamps(ds).size == 0


class TestDensityError:
    def test_identical_zero(self, pair):
        real, same, _ = pair
        assert density_error(real, same) == pytest.approx(0.0)

    def test_different_positive(self, pair):
        real, _, other = pair
        assert density_error(real, other) > 0.0

    def test_orders_similarity(self, pair, walk_data):
        """A same-process draw must score better than unrelated data."""
        real, _, other = pair
        concentrated = StreamDataset(
            real.grid,
            [CellTrajectory(0, [0] * 30, user_id=i) for i in range(200)],
            n_timestamps=30,
        )
        assert density_error(real, other) < density_error(real, concentrated)

    def test_empty_real(self, grid4):
        empty = StreamDataset(grid4, [], n_timestamps=5)
        assert density_error(empty, empty) == 0.0


class TestQueryError:
    def test_identical_zero(self, pair):
        real, same, _ = pair
        assert query_error(real, same, phi=5, rng=0) == pytest.approx(0.0)

    def test_empty_synthetic_high_error(self, pair, grid4):
        real, _, _ = pair
        empty = StreamDataset(real.grid, [], n_timestamps=real.n_timestamps)
        err = query_error(real, empty, phi=5, rng=0)
        assert err > 0.5

    def test_deterministic_given_rng(self, pair):
        real, _, other = pair
        e1 = query_error(real, other, phi=5, rng=7)
        e2 = query_error(real, other, phi=5, rng=7)
        assert e1 == e2

    def test_phi_clipped_to_horizon(self, pair):
        real, same, _ = pair
        err = query_error(real, same, phi=10_000, rng=0)
        assert err == pytest.approx(0.0)


class TestHotspotNDCG:
    def test_identical_is_one(self, pair):
        real, same, _ = pair
        assert hotspot_ndcg(real, same, phi=5, rng=0) == pytest.approx(1.0)

    def test_bounded(self, pair):
        real, _, other = pair
        score = hotspot_ndcg(real, other, phi=5, rng=0)
        assert 0.0 <= score <= 1.0

    def test_ndcg_perfect_ranking(self):
        real = np.array([10.0, 5.0, 1.0, 0.0])
        assert _ndcg_at(real, real, nh=3) == pytest.approx(1.0)

    def test_ndcg_wrong_ranking_lower(self):
        real = np.array([10.0, 5.0, 1.0, 0.0])
        syn = np.array([0.0, 1.0, 5.0, 10.0])
        assert _ndcg_at(real, syn, nh=3) < 1.0

    def test_ndcg_no_real_hotspots(self):
        assert _ndcg_at(np.zeros(4), np.ones(4), nh=3) == 1.0


class TestTransitionError:
    def test_identical_zero(self, pair):
        real, same, _ = pair
        assert transition_error(real, same) == pytest.approx(0.0)

    def test_reversed_flows_high(self):
        """Opposite movement directions must be heavily penalised."""
        from repro.datasets.synthetic import make_lane_stream

        lane = make_lane_stream(k=5, n_streams=100, n_timestamps=20, seed=0)
        # Reverse every trajectory: right-to-left flows.
        reversed_trajs = [
            CellTrajectory(t.start_time, list(reversed(t.cells)), user_id=t.user_id)
            for t in lane.trajectories
        ]
        rev = StreamDataset(lane.grid, reversed_trajs, n_timestamps=20)
        assert transition_error(lane, rev) > 0.5

    def test_skips_t0(self, grid4):
        ds = StreamDataset(
            grid4, [CellTrajectory(0, [0], user_id=0)], n_timestamps=2
        )
        assert transition_error(ds, ds) == 0.0


class TestPatternMining:
    def test_mine_patterns_contents(self, grid4):
        ds = StreamDataset(
            grid4,
            [CellTrajectory(0, [0, 1, 2], user_id=0)],
            n_timestamps=5,
        )
        patterns = mine_patterns(ds, 0, 2, top_n=10, max_len=3)
        assert (0, 1) in patterns
        assert (1, 2) in patterns
        assert (0, 1, 2) in patterns

    def test_window_restricts_patterns(self, grid4):
        ds = StreamDataset(
            grid4,
            [CellTrajectory(0, [0, 1, 2, 6], user_id=0)],
            n_timestamps=6,
        )
        patterns = mine_patterns(ds, 0, 1, top_n=10, max_len=4)
        assert patterns == {(0, 1)}

    def test_top_n_cap(self, walk_data):
        patterns = mine_patterns(walk_data, 0, 20, top_n=7, max_len=3)
        assert len(patterns) <= 7

    def test_f1_edge_cases(self):
        assert f1_of_sets(set(), set()) == 1.0
        assert f1_of_sets({1}, set()) == 0.0
        assert f1_of_sets({1, 2}, {1, 2}) == 1.0
        assert f1_of_sets({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_pattern_f1_identical(self, pair):
        real, same, _ = pair
        assert pattern_f1(real, same, phi=8, n_ranges=5, rng=0) == pytest.approx(1.0)

    def test_pattern_f1_bounded(self, pair):
        real, _, other = pair
        score = pattern_f1(real, other, phi=8, n_ranges=5, rng=0)
        assert 0.0 <= score <= 1.0
