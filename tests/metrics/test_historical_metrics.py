"""Tests for the historical metrics: kendall-tau, trip error, length error."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_lane_stream, make_random_walks
from repro.geo.trajectory import CellTrajectory
from repro.metrics.divergence import LN2
from repro.metrics.kendall import kendall_tau
from repro.metrics.length import length_error, travel_distances
from repro.metrics.trip import trip_distribution, trip_error
from repro.stream.stream import StreamDataset


@pytest.fixture
def pair():
    real = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=1)
    same = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=1)
    other = make_random_walks(k=5, n_streams=200, n_timestamps=30, seed=2)
    return real, same, other


class TestKendallTau:
    def test_identical_is_one(self, pair):
        real, same, _ = pair
        assert kendall_tau(real, same) == pytest.approx(1.0)

    def test_same_process_high(self, pair):
        real, _, other = pair
        assert kendall_tau(real, other) > 0.5

    def test_reversed_popularity_negative(self, grid4):
        """Anti-correlated popularity must give negative tau."""
        heavy_low = [
            CellTrajectory(0, [c % 4], user_id=i)
            for i, c in enumerate(np.repeat(np.arange(16), np.arange(16, 0, -1)))
        ]
        heavy_high = [
            CellTrajectory(0, [c], user_id=i)
            for i, c in enumerate(np.repeat(np.arange(16), np.arange(1, 17)))
        ]
        a = StreamDataset(grid4, heavy_low, n_timestamps=3)
        b = StreamDataset(grid4, heavy_high, n_timestamps=3)
        assert kendall_tau(a, b) < 0.0

    def test_constant_counts_zero(self, grid4):
        empty = StreamDataset(grid4, [], n_timestamps=3)
        assert kendall_tau(empty, empty) == 0.0


class TestTripError:
    def test_identical_zero(self, pair):
        real, same, _ = pair
        assert trip_error(real, same) == pytest.approx(0.0)

    def test_distribution_contents(self, grid4):
        ds = StreamDataset(
            grid4,
            [
                CellTrajectory(0, [0, 1, 2], user_id=0),
                CellTrajectory(1, [0, 1, 2], user_id=1),
                CellTrajectory(0, [5], user_id=2),
            ],
            n_timestamps=5,
        )
        dist = trip_distribution(ds)
        assert dist[(0, 2)] == 2
        assert dist[(5, 5)] == 1

    def test_disjoint_trips_max(self, grid4):
        a = StreamDataset(grid4, [CellTrajectory(0, [0, 1], user_id=0)], n_timestamps=3)
        b = StreamDataset(grid4, [CellTrajectory(0, [14, 15], user_id=0)], n_timestamps=3)
        assert trip_error(a, b) == pytest.approx(LN2)


class TestLengthError:
    def test_identical_zero(self, pair):
        real, same, _ = pair
        assert length_error(real, same) == pytest.approx(0.0)

    def test_travel_distances_shape(self, pair):
        real, _, _ = pair
        d = travel_distances(real)
        assert d.shape == (len(real),)
        assert np.all(d >= 0)

    def test_never_terminating_syn_near_ln2(self):
        """Synthetic streams spanning the whole horizon have distances far
        beyond real trips — the paper's 0.6931 signature."""
        real = make_lane_stream(k=5, n_streams=100, n_timestamps=40, seed=0)
        forever = StreamDataset(
            real.grid,
            [
                CellTrajectory(0, [(i + t) % 5 for t in range(40)], user_id=i)
                for i in range(100)
            ],
            n_timestamps=40,
        )
        assert length_error(real, forever) > 0.5

    def test_both_empty(self, grid4):
        empty = StreamDataset(grid4, [], n_timestamps=3)
        assert length_error(empty, empty) == 0.0

    def test_all_stationary(self, grid4):
        ds = StreamDataset(
            grid4, [CellTrajectory(0, [3, 3, 3], user_id=0)], n_timestamps=4
        )
        assert length_error(ds, ds) == 0.0


class TestRegistryEvaluateAll:
    def test_all_metrics_present(self, pair):
        from repro.metrics.registry import ALL_METRICS, evaluate_all

        real, _, other = pair
        scores = evaluate_all(real, other, phi=5, rng=0)
        assert set(scores) == set(ALL_METRICS)
        for v in scores.values():
            assert np.isfinite(v)

    def test_subset_selection(self, pair):
        from repro.metrics.registry import evaluate_all

        real, same, _ = pair
        scores = evaluate_all(real, same, metrics=("kendall_tau",), rng=0)
        assert list(scores) == ["kendall_tau"]

    def test_unknown_metric_rejected(self, pair):
        from repro.metrics.registry import evaluate_all

        real, same, _ = pair
        with pytest.raises(ValueError):
            evaluate_all(real, same, metrics=("bogus",))

    def test_perfect_synthesis_scores(self, pair):
        """Identity 'synthesis' must achieve the ideal score on every metric."""
        from repro.metrics.registry import HIGHER_IS_BETTER, evaluate_all

        real, same, _ = pair
        scores = evaluate_all(real, same, phi=5, rng=0)
        for name, v in scores.items():
            if name in HIGHER_IS_BETTER:
                assert v == pytest.approx(1.0), name
            else:
                assert v == pytest.approx(0.0, abs=1e-9), name
