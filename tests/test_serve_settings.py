"""ServeSettings ⇄ ServiceSpec wiring (and its anti-drift pins).

``ServeSettings`` used to duplicate the service-layer knobs as loose
fields; it now *derives* them from a :class:`ServiceSpec`, so validation
lives in one place and every CLI-exposed service flag provably reaches
the running ingestion service.  The drift test mirrors the generated
flag-group pins in ``tests/api/test_specs.py``: adding a CLI-exposed
ServiceSpec field without mirroring it here fails loudly.
"""

from __future__ import annotations

import pytest

from repro.api.specs import ServiceSpec, iter_cli_fields
from repro.core.retrasyn import RetraSynConfig
from repro.exceptions import ConfigurationError
from repro.serve import ServeSettings, serve_dataset


class TestServiceLayerWiring:
    def test_defaults_resolve_to_an_ingest_service_spec(self):
        settings = ServeSettings()
        assert isinstance(settings.service, ServiceSpec)
        assert settings.service.transport == "ingest"
        assert settings.queue_size == ServiceSpec().queue_size
        assert settings.ingest_consumers == 1

    def test_flat_overrides_fold_into_the_spec(self):
        settings = ServeSettings(
            queue_size=7, max_lateness=2, checkpoint_every=3,
            checkpoint_path="ck.pkl", ingest_consumers=4,
        )
        assert settings.service.queue_size == 7
        assert settings.service.max_lateness == 2
        assert settings.service.checkpoint_every == 3
        assert settings.service.checkpoint_path == "ck.pkl"
        assert settings.service.ingest_consumers == 4

    def test_spec_values_mirror_back_onto_flat_fields(self):
        spec = ServiceSpec(
            transport="ingest", queue_size=33, max_lateness=1,
            ingest_consumers=2,
        )
        settings = ServeSettings(service=spec)
        assert settings.queue_size == 33
        assert settings.max_lateness == 1
        assert settings.ingest_consumers == 2
        assert settings.service == spec

    def test_flat_override_wins_over_the_provided_spec(self):
        spec = ServiceSpec(transport="ingest", queue_size=33)
        settings = ServeSettings(service=spec, queue_size=44)
        assert settings.service.queue_size == 44
        assert settings.queue_size == 44

    def test_transport_is_forced_to_ingest(self):
        settings = ServeSettings(service=ServiceSpec(transport="direct"))
        assert settings.service.transport == "ingest"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queue_size=0),
            dict(max_lateness=-1),
            dict(checkpoint_every=-1),
            dict(ingest_consumers=0),
        ],
    )
    def test_validation_delegates_to_service_spec(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeSettings(**kwargs)


class TestCliFlagDrift:
    def test_every_service_cli_flag_is_representable(self):
        """Anti-drift: each CLI-exposed ServiceSpec field must round-trip
        through a flat ServeSettings kwarg of the same name."""
        probes = {
            "queue_size": 123,
            "max_lateness": 2,
            "checkpoint_path": "probe.pkl",
            "checkpoint_every": 5,
            "checkpoint_keep": 2,
            "drain_deadline": 9.5,
            "ingest_consumers": 3,
        }
        cli_fields = [
            f.name for _cls, f in iter_cli_fields(spec_classes=(ServiceSpec,))
        ]
        assert set(cli_fields) == set(probes), (
            "ServiceSpec grew/lost a CLI flag; add the matching Optional "
            "attribute on ServeSettings (the mirror tuple is derived via "
            "cli_field_names) and extend this probe table"
        )
        for name in cli_fields:
            settings = ServeSettings(**{name: probes[name]})
            assert getattr(settings.service, name) == probes[name], name
            assert getattr(settings, name) == probes[name], name

    def test_unset_mirrors_resolve_to_concrete_spec_values(self):
        """``None`` is the *unset* marker of the flat mirrors, never a
        value: after construction every mirror reads the resolved spec
        field, so ``checkpoint_every is None`` cannot leak into the
        service layer (where ``if checkpoint_every:`` and arithmetic on
        it would silently misbehave)."""
        settings = ServeSettings()
        for name in ("queue_size", "max_lateness", "checkpoint_every",
                     "checkpoint_keep", "drain_deadline",
                     "ingest_consumers"):
            mirrored = getattr(settings, name)
            assert mirrored is not None, name
            assert mirrored == getattr(ServiceSpec(), name), name

    def test_explicit_none_cannot_reach_the_spec_layer(self):
        """A literal ``None`` passed where the spec wants an int must die
        in ServiceSpec validation, not flow through ``replace()``."""
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            ServeSettings(service=ServiceSpec(checkpoint_every=None))


class TestServeDatasetHonorsTheSpec:
    def test_multi_consumer_serve_matches_single_consumer(self, walk_data):
        """End to end through serve_dataset: partitioned assembly must be
        invisible in the synthetic output."""

        def run(consumers):
            settings = ServeSettings(
                config=RetraSynConfig(epsilon=1.0, w=5, seed=11),
                max_lateness=1, shuffle=True, shuffle_seed=3,
                ingest_consumers=consumers,
            )
            return serve_dataset(walk_data, settings)

        ref, multi = run(1), run(3)
        assert ref.stats.n_reports_processed == multi.stats.n_reports_processed
        assert [
            (s.start_time, list(s.cells)) for s in ref.run.synthetic
        ] == [(s.start_time, list(s.cells)) for s in multi.run.synthetic]
