"""Engine behaviour of ``repro lint``: suppressions, baseline, paths."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import Baseline, BaselineEntry, all_rules, run_lint
from repro.analysis.lint.baseline import BaselineError
from repro.analysis.lint.engine import package_path


BAD = "import random\nx = random.random()\n"


def write_tree(tmp_path: Path, files: dict) -> None:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


class TestPackagePath:
    def test_anchors_at_last_repro_component(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "online.py"
        assert package_path(path, tmp_path) == "core/online.py"

    def test_fixture_tree_anchors_at_scan_root(self, tmp_path):
        path = tmp_path / "core" / "x.py"
        assert package_path(path, tmp_path) == "core/x.py"

    def test_unrelated_path_falls_back_to_name(self, tmp_path):
        other = tmp_path / "elsewhere" / "x.py"
        assert package_path(other, tmp_path / "scanned") == "x.py"


class TestSuppressions:
    def test_same_line_marker(self, tmp_path):
        write_tree(tmp_path, {
            "core/x.py": (
                "import random\n"
                "x = random.random()  # repro-lint: disable=rng-global-state\n"
            ),
        })
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert result.ok
        assert result.suppressed == 1

    def test_line_above_marker(self, tmp_path):
        write_tree(tmp_path, {
            "core/x.py": (
                "import random\n"
                "# repro-lint: disable=rng-global-state\n"
                "x = random.random()\n"
            ),
        })
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert result.ok
        assert result.suppressed == 1

    def test_file_level_marker(self, tmp_path):
        write_tree(tmp_path, {
            "core/x.py": (
                "# repro-lint: disable-file=rng-global-state\n"
                "import random\n"
                "x = random.random()\n"
                "y = random.random()\n"
            ),
        })
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert result.ok
        assert result.suppressed == 2

    def test_marker_for_other_rule_does_not_suppress(self, tmp_path):
        write_tree(tmp_path, {
            "core/x.py": (
                "import random\n"
                "x = random.random()  # repro-lint: disable=wall-clock\n"
            ),
        })
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert [f.rule for f in result.findings] == ["rng-global-state"]
        assert result.suppressed == 0


class TestBaseline:
    def _findings(self, tmp_path, files=None):
        write_tree(tmp_path, files or {"core/x.py": BAD})
        return run_lint(
            [tmp_path], rules=all_rules(["rng-global-state"])
        ).findings

    def test_round_trip_absorbs_everything(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings, justification="seeded later")
        target = tmp_path / "baseline.json"
        baseline.save(target)
        reloaded = Baseline.load(target)
        result = run_lint(
            [tmp_path],
            rules=all_rules(["rng-global-state"]),
            baseline=reloaded,
        )
        assert result.ok
        assert result.baselined == len(findings)
        assert not result.stale_baseline

    def test_entries_are_content_addressed(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings)
        # Unrelated lines above shift line numbers; the entry still matches.
        write_tree(tmp_path, {
            "core/x.py": "import random\nPAD = 1\nx = random.random()\n"
        })
        result = run_lint(
            [tmp_path], rules=all_rules(["rng-global-state"]), baseline=baseline
        )
        assert result.ok
        assert result.baselined == 1

    def test_changed_line_expires_entry_and_reports_stale(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings)
        write_tree(tmp_path, {
            "core/x.py": "import random\ny = random.randint(0, 3)\n"
        })
        result = run_lint(
            [tmp_path], rules=all_rules(["rng-global-state"]), baseline=baseline
        )
        # The new line is a fresh finding; the old entry is stale.
        assert [f.rule for f in result.findings] == ["rng-global-state"]
        assert result.baselined == 0
        assert len(result.stale_baseline) == 1
        assert "x = random.random()" in result.stale_baseline[0]

    def test_count_caps_absorption(self, tmp_path):
        write_tree(tmp_path, {
            "core/x.py": (
                "import random\n"
                "x = random.random()\n"
                "x = random.random()\n"
            ),
        })
        baseline = Baseline([
            BaselineEntry(
                rule="rng-global-state",
                path="core/x.py",
                code="x = random.random()",
                count=1,
            )
        ])
        result = run_lint(
            [tmp_path], rules=all_rules(["rng-global-state"]), baseline=baseline
        )
        assert len(result.findings) == 1
        assert result.baselined == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(BaselineError):
            Baseline.load(bad)
        bad.write_text('{"version": 1, "entries": [{"rule": "x"}]}')
        with pytest.raises(BaselineError):
            Baseline.load(bad)
        bad.write_text(
            '{"version": 1, "entries": [{"rule": "x", "path": "p", '
            '"code": "c", "count": 0}]}'
        )
        with pytest.raises(BaselineError):
            Baseline.load(bad)


class TestParseErrors:
    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        write_tree(tmp_path, {"core/broken.py": "def f(:\n"})
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert [f.rule for f in result.findings] == ["parse-error"]

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        write_tree(tmp_path, {
            "core/b.py": BAD,
            "core/a.py": "import random\n\n\nx = random.random()\n",
        })
        result = run_lint([tmp_path], rules=all_rules(["rng-global-state"]))
        assert [f.pkg_path for f in result.findings] == [
            "core/a.py", "core/b.py"
        ]
