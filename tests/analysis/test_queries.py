"""Tests for the downstream query layer."""

import numpy as np
import pytest

from repro.analysis.queries import TrajectoryAnalyzer
from repro.exceptions import ConfigurationError
from repro.geo.point import BoundingBox
from repro.geo.trajectory import CellTrajectory
from repro.stream.stream import StreamDataset


@pytest.fixture
def analyzer(grid4):
    """Three streams with known geometry on a 4x4 unit grid."""
    ds = StreamDataset(
        grid4,
        [
            CellTrajectory(0, [0, 1, 2], user_id=0),   # bottom row eastward
            CellTrajectory(1, [5, 5], user_id=1),      # stays in cell 5
            CellTrajectory(0, [15, 15, 15, 15], user_id=2),  # top corner
        ],
        n_timestamps=5,
    )
    return TrajectoryAnalyzer(ds)


class TestCounting:
    def test_range_count_full_domain(self, analyzer):
        full = analyzer.grid.bbox
        assert analyzer.range_count(full) == 9  # total points

    def test_range_count_window(self, analyzer):
        full = analyzer.grid.bbox
        assert analyzer.range_count(full, t_from=0, t_to=0) == 2

    def test_range_count_subregion(self, analyzer):
        # Lower-left quadrant: cells 0, 1, 4, 5.
        region = BoundingBox(0.0, 0.0, 0.5, 0.5)
        # points: cell0@t0, cell1@t1, cell5@t1, cell5@t2 => 4
        assert analyzer.range_count(region) == 4

    def test_active_users(self, analyzer):
        assert analyzer.active_users(0) == 2
        assert analyzer.active_users(1) == 3
        assert analyzer.active_users(4) == 0

    def test_occupancy_series(self, analyzer):
        region = BoundingBox(0.51, 0.51, 1.0, 1.0)  # top-right quadrant
        series = analyzer.occupancy_series(region)
        assert series.tolist() == [1, 1, 1, 1, 0]

    def test_empty_region(self, analyzer):
        # Degenerate-but-valid region that contains no cell centers.
        region = BoundingBox(0.0, 0.0, 0.01, 0.01)
        assert analyzer.range_count(region) == 0


class TestHotspots:
    def test_top_k(self, analyzer):
        top = analyzer.top_k_cells(k=2)
        assert top[0] == (15, 4)  # corner cell has 4 visits
        assert top[1][1] >= top[0][1] - 4

    def test_top_k_validation(self, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.top_k_cells(k=0)

    def test_visit_share(self, analyzer):
        assert analyzer.visit_share(15) == pytest.approx(4 / 9)
        assert analyzer.visit_share(3) == 0.0

    def test_density_normalised(self, analyzer):
        d = analyzer.density(1)
        assert d.sum() == pytest.approx(1.0)
        assert d[5] == pytest.approx(1 / 3)

    def test_density_empty_timestamp_uniform(self, analyzer):
        d = analyzer.density(4)
        assert d == pytest.approx(np.full(16, 1 / 16))


class TestTrips:
    def test_trip_lengths(self, analyzer):
        assert sorted(analyzer.trip_lengths().tolist()) == [2, 3, 4]

    def test_od_matrix(self, analyzer):
        od = analyzer.od_matrix()
        assert od[0, 2] == 1
        assert od[5, 5] == 1
        assert od[15, 15] == 1
        assert od.sum() == 3

    def test_busiest_trips(self, analyzer):
        trips = analyzer.busiest_trips(k=3)
        pairs = {p for p, _c in trips}
        assert {(0, 2), (5, 5), (15, 15)} == pairs
