"""Tests for flow analysis and fidelity reports."""

import pytest

from repro.analysis.comparison import fidelity_report, format_fidelity_report
from repro.analysis.flows import FlowAnalyzer
from repro.datasets.synthetic import make_lane_stream
from repro.geo.point import BoundingBox
from repro.geo.trajectory import CellTrajectory
from repro.stream.stream import StreamDataset


@pytest.fixture
def lane_flow():
    data = make_lane_stream(k=5, n_streams=50, n_timestamps=20, seed=0)
    return data, FlowAnalyzer(data)


class TestTransitionCounts:
    def test_total_count(self, lane_flow):
        data, fa = lane_flow
        total = sum(fa.transition_counts().values())
        expected = sum(len(t) - 1 for t in data.trajectories)
        assert total == expected

    def test_window_restriction(self, lane_flow):
        _data, fa = lane_flow
        early = sum(fa.transition_counts(0, 5).values())
        everything = sum(fa.transition_counts().values())
        assert 0 < early < everything


class TestFlows:
    def test_flow_between_left_and_right(self, lane_flow):
        data, fa = lane_flow
        left = BoundingBox(0.0, 0.0, 0.5, 1.0)
        right = BoundingBox(0.5, 0.0, 1.0, 1.0)
        ltr = fa.flow_between(left, right)
        rtl = fa.flow_between(right, left)
        assert ltr > 0
        assert rtl == 0  # lanes only flow eastward

    def test_dominant_direction_east(self, lane_flow):
        _data, fa = lane_flow
        assert fa.dominant_direction() == "east"

    def test_net_flow_sign(self, lane_flow):
        data, fa = lane_flow
        right = BoundingBox(0.6, 0.0, 1.0, 1.0)
        total_net = sum(
            fa.net_flow(right, t) for t in range(1, data.n_timestamps)
        )
        assert total_net > 0  # users accumulate on the right

    def test_stay_ratio(self, grid4):
        ds = StreamDataset(
            grid4,
            [CellTrajectory(0, [5, 5, 6], user_id=0)],
            n_timestamps=4,
        )
        fa = FlowAnalyzer(ds)
        assert fa.stay_ratio() == pytest.approx(0.5)

    def test_stay_ratio_empty(self, grid4):
        ds = StreamDataset(grid4, [], n_timestamps=4)
        assert FlowAnalyzer(ds).stay_ratio() == 0.0

    def test_flow_matrix_matches_counts(self, lane_flow):
        _data, fa = lane_flow
        mat = fa.flow_matrix()
        counts = fa.transition_counts()
        for (a, b), c in counts.items():
            assert mat[a, b] == c
        assert mat.sum() == sum(counts.values())

    def test_stationary_direction(self, grid4):
        ds = StreamDataset(
            grid4, [CellTrajectory(0, [5, 5], user_id=0)], n_timestamps=3
        )
        assert FlowAnalyzer(ds).dominant_direction() == "stationary"


class TestFidelityReport:
    def test_identity_report(self, walk_data):
        report = fidelity_report(walk_data, walk_data, phi=5)
        assert report["size_ratio"] == 1.0
        assert report["points_ratio"] == 1.0
        assert report["metrics"]["density_error"] == pytest.approx(0.0)
        assert report["metrics"]["kendall_tau"] == pytest.approx(1.0)

    def test_format_contains_metrics(self, walk_data):
        report = fidelity_report(walk_data, walk_data, phi=5)
        text = format_fidelity_report(report)
        assert "Fidelity report" in text
        assert "density_error" in text
        assert "kendall_tau" in text

    def test_subset_metrics(self, walk_data):
        report = fidelity_report(
            walk_data, walk_data, metrics=("trip_error",), rng=0
        )
        assert list(report["metrics"]) == ["trip_error"]
        text = format_fidelity_report(report)
        assert "trip_error" in text
        assert "density_error" not in text
