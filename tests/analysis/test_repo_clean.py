"""Tier-1 gate: the shipped tree lints clean against its own analyzer.

This is the test that makes ``repro lint`` part of the repo's contract:
every rule runs over ``src/repro`` with the committed baseline, and any
new violation — a global RNG draw in ``core/``, a lock pickled into a
checkpoint, an orphan wire verb — fails the default pytest tier, not
just the separate CI job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import Baseline, all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


@pytest.fixture(scope="module")
def result():
    if not SRC.is_dir():  # running from an installed package, not a checkout
        pytest.skip("source tree not available")
    baseline = Baseline.load(BASELINE) if BASELINE.is_file() else None
    return run_lint([SRC], rules=all_rules(), baseline=baseline)


def test_tree_has_no_findings(result):
    assert result.ok, "\n" + "\n".join(f.format() for f in result.findings)


def test_baseline_has_no_stale_entries(result):
    assert not result.stale_baseline, "\n".join(result.stale_baseline)


def test_every_baseline_entry_is_justified():
    if not BASELINE.is_file():
        pytest.skip("no committed baseline")
    for entry in Baseline.load(BASELINE).entries:
        assert entry.justification.strip(), (
            f"{entry.path}: {entry.rule}: baseline entry for "
            f"{entry.code!r} carries no justification"
        )
        assert "TODO" not in entry.justification, (
            f"{entry.path}: unfinished justification"
        )


def test_whole_tree_was_scanned(result):
    # Guards against the scan silently narrowing (path typo, glob change).
    assert result.n_files > 80
