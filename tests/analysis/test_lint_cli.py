"""Exit-code and artifact contract of the ``repro lint`` subcommand."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main


CLEAN = "import numpy as np\nrng = np.random.default_rng(7)\n"
DIRTY = "import random\nx = random.random()\n"


def make_tree(tmp_path: Path, source: str) -> Path:
    root = tmp_path / "tree"
    (root / "core").mkdir(parents=True)
    (root / "core" / "x.py").write_text(source, encoding="utf-8")
    return root


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = make_tree(tmp_path, CLEAN)
    assert main(["lint", str(root), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_location(tmp_path, capsys):
    root = make_tree(tmp_path, DIRTY)
    assert main(["lint", str(root), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "rng-global-state" in out
    assert "x.py:2" in out


def test_write_baseline_then_lint_is_clean(tmp_path, monkeypatch, capsys):
    root = make_tree(tmp_path, DIRTY)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", str(root), "--write-baseline"]) == 0
    baseline = tmp_path / "lint-baseline.json"
    assert baseline.is_file()
    assert (
        main(["lint", str(root), "--baseline", str(baseline)]) == 0
    )
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_missing_explicit_baseline_is_usage_error(tmp_path):
    root = make_tree(tmp_path, CLEAN)
    assert (
        main(["lint", str(root), "--baseline", str(tmp_path / "nope.json")])
        == 2
    )


def test_unknown_rule_is_usage_error(tmp_path):
    root = make_tree(tmp_path, CLEAN)
    assert main(["lint", str(root), "--rules", "no-such-rule"]) == 2


def test_rules_subset_runs_only_those(tmp_path, capsys):
    root = make_tree(tmp_path, DIRTY)
    assert (
        main(["lint", str(root), "--no-baseline", "--rules", "wall-clock"])
        == 0
    )


def test_list_rules_prints_catalog(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "rng-global-state", "wall-clock", "set-iteration",
        "pickle-unsafe-state", "lock-scope", "schema-orphan-verb",
        "spec-flag-drift", "metric-name",
    ):
        assert name in out


def test_json_artifact_written_for_ci(tmp_path, capsys):
    root = make_tree(tmp_path, DIRTY)
    artifact = tmp_path / "out" / "findings.json"
    code = main([
        "lint", str(root), "--no-baseline",
        "--format", "json", "--out", str(artifact),
    ])
    assert code == 1
    payload = json.loads(artifact.read_text())
    assert payload["findings"][0]["rule"] == "rng-global-state"
    assert payload["findings"][0]["pkg_path"] == "core/x.py"
    # stdout carries the same payload in --format json
    assert json.loads(capsys.readouterr().out)["n_files"] == 1
