"""Mutation-style coverage of every ``repro lint`` rule.

Each rule gets (at least) one *bad* fixture tree that must produce the
finding and one *good* twin — the same code with the violation repaired —
that must lint clean.  Fixture trees are synthetic layouts under
``tmp_path`` (``core/x.py`` etc.); :func:`package_path` anchors them at
the scan root, so the plane logic matches the real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, run_lint
from repro.analysis.lint.rules import rule_names


def lint_tree(tmp_path: Path, files: dict, only=None):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and lint it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return run_lint([tmp_path], rules=all_rules(only))


def rules_of(result):
    return [f.rule for f in result.findings]


class TestRngGlobalState:
    RULE = "rng-global-state"

    def test_stdlib_random_draw_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/draws.py": "import random\nx = random.random()\n",
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_from_import_draw_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "ldp/draws.py": "from random import shuffle\nshuffle([1, 2])\n",
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_np_random_global_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "stream/draws.py": "import numpy as np\nv = np.random.rand(3)\n",
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/draws.py": (
                "import numpy as np\nrng = np.random.default_rng()\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_seeded_generator_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/draws.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng(7)\n"
                "gen = np.random.Generator(np.random.PCG64(7))\n"
                "v = rng.normal()\n"
            ),
        }, only=[self.RULE])
        assert result.ok

    def test_other_planes_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {
            "bench/draws.py": "import random\nx = random.random()\n",
        }, only=[self.RULE])
        assert result.ok


class TestWallClock:
    RULE = "wall-clock"

    def test_perf_counter_flagged_as_warning(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/timer.py": "import time\ntic = time.perf_counter()\n",
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert result.findings[0].severity == "warning"

    def test_datetime_now_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "stream/stamp.py": (
                "from datetime import datetime\nwhen = datetime.now()\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_sleep_and_other_planes_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/waiter.py": "import time\ntime.sleep(0.1)\n",
            "obs/timer.py": "import time\ntic = time.perf_counter()\n",
        }, only=[self.RULE])
        assert result.ok


class TestSetIteration:
    RULE = "set-iteration"

    def test_for_over_set_literal_name_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/iters.py": (
                "items = {1, 2, 3}\nfor x in items:\n    print(x)\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_comprehension_over_set_call_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "ldp/iters.py": (
                "def f(values):\n    return [v for v in set(values)]\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_list_of_set_union_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/iters.py": "out = list({1} | {2})\n",
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_sorted_wrapper_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/iters.py": (
                "items = {1, 2, 3}\n"
                "for x in sorted(items):\n    print(x)\n"
                "out = [v for v in sorted(set([3, 1]))]\n"
            ),
        }, only=[self.RULE])
        assert result.ok


class TestPickleSafety:
    RULE = "pickle-unsafe-state"

    BAD = (
        "import threading\n"
        "class Curator:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )

    def test_lock_on_self_without_hooks_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path, {"core/curator.py": self.BAD}, only=[self.RULE]
        )
        assert rules_of(result) == [self.RULE]
        assert "Curator._lock" in result.findings[0].message

    def test_pool_on_self_without_hooks_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "stream/pool.py": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "class Engine:\n"
                "    def start(self):\n"
                "        self._pool = ThreadPoolExecutor(4)\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_getstate_hook_makes_it_clean(self, tmp_path):
        fixed = self.BAD + (
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state['_lock'] = None\n"
            "        return state\n"
        )
        result = lint_tree(
            tmp_path, {"core/curator.py": fixed}, only=[self.RULE]
        )
        assert result.ok

    def test_non_checkpointed_plane_exempt(self, tmp_path):
        result = lint_tree(
            tmp_path, {"obs/curator.py": self.BAD}, only=[self.RULE]
        )
        assert result.ok


class TestLockScope:
    RULE = "lock-scope"

    def test_bare_acquire_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/locks.py": (
                "def f(lock):\n"
                "    lock.acquire()\n"
                "    lock.release()\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]

    def test_blocking_recv_under_lock_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "stream/coord.py": (
                "def f(self, sock):\n"
                "    with self._state_lock:\n"
                "        data = sock.recv(4)\n"
                "    return data\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "recv" in result.findings[0].message

    def test_with_lock_and_recv_outside_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "stream/coord.py": (
                "def f(self, sock):\n"
                "    data = sock.recv(4)\n"
                "    with self._state_lock:\n"
                "        self.buf = data\n"
            ),
        }, only=[self.RULE])
        assert result.ok


class TestSchemaVerbs:
    RULE = "schema-orphan-verb"

    def _schema(self, verbs):
        quoted = ", ".join(f'"{v}"' for v in verbs)
        return f"MESSAGE_TYPES = ({quoted},)\n"

    def test_orphan_verb_flagged_both_ways(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/schema.py": self._schema(["hello", "orphan"]),
            "api/client.py": (
                'def send(sock):\n'
                '    sock.send(message("hello"))\n'
                'def read(payload):\n'
                '    return loads(payload, "hello")\n'
            ),
        }, only=[self.RULE])
        messages = [f.message for f in result.findings]
        assert len(messages) == 2
        assert any("nothing encodes" in m for m in messages)
        assert any("nothing decodes" in m for m in messages)

    def test_undeclared_verb_use_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/schema.py": self._schema(["hello"]),
            "api/client.py": (
                'def send(sock):\n'
                '    sock.send(message("hello"))\n'
                '    sock.send(message("rogue"))\n'
                'def read(msg, payload):\n'
                '    if msg["type"] == "hello":\n'
                '        return loads(payload, "hello")\n'
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "'rogue'" in result.findings[0].message

    def test_consistent_registry_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/schema.py": self._schema(["hello", "bye"]),
            "api/client.py": (
                'def send(sock):\n'
                '    sock.send(message("hello"))\n'
                '    sock.send(message("bye"))\n'
                'def read(conn, payload):\n'
                '    a = recv_message(conn, expect="hello")\n'
                '    return loads(payload, "bye")\n'
            ),
        }, only=[self.RULE])
        assert result.ok

    def test_dtype_comparison_not_a_decode_site(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/schema.py": self._schema(["hello"]) + (
                'def check(arr):\n'
                '    return arr.dtype.byteorder == ">"\n'
                'def send(sock):\n'
                '    sock.send(message("hello"))\n'
                'def read(payload):\n'
                '    return loads(payload, "hello")\n'
            ),
        }, only=[self.RULE])
        assert result.ok


class TestSpecDrift:
    RULE = "spec-flag-drift"

    HEADER = (
        "from dataclasses import dataclass, field\n"
        "def _cli(flag, help, **kw):\n"
        "    return {'cli': {'flag': flag, 'help': help, **kw}}\n"
    )

    def test_unjustified_field_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {}\n"
                "@dataclass\n"
                "class FooSpec:\n"
                "    eps: float = field(\n"
                "        default=1.0, metadata=_cli('--eps', 'budget'))\n"
                "    hidden: int = 3\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "FooSpec.hidden" in result.findings[0].message

    def test_justified_field_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {'hidden': 'pinned by the paper'}\n"
                "@dataclass\n"
                "class FooSpec:\n"
                "    eps: float = field(\n"
                "        default=1.0, metadata=_cli('--eps', 'budget'))\n"
                "    hidden: int = 3\n"
            ),
        }, only=[self.RULE])
        assert result.ok

    def test_duplicate_flag_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {}\n"
                "@dataclass\n"
                "class FooSpec:\n"
                "    a: int = field(default=1, metadata=_cli('--x', 'a'))\n"
                "    b: int = field(default=2, metadata=_cli('--x', 'b'))\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "collides" in result.findings[0].message

    def test_stale_non_cli_entry_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {'ghost': 'field was deleted'}\n"
                "@dataclass\n"
                "class FooSpec:\n"
                "    a: int = field(default=1, metadata=_cli('--x', 'a'))\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "stale" in result.findings[0].message

    def test_missing_serve_mirror_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {}\n"
                "@dataclass\n"
                "class ServiceSpec:\n"
                "    queue_size: int = field(\n"
                "        default=1, metadata=_cli('--queue-size', 'bound'))\n"
            ),
            "serve.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class ServeSettings:\n"
                "    shuffle: bool = False\n"
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "queue_size" in result.findings[0].message

    def test_mirrored_serve_field_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "api/specs.py": self.HEADER + (
                "NON_CLI_FIELDS = {}\n"
                "@dataclass\n"
                "class ServiceSpec:\n"
                "    queue_size: int = field(\n"
                "        default=1, metadata=_cli('--queue-size', 'bound'))\n"
            ),
            "serve.py": (
                "from dataclasses import dataclass\n"
                "from typing import Optional\n"
                "@dataclass\n"
                "class ServeSettings:\n"
                "    queue_size: Optional[int] = None\n"
            ),
        }, only=[self.RULE])
        assert result.ok


class TestMetricNames:
    RULE = "metric-name"

    def test_bad_family_name_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/m.py": 'REGISTRY.counter("BadName", "help text")\n',
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "naming contract" in result.findings[0].message

    def test_undocumented_metric_flagged(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "API.md").write_text(
            "| `retrasyn_reports_total` | counter |\n"
        )
        result = lint_tree(tmp_path, {
            "core/m.py": (
                'REGISTRY.counter("retrasyn_reports_total", "ok")\n'
                'REGISTRY.gauge("retrasyn_mystery_depth", "undocumented")\n'
            ),
        }, only=[self.RULE])
        assert rules_of(result) == [self.RULE]
        assert "retrasyn_mystery_depth" in result.findings[0].message

    def test_documented_metrics_clean(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "API.md").write_text(
            "| `retrasyn_reports_total` | counter |\n"
        )
        result = lint_tree(tmp_path, {
            "core/m.py": 'REGISTRY.counter("retrasyn_reports_total", "ok")\n',
        }, only=[self.RULE])
        assert result.ok


class TestRuleCatalog:
    def test_at_least_seven_rules_registered(self):
        assert len(rule_names()) >= 7

    def test_every_rule_has_name_severity_description(self):
        for rule in all_rules():
            assert rule.name
            assert rule.severity in ("error", "warning")
            assert rule.description

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            all_rules(["no-such-rule"])
