"""Tests for points and bounding boxes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.geo.point import BEIJING_5TH_RING, BoundingBox, Point


class TestPoint:
    def test_coordinates(self):
        p = Point(1.5, -2.0)
        assert p.x == 1.5
        assert p.y == -2.0

    def test_iteration_unpacks(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0.0, 0.0).x = 1.0


class TestBoundingBox:
    def test_dimensions(self):
        b = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert b.width == 4.0
        assert b.height == 2.0
        assert b.area == 8.0

    def test_degenerate_raises(self):
        with pytest.raises(ConfigurationError):
            BoundingBox(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            BoundingBox(0.0, 2.0, 1.0, 1.0)

    def test_contains_interior_and_edges(self):
        b = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert b.contains(Point(0.5, 0.5))
        assert b.contains(Point(0.0, 0.0))
        assert b.contains(Point(1.0, 1.0))
        assert not b.contains(Point(1.0001, 0.5))
        assert not b.contains(Point(0.5, -0.0001))

    def test_clamp_inside_is_identity(self):
        b = BoundingBox(0.0, 0.0, 1.0, 1.0)
        p = Point(0.3, 0.7)
        assert b.clamp(p) == p

    def test_clamp_outside_projects_to_border(self):
        b = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert b.clamp(Point(2.0, -1.0)) == Point(1.0, 0.0)
        assert b.clamp(Point(-5.0, 0.5)) == Point(0.0, 0.5)

    def test_center(self):
        b = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert b.center() == Point(2.0, 1.0)

    def test_beijing_extent_is_valid(self):
        assert BEIJING_5TH_RING.width > 0
        assert BEIJING_5TH_RING.height > 0
        assert BEIJING_5TH_RING.contains(Point(116.4, 39.9))  # city center
