"""Tests for trajectory containers."""

import pytest

from repro.exceptions import DatasetError
from repro.geo.point import Point
from repro.geo.trajectory import (
    CellTrajectory,
    Trajectory,
    average_length,
    total_points,
)


class TestTrajectory:
    def test_span(self):
        t = Trajectory(3, [Point(0.1, 0.1), Point(0.2, 0.2)])
        assert len(t) == 2
        assert t.end_time == 4
        assert t.active_at(3) and t.active_at(4)
        assert not t.active_at(2) and not t.active_at(5)

    def test_point_at(self):
        t = Trajectory(1, [Point(0.0, 0.0), Point(0.5, 0.5)])
        assert t.point_at(2) == Point(0.5, 0.5)
        with pytest.raises(DatasetError):
            t.point_at(0)

    def test_empty_trajectory_end_time(self):
        t = Trajectory(5, [])
        assert t.end_time == 4
        assert not t.active_at(5)

    def test_discretize_produces_adjacent_cells(self, grid4):
        # Points jumping across the grid; snapping must repair adjacency.
        t = Trajectory(0, [Point(0.05, 0.05), Point(0.95, 0.95), Point(0.05, 0.95)])
        ct = t.discretize(grid4)
        for a, b in ct.transitions():
            assert grid4.are_adjacent(a, b)

    def test_discretize_without_snap_keeps_raw_cells(self, grid4):
        t = Trajectory(0, [Point(0.05, 0.05), Point(0.95, 0.95)])
        ct = t.discretize(grid4, snap=False)
        assert ct.cells == [0, 15]

    def test_discretize_preserves_metadata(self, grid4):
        t = Trajectory(7, [Point(0.1, 0.1)], user_id=42)
        ct = t.discretize(grid4)
        assert ct.start_time == 7
        assert ct.user_id == 42


class TestCellTrajectory:
    def test_basic_accessors(self):
        ct = CellTrajectory(2, [1, 2, 3])
        assert len(ct) == 3
        assert list(ct) == [1, 2, 3]
        assert ct.end_time == 4
        assert ct.cell_at(3) == 2
        assert ct.last_cell == 3

    def test_cell_at_out_of_span(self):
        ct = CellTrajectory(2, [1, 2])
        with pytest.raises(DatasetError):
            ct.cell_at(4)

    def test_empty_last_cell_raises(self):
        with pytest.raises(DatasetError):
            CellTrajectory(0, []).last_cell

    def test_append_and_terminate(self):
        ct = CellTrajectory(0, [1])
        ct.append(2)
        assert ct.cells == [1, 2]
        ct.terminate()
        assert ct.terminated
        with pytest.raises(DatasetError):
            ct.append(3)

    def test_transitions(self):
        ct = CellTrajectory(0, [1, 2, 2, 5])
        assert ct.transitions() == [(1, 2), (2, 2), (2, 5)]

    def test_transitions_of_singleton_empty(self):
        assert CellTrajectory(0, [3]).transitions() == []

    def test_subsequence_clipping(self):
        ct = CellTrajectory(5, [10, 11, 12, 13])
        assert ct.subsequence(6, 7) == [11, 12]
        assert ct.subsequence(0, 100) == [10, 11, 12, 13]
        assert ct.subsequence(0, 4) == []
        assert ct.subsequence(9, 20) == []

    def test_subsequence_single(self):
        ct = CellTrajectory(5, [10, 11])
        assert ct.subsequence(5, 5) == [10]


class TestAggregates:
    def test_total_points(self):
        ts = [CellTrajectory(0, [1, 2]), CellTrajectory(1, [3, 4, 5])]
        assert total_points(ts) == 5

    def test_average_length(self):
        ts = [CellTrajectory(0, [1, 2]), CellTrajectory(1, [3, 4, 5, 6])]
        assert average_length(ts) == 3.0

    def test_average_length_empty(self):
        assert average_length([]) == 0.0
