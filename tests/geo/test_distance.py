"""Tests for distance helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    cell_path_length,
    euclidean,
    haversine_km,
    path_length,
)
from repro.geo.grid import unit_grid
from repro.geo.point import Point

finite = st.floats(-100.0, 100.0, allow_nan=False)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_zero_for_same_point(self):
        assert euclidean(Point(1.2, 3.4), Point(1.2, 3.4)) == 0.0

    @given(x1=finite, y1=finite, x2=finite, y2=finite)
    @settings(max_examples=50)
    def test_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(x1=finite, y1=finite, x2=finite, y2=finite, x3=finite, y3=finite)
    @settings(max_examples=50)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


class TestHaversine:
    def test_zero_distance(self):
        p = Point(116.4, 39.9)
        assert haversine_km(p, p) == pytest.approx(0.0)

    def test_one_degree_longitude_at_equator(self):
        d = haversine_km(Point(0.0, 0.0), Point(1.0, 0.0))
        assert d == pytest.approx(111.19, rel=0.01)

    def test_beijing_to_shanghai_plausible(self):
        d = haversine_km(Point(116.40, 39.90), Point(121.47, 31.23))
        assert 1000 < d < 1200


class TestPathLength:
    def test_empty_and_singleton(self):
        assert path_length([]) == 0.0
        assert path_length([Point(0, 0)]) == 0.0

    def test_polyline(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 0)]
        assert path_length(pts) == pytest.approx(9.0)

    def test_additivity(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]
        assert path_length(pts) == pytest.approx(3.0)


class TestCellPathLength:
    def test_short_trajectories(self):
        grid = unit_grid(4)
        assert cell_path_length(grid, []) == 0.0
        assert cell_path_length(grid, [5]) == 0.0

    def test_horizontal_moves(self):
        grid = unit_grid(4)
        # Adjacent same-row cells have centers one cell-width apart.
        assert cell_path_length(grid, [0, 1, 2]) == pytest.approx(0.5)

    def test_stay_contributes_zero(self):
        grid = unit_grid(4)
        assert cell_path_length(grid, [3, 3, 3]) == 0.0

    def test_diagonal_longer_than_straight(self):
        grid = unit_grid(4)
        straight = cell_path_length(grid, [0, 1])
        diagonal = cell_path_length(grid, [0, 5])
        assert diagonal == pytest.approx(straight * math.sqrt(2))
