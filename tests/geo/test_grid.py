"""Tests for the uniform grid discretisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DomainError
from repro.geo.grid import (
    cells_to_centers,
    chebyshev_cell_distance,
    manhattan_cell_distance,
    unit_grid,
)
from repro.geo.point import BoundingBox, Point


class TestConstruction:
    def test_n_cells(self, grid4):
        assert grid4.n_cells == 16

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            unit_grid(0)

    def test_cell_dimensions(self, wide_grid):
        assert wide_grid.cell_width == pytest.approx(8.0)
        assert wide_grid.cell_height == pytest.approx(4.0)

    def test_equality_and_hash(self):
        assert unit_grid(4) == unit_grid(4)
        assert unit_grid(4) != unit_grid(5)
        assert hash(unit_grid(4)) == hash(unit_grid(4))


class TestCellIndexing:
    def test_rowcol_roundtrip(self, grid4):
        for cell in range(grid4.n_cells):
            r, c = grid4.cell_to_rowcol(cell)
            assert grid4.rowcol_to_cell(r, c) == cell

    def test_out_of_range_rowcol(self, grid4):
        with pytest.raises(DomainError):
            grid4.rowcol_to_cell(4, 0)
        with pytest.raises(DomainError):
            grid4.rowcol_to_cell(0, -1)

    def test_out_of_range_cell(self, grid4):
        with pytest.raises(DomainError):
            grid4.cell_to_rowcol(16)


class TestLocate:
    def test_corners(self, grid4):
        assert grid4.locate(Point(0.0, 0.0)) == 0
        assert grid4.locate(Point(1.0, 1.0)) == 15

    def test_cell_centers_locate_to_themselves(self, grid6):
        for cell in range(grid6.n_cells):
            assert grid6.locate(grid6.cell_center(cell)) == cell

    def test_outside_points_clamp(self, grid4):
        assert grid4.locate(Point(-5.0, -5.0)) == 0
        assert grid4.locate(Point(5.0, 5.0)) == 15

    def test_locate_many_matches_scalar(self, grid6, rng):
        xs = rng.uniform(-0.2, 1.2, 200)
        ys = rng.uniform(-0.2, 1.2, 200)
        vec = grid6.locate_many(xs, ys)
        scalar = [grid6.locate(Point(x, y)) for x, y in zip(xs, ys)]
        assert vec.tolist() == scalar

    @given(
        x=st.floats(-2.0, 3.0, allow_nan=False),
        y=st.floats(-2.0, 3.0, allow_nan=False),
        k=st.integers(1, 12),
    )
    @settings(max_examples=80)
    def test_locate_always_in_domain(self, x, y, k):
        grid = unit_grid(k)
        cell = grid.locate(Point(x, y))
        assert 0 <= cell < grid.n_cells


class TestNeighbors:
    def test_corner_has_four_neighbors_including_self(self, grid4):
        assert sorted(grid4.neighbors(0)) == [0, 1, 4, 5]

    def test_center_has_nine(self, grid4):
        cell = grid4.rowcol_to_cell(1, 1)
        assert len(grid4.neighbors(cell)) == 9

    def test_exclude_self(self, grid4):
        cell = grid4.rowcol_to_cell(1, 1)
        nbrs = grid4.neighbors(cell, include_self=False)
        assert cell not in nbrs
        assert len(nbrs) == 8

    def test_neighbor_lists_cache_is_sorted(self, grid4):
        for c, lst in enumerate(grid4.neighbor_lists):
            assert lst == sorted(grid4.neighbors(c))

    def test_adjacency_symmetry(self, grid6):
        for a in range(grid6.n_cells):
            for b in grid6.neighbors(a):
                assert grid6.are_adjacent(a, b)
                assert grid6.are_adjacent(b, a)

    def test_non_adjacent(self, grid4):
        assert not grid4.are_adjacent(0, 15)
        assert not grid4.are_adjacent(0, 2)

    def test_edge_k1_grid(self):
        grid = unit_grid(1)
        assert grid.neighbors(0) == [0]
        assert grid.are_adjacent(0, 0)


class TestSnapping:
    def test_adjacent_unchanged(self, grid4):
        assert grid4.snap_to_adjacent(0, 1) == 1
        assert grid4.snap_to_adjacent(5, 5) == 5

    def test_far_jump_projected(self, grid4):
        # 0 is (0,0); 15 is (3,3): snapping should land on (1,1) = 5.
        assert grid4.snap_to_adjacent(0, 15) == 5

    def test_horizontal_jump(self, grid4):
        # 0 -> 3 (same row, 3 columns away) snaps to 1.
        assert grid4.snap_to_adjacent(0, 3) == 1

    @given(prev=st.integers(0, 35), cur=st.integers(0, 35))
    @settings(max_examples=100)
    def test_snap_always_adjacent(self, prev, cur):
        grid = unit_grid(6)
        snapped = grid.snap_to_adjacent(prev, cur)
        assert grid.are_adjacent(prev, snapped)


class TestRegions:
    def test_full_region_contains_all_cells(self, grid4):
        cells = grid4.cells_in_region(grid4.bbox)
        assert sorted(cells) == list(range(16))

    def test_quadrant_region(self, grid4):
        region = BoundingBox(0.0, 0.0, 0.5, 0.5)
        cells = sorted(grid4.cells_in_region(region))
        assert cells == [0, 1, 4, 5]

    def test_random_region_within_bbox(self, grid6, rng):
        for _ in range(20):
            region = grid6.random_region(rng, 0.3)
            assert region.min_x >= grid6.bbox.min_x - 1e-9
            assert region.max_x <= grid6.bbox.max_x + 1e-9

    def test_random_region_full_fraction(self, grid6, rng):
        region = grid6.random_region(rng, 1.0)
        assert region.area == pytest.approx(grid6.bbox.area)

    def test_random_region_invalid_fraction(self, grid6, rng):
        with pytest.raises(ConfigurationError):
            grid6.random_region(rng, 0.0)


class TestDistances:
    def test_manhattan(self, grid4):
        assert manhattan_cell_distance(grid4, 0, 15) == 6
        assert manhattan_cell_distance(grid4, 0, 0) == 0

    def test_chebyshev(self, grid4):
        assert chebyshev_cell_distance(grid4, 0, 15) == 3
        assert chebyshev_cell_distance(grid4, 0, 5) == 1

    def test_chebyshev_one_iff_adjacent(self, grid6):
        for a in range(grid6.n_cells):
            for b in range(grid6.n_cells):
                adj = grid6.are_adjacent(a, b)
                assert adj == (chebyshev_cell_distance(grid6, a, b) <= 1)

    def test_cells_to_centers_shape(self, grid4):
        arr = cells_to_centers(grid4, [0, 5, 15])
        assert arr.shape == (3, 2)
        assert np.all(arr >= 0.0) and np.all(arr <= 1.0)
