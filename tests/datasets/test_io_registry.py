"""Tests for dataset persistence and the name registry."""

import numpy as np
import pytest

from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_save_load_identity(self, walk_data, tmp_path):
        path = tmp_path / "walks.npz"
        save_stream_dataset(walk_data, path)
        loaded = load_stream_dataset(path)
        assert loaded.name == walk_data.name
        assert loaded.n_timestamps == walk_data.n_timestamps
        assert loaded.grid == walk_data.grid
        assert len(loaded) == len(walk_data)
        for a, b in zip(walk_data.trajectories, loaded.trajectories):
            assert a.start_time == b.start_time
            assert a.cells == b.cells
            assert a.user_id == b.user_id

    def test_aggregates_preserved(self, hotspot_data, tmp_path):
        path = tmp_path / "h.npz"
        save_stream_dataset(hotspot_data, path)
        loaded = load_stream_dataset(path)
        assert np.array_equal(
            hotspot_data.cell_counts_matrix(), loaded.cell_counts_matrix()
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_stream_dataset(tmp_path / "absent.npz")

    def test_empty_dataset(self, grid4, tmp_path):
        from repro.stream.stream import StreamDataset

        ds = StreamDataset(grid4, [], n_timestamps=10, name="empty")
        path = tmp_path / "empty.npz"
        save_stream_dataset(ds, path)
        loaded = load_stream_dataset(path)
        assert len(loaded) == 0
        assert loaded.n_timestamps == 10


class TestRegistry:
    def test_available(self):
        assert set(available_datasets()) == {"tdrive", "oldenburg", "sanjoaquin"}

    def test_load_each(self):
        for name in available_datasets():
            ds = load_dataset(name, scale=0.01, k=4, seed=0)
            assert len(ds) > 0
            assert ds.grid.k == 4

    def test_alias(self):
        ds = load_dataset("T-Drive", scale=0.01, seed=0)
        assert len(ds) > 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("gowalla")
