"""Tests for the Section V-A raw-trace preprocessing pipeline."""

import pytest

from repro.datasets.preprocess import (
    RawFix,
    align_to_clock,
    build_stream_dataset,
    load_fixes_csv,
    preprocess_raw_traces,
    restrict_to_region,
)
from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox, Point

BOX = BoundingBox(0.0, 0.0, 1.0, 1.0)


class TestAlignToClock:
    def test_basic_slotting(self):
        fixes = [
            RawFix(1, 0.0, 0.1, 0.1),
            RawFix(1, 650.0, 0.2, 0.2),  # slot 1 at 600s granularity
        ]
        aligned = align_to_clock(fixes, granularity=600.0)
        assert [t for t, _p in aligned[1]] == [0, 1]

    def test_last_fix_in_slot_wins(self):
        fixes = [
            RawFix(1, 10.0, 0.1, 0.1),
            RawFix(1, 500.0, 0.9, 0.9),  # same slot, later => wins
        ]
        aligned = align_to_clock(fixes, granularity=600.0)
        assert aligned[1][0][1] == Point(0.9, 0.9)

    def test_multiple_users(self):
        fixes = [RawFix(1, 0.0, 0.1, 0.1), RawFix(2, 0.0, 0.5, 0.5)]
        aligned = align_to_clock(fixes, granularity=60.0)
        assert set(aligned) == {1, 2}

    def test_origin_override(self):
        fixes = [RawFix(1, 1000.0, 0.1, 0.1)]
        aligned = align_to_clock(fixes, granularity=100.0, t0=0.0)
        assert aligned[1][0][0] == 10

    def test_fixes_before_origin_dropped(self):
        fixes = [RawFix(1, 50.0, 0.1, 0.1)]
        assert align_to_clock(fixes, granularity=100.0, t0=100.0) == {}

    def test_empty(self):
        assert align_to_clock([], granularity=60.0) == {}

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            align_to_clock([RawFix(1, 0, 0, 0)], granularity=0.0)


class TestRestrictToRegion:
    def test_outside_fixes_dropped(self):
        aligned = {1: [(0, Point(0.5, 0.5)), (1, Point(5.0, 5.0))]}
        out = restrict_to_region(aligned, BOX)
        assert [t for t, _p in out[1]] == [0]

    def test_fully_outside_user_removed(self):
        aligned = {1: [(0, Point(9.0, 9.0))]}
        assert restrict_to_region(aligned, BOX) == {}


class TestBuildStreamDataset:
    def test_gap_creates_two_streams(self):
        grid = Grid(BOX, 4)
        aligned = {
            7: [(0, Point(0.1, 0.1)), (1, Point(0.3, 0.1)), (5, Point(0.9, 0.9))]
        }
        ds = build_stream_dataset(aligned, grid)
        assert len(ds) == 2
        assert ds.trajectories[0].start_time == 0
        assert ds.trajectories[1].start_time == 5

    def test_adjacency_enforced(self):
        grid = Grid(BOX, 4)
        aligned = {
            1: [(0, Point(0.05, 0.05)), (1, Point(0.95, 0.95))]  # huge jump
        }
        ds = build_stream_dataset(aligned, grid)
        for a, b in ds.trajectories[0].transitions():
            assert grid.are_adjacent(a, b)

    def test_empty_raises_without_horizon(self):
        grid = Grid(BOX, 4)
        with pytest.raises(DatasetError):
            build_stream_dataset({}, grid)

    def test_empty_ok_with_horizon(self):
        grid = Grid(BOX, 4)
        ds = build_stream_dataset({}, grid, n_timestamps=5)
        assert len(ds) == 0


class TestFullPipeline:
    def test_end_to_end(self):
        fixes = []
        # User 1: a clean 4-slot trace inside the box.
        for i in range(4):
            fixes.append(RawFix(1, i * 600.0, 0.1 + 0.05 * i, 0.1))
        # User 2: leaves the box mid-way (forces a split).
        fixes.extend([
            RawFix(2, 0.0, 0.5, 0.5),
            RawFix(2, 600.0, 5.0, 5.0),  # outside
            RawFix(2, 1200.0, 0.5, 0.6),
        ])
        ds = preprocess_raw_traces(fixes, BOX, k=4, granularity=600.0)
        assert len(ds) == 3  # user1 once + user2 split in two
        stats = ds.stats()
        assert stats["n_points"] == 6

    def test_runs_through_retrasyn(self):
        """Preprocessed output must be a valid pipeline input."""
        from repro.core.retrasyn import RetraSyn, RetraSynConfig

        fixes = [
            RawFix(u, i * 60.0, 0.1 + 0.02 * ((u + i) % 20), 0.1 + 0.03 * (u % 10))
            for u in range(30)
            for i in range(12)
        ]
        ds = preprocess_raw_traces(fixes, BOX, k=4, granularity=60.0)
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=4, seed=0)).run(ds)
        assert run.accountant.verify()


class TestCsvLoader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "fixes.csv"
        path.write_text("user,time,x,y\n1,0.0,0.1,0.2\n2,60.0,0.3,0.4\n")
        fixes = load_fixes_csv(path)
        assert fixes == [RawFix(1, 0.0, 0.1, 0.2), RawFix(2, 60.0, 0.3, 0.4)]

    def test_no_header(self, tmp_path):
        path = tmp_path / "fixes.csv"
        path.write_text("1,0.0,0.1,0.2\n")
        assert len(load_fixes_csv(path)) == 1

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,0.0,0.1,0.2\n1,oops,0.1\n")
        with pytest.raises(DatasetError):
            load_fixes_csv(path)

    def test_bad_value_midfile(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,0.0,0.1,0.2\n1,xx,0.1,0.2\n")
        with pytest.raises(DatasetError):
            load_fixes_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "fixes.csv"
        path.write_text("\n1,0.0,0.1,0.2\n\n")
        assert len(load_fixes_csv(path)) == 1
