"""Tests for the diurnal (rush-hour) T-Drive dynamics."""

from collections import Counter

import numpy as np

from repro.datasets.tdrive import TDriveConfig, make_tdrive
from repro.metrics.divergence import jsd_from_counts


def _trip_od(data, t_from, t_to):
    """Counts of (start_cell, end_cell) for trips starting in a window."""
    counts = Counter()
    for traj in data.trajectories:
        if t_from <= traj.start_time < t_to and len(traj) > 0:
            counts[(traj.cells[0], traj.cells[-1])] += 1
    return counts


def _half_day_divergence(diurnal: bool, seed: int = 0) -> float:
    cfg = TDriveConfig(
        n_taxis=500,
        n_timestamps=40,
        diurnal=diurnal,
        day_length=40,  # one full day over the horizon
        mean_gap_length=2.0,
    )
    data = make_tdrive(cfg, seed=seed)
    half = data.n_timestamps // 2
    am = _trip_od(data, 0, half)
    pm = _trip_od(data, half, data.n_timestamps)
    return jsd_from_counts(am, pm)


class TestDiurnalDynamics:
    def test_diurnal_shifts_trip_distribution(self):
        """Reversed OD preferences must separate AM and PM trip patterns
        noticeably more than sampling noise alone does."""
        shift = _half_day_divergence(diurnal=True)
        stationary = _half_day_divergence(diurnal=False)
        assert shift > stationary * 1.15, (shift, stationary)

    def test_diurnal_preserves_dataset_invariants(self):
        cfg = TDriveConfig(n_taxis=100, n_timestamps=30, diurnal=True, day_length=30)
        data = make_tdrive(cfg, seed=1)
        for traj in data.trajectories:
            for a, b in traj.transitions():
                assert data.grid.are_adjacent(a, b)

    def test_diurnal_deterministic(self):
        cfg = TDriveConfig(n_taxis=50, n_timestamps=20, diurnal=True, day_length=20)
        a = make_tdrive(cfg, seed=3)
        b = make_tdrive(cfg, seed=3)
        assert [t.cells for t in a.trajectories] == [t.cells for t in b.trajectories]

    def test_pipeline_reacts_to_reversal(self):
        """The adaptive allocator's deviation signal stays alive through the
        midday reversal (sampling rate exceeds the bootstrap floor)."""
        from repro.core.retrasyn import RetraSyn, RetraSynConfig

        cfg = TDriveConfig(
            n_taxis=400, n_timestamps=40, diurnal=True, day_length=40,
            mean_gap_length=2.0,
        )
        data = make_tdrive(cfg, seed=0)
        run = RetraSyn(RetraSynConfig(epsilon=1.0, w=8, seed=0)).run(data)
        assert run.accountant.verify()
        reporters = np.asarray(run.reporters_per_timestamp, dtype=float)
        actives = data.active_counts().astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(actives > 0, reporters / actives, 0.0)
        assert rate.max() > 1.0 / (2 * 8) + 1e-6
