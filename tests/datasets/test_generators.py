"""Tests for the dataset generators (T-Drive-like, Brinkhoff, synthetic)."""

import numpy as np
import pytest

from repro.datasets.brinkhoff import BrinkhoffConfig, NetworkGenerator
from repro.datasets.synthetic import (
    make_lane_stream,
    make_random_walks,
    make_two_hotspot_stream,
)
from repro.datasets.tdrive import TDriveConfig, make_tdrive
from repro.exceptions import ConfigurationError


class TestTDrive:
    def test_basic_shape(self):
        data = make_tdrive(TDriveConfig(n_taxis=50, n_timestamps=60), seed=0)
        assert len(data) > 50  # multiple trips per taxi
        assert data.n_timestamps == 60
        assert data.grid.k == 6

    def test_all_transitions_adjacent(self):
        data = make_tdrive(TDriveConfig(n_taxis=30, n_timestamps=40), seed=1)
        for traj in data.trajectories:
            for a, b in traj.transitions():
                assert data.grid.are_adjacent(a, b)

    def test_average_length_near_target(self):
        cfg = TDriveConfig(n_taxis=200, n_timestamps=200, mean_trip_length=13.61)
        data = make_tdrive(cfg, seed=0)
        avg = data.stats()["average_length"]
        assert 8.0 < avg < 20.0  # same order as Table I's 13.61

    def test_has_churn(self):
        """Streams must enter and quit inside the horizon (dynamic users)."""
        data = make_tdrive(TDriveConfig(n_taxis=100, n_timestamps=80), seed=0)
        starts = {t.start_time for t in data.trajectories}
        ends = {t.end_time for t in data.trajectories}
        assert len(starts) > 10
        assert len(ends) > 10

    def test_spatially_skewed(self):
        """Hotspot structure => cell popularity must be non-uniform."""
        data = make_tdrive(TDriveConfig(n_taxis=150, n_timestamps=80), seed=0)
        counts = data.cell_counts_matrix().sum(axis=0)
        top = np.sort(counts)[::-1]
        assert top[:5].sum() > 2 * top[-5:].sum()

    def test_deterministic_given_seed(self):
        cfg = TDriveConfig(n_taxis=20, n_timestamps=30)
        a = make_tdrive(cfg, seed=5)
        b = make_tdrive(cfg, seed=5)
        assert [t.cells for t in a.trajectories] == [t.cells for t in b.trajectories]

    def test_scaled_config(self):
        cfg = TDriveConfig.scaled(0.01)
        assert cfg.n_taxis == 103
        with pytest.raises(ConfigurationError):
            TDriveConfig.scaled(0.0)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            TDriveConfig(n_taxis=0)
        with pytest.raises(ConfigurationError):
            TDriveConfig(n_timestamps=1)
        with pytest.raises(ConfigurationError):
            TDriveConfig(mean_trip_length=0.5)


class TestBrinkhoff:
    @pytest.fixture(scope="class")
    def small(self):
        cfg = BrinkhoffConfig(
            n_initial=60, new_per_ts=4, n_timestamps=40, graph_size=8
        )
        return NetworkGenerator(cfg, rng=0).generate("net")

    def test_road_network_connected(self):
        import networkx as nx

        gen = NetworkGenerator(BrinkhoffConfig(graph_size=10), rng=0)
        assert nx.is_connected(gen.graph)

    def test_population_dynamics(self, small):
        counts = small.active_counts()
        # Initial population present, newcomers keep arriving.
        assert counts[0] == 60
        assert counts[1:].max() > 0

    def test_arrivals_every_timestamp(self, small):
        starts = [t.start_time for t in small.trajectories]
        # At least one stream starting at most timestamps (arrivals = 4/ts).
        unique_starts = set(starts)
        assert len(unique_starts) > small.n_timestamps * 0.8

    def test_adjacency_respected(self, small):
        for traj in small.trajectories:
            for a, b in traj.transitions():
                assert small.grid.are_adjacent(a, b)

    def test_quitting_happens(self, small):
        ends = [t.end_time for t in small.trajectories]
        assert min(ends) < small.n_timestamps - 1

    def test_oldenburg_sanjoaquin_configs(self):
        old = BrinkhoffConfig.oldenburg(scale=0.01)
        sj = BrinkhoffConfig.sanjoaquin(scale=0.01)
        assert old.n_initial == 100 and old.new_per_ts == 5
        assert sj.n_initial == 100 and sj.new_per_ts == 10
        assert sj.graph_size > old.graph_size

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            BrinkhoffConfig(n_initial=0)
        with pytest.raises(ConfigurationError):
            BrinkhoffConfig(graph_size=1)
        with pytest.raises(ConfigurationError):
            BrinkhoffConfig(quit_prob=1.0)
        with pytest.raises(ConfigurationError):
            BrinkhoffConfig.oldenburg(scale=2.0)


class TestSyntheticGenerators:
    def test_lane_is_deterministic_rightward(self):
        data = make_lane_stream(k=5, n_streams=20, n_timestamps=20, seed=0)
        for traj in data.trajectories:
            rows = {data.grid.cell_to_rowcol(c)[0] for c in traj.cells}
            assert rows == {0}
            cols = [data.grid.cell_to_rowcol(c)[1] for c in traj.cells]
            assert cols == sorted(cols)

    def test_lane_invalid_row(self):
        with pytest.raises(ConfigurationError):
            make_lane_stream(k=4, row=4)

    def test_random_walks_adjacency(self):
        data = make_random_walks(k=5, n_streams=50, n_timestamps=25, seed=0)
        for traj in data.trajectories:
            for a, b in traj.transitions():
                assert data.grid.are_adjacent(a, b)

    def test_random_walks_lengths_within_horizon(self):
        data = make_random_walks(k=5, n_streams=80, n_timestamps=25, seed=0)
        for traj in data.trajectories:
            assert traj.end_time < data.n_timestamps

    def test_hotspot_shift_reverses_flow(self):
        data = make_two_hotspot_stream(
            k=5, n_streams=400, n_timestamps=60, shift_at=30, seed=0
        )
        # Before the shift, trips start at the lower-left; after, upper-right.
        ll = data.grid.rowcol_to_cell(0, 0)
        ur = data.grid.rowcol_to_cell(4, 4)
        early = [t for t in data.trajectories if t.start_time < 30]
        late = [t for t in data.trajectories if t.start_time >= 30]
        assert sum(t.cells[0] == ll for t in early) > len(early) * 0.9
        assert sum(t.cells[0] == ur for t in late) > len(late) * 0.9

    def test_invalid_mean_length(self):
        with pytest.raises(ConfigurationError):
            make_random_walks(mean_length=0.5)
