"""Tests for the deployment-planning utilities."""

import pytest

from repro.exceptions import ConfigurationError
from repro.geo.grid import unit_grid
from repro.planning import (
    DeploymentPlan,
    format_plan_report,
    per_round_noise_std,
    plan_report,
    recommend_k,
    signal_scale,
    snr,
    state_domain_size,
)
from repro.stream.state_space import TransitionStateSpace


class TestStateDomainSize:
    @pytest.mark.parametrize("k", [1, 2, 3, 6, 10])
    def test_matches_actual_space(self, k):
        """The closed form must equal the constructed space size."""
        space = TransitionStateSpace(unit_grid(k))
        assert state_domain_size(k) == space.size
        space_noeq = TransitionStateSpace(
            unit_grid(k), include_entering_quitting=False
        )
        assert state_domain_size(k, False) == space_noeq.size

    def test_o9c_bound(self):
        for k in (2, 6, 18):
            assert state_domain_size(k) <= 11 * k * k


class TestNoisePrediction:
    def test_more_users_less_noise(self):
        small = DeploymentPlan(n_active=1_000)
        large = DeploymentPlan(n_active=100_000)
        assert per_round_noise_std(large) < per_round_noise_std(small)

    def test_higher_epsilon_less_noise(self):
        low = DeploymentPlan(epsilon=0.5)
        high = DeploymentPlan(epsilon=2.0)
        assert per_round_noise_std(high) < per_round_noise_std(low)

    def test_budget_division_uses_fractional_epsilon(self):
        pop = DeploymentPlan(division="population", portion=0.05)
        bud = DeploymentPlan(division="budget", portion=0.05)
        # Same inputs, different mechanics: both produce finite noise.
        assert per_round_noise_std(pop) > 0
        assert per_round_noise_std(bud) > 0

    def test_prediction_matches_simulation(self):
        """Predicted per-state std must match an empirical OUE run."""
        import numpy as np

        from repro.ldp.oue import OptimizedUnaryEncoding

        plan = DeploymentPlan(epsilon=1.0, n_active=4_000, portion=0.25, k=4)
        n = int(plan.portion * plan.n_active)
        d = state_domain_size(plan.k)
        estimates = np.stack([
            OptimizedUnaryEncoding(d, plan.epsilon, rng=i).collect([0] * n) / n
            for i in range(120)
        ])
        empirical = estimates[:, 1].std()  # a zero-frequency position
        assert empirical == pytest.approx(per_round_noise_std(plan), rel=0.3)


class TestSnrAndRecommendation:
    def test_snr_decreases_with_k(self):
        plans = [DeploymentPlan(k=k) for k in (2, 6, 18)]
        snrs = [snr(p) for p in plans]
        assert snrs[0] > snrs[1] > snrs[2]

    def test_signal_scale_shrinks_with_k(self):
        assert signal_scale(DeploymentPlan(k=18)) < signal_scale(DeploymentPlan(k=2))

    def test_large_population_affords_fine_grid(self):
        small = recommend_k(DeploymentPlan(n_active=500))
        large = recommend_k(DeploymentPlan(n_active=5_000_000))
        assert large >= small

    def test_no_viable_k_falls_back_to_coarsest(self):
        plan = DeploymentPlan(n_active=2, epsilon=0.1)
        assert recommend_k(plan, candidates=(6, 10)) == 6

    def test_recommendation_is_viable_when_possible(self):
        plan = DeploymentPlan(n_active=1_000_000, epsilon=2.0)
        k = recommend_k(plan)
        chosen = DeploymentPlan(
            epsilon=plan.epsilon, w=plan.w, n_active=plan.n_active,
            k=k, division=plan.division, portion=plan.portion,
        )
        assert snr(chosen) >= 1.0


class TestReport:
    def test_fields(self):
        report = plan_report(DeploymentPlan())
        for key in ("state_domain", "noise_std", "snr", "recommended_k"):
            assert key in report

    def test_format(self):
        text = format_plan_report(plan_report(DeploymentPlan()))
        assert "Deployment plan" in text
        assert "recommended_k" in text


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"w": 0},
            {"n_active": 0},
            {"k": 0},
            {"division": "federated"},
            {"portion": 0.0},
            {"portion": 1.5},
        ],
    )
    def test_invalid_plan(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeploymentPlan(**kwargs)
