"""At-most-once client transport semantics.

A keep-alive connection can die at three distinct points and each needs a
different answer:

* before the request was written      → reconnect and resend (safe),
* awaiting the response to a GET      → reconnect and resend (idempotent),
* awaiting the response to a POST     → :class:`ResponseLostError`; the
  server may have applied the mutation, so a blind resend of
  ``POST /v1/batch`` would double-count every report in it.
"""

from __future__ import annotations

import http.client
import socket
import threading

import pytest

from repro.api.client import Client
from repro.exceptions import ResponseLostError

_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 4\r\n"
    b"Connection: close\r\n"
    b"\r\n"
    b"pong"
)

#: Close the connection after reading the request, without replying —
#: the server died mid-response, after it may have applied the request.
_KILL = "kill"


class _ScriptedServer:
    """A raw TCP server that plays one scripted behaviour per connection.

    Each behaviour is either ``_KILL`` (read the full request, say
    nothing, close) or a canned response byte string.  The listening
    socket closes when the script runs out, so a client that (wrongly)
    resends gets an immediate connection refusal instead of a hang.
    """

    def __init__(self, behaviors):
        self.requests: list[bytes] = []
        self._behaviors = list(behaviors)
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        try:
            for behavior in self._behaviors:
                conn, _ = self._sock.accept()
                with conn:
                    request = self._read_request(conn)
                    if request is not None:
                        self.requests.append(request)
                    if behavior is not _KILL:
                        conn.sendall(behavior)
        finally:
            self._sock.close()

    @staticmethod
    def _read_request(conn) -> bytes | None:
        conn.settimeout(10)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return data or None
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(body) < length:
            chunk = conn.recv(65536)
            if not chunk:
                break
            body += chunk
        return head + b"\r\n\r\n" + body

    def join(self):
        self._thread.join(10)


class TestLostResponse:
    def test_post_raises_typed_error_and_is_not_resent(self):
        """The at-most-once core: a POST whose response was lost must NOT
        be blindly resent — the server may have already applied it."""
        server = _ScriptedServer([_KILL])
        client = Client("127.0.0.1", server.port, timeout=5)
        with pytest.raises(ResponseLostError, match="POST /v1/batch"):
            client._send("POST", "/v1/batch", b"reports")
        server.join()
        assert len(server.requests) == 1, (
            "the client resent a possibly-applied POST"
        )

    def test_error_names_the_ambiguity(self):
        server = _ScriptedServer([_KILL])
        client = Client("127.0.0.1", server.port, timeout=5)
        with pytest.raises(ResponseLostError, match="may or may not have"):
            client._send("POST", "/v1/close", b"")
        server.join()

    def test_get_is_retried_transparently(self):
        """Idempotent reads reconnect through the same failure."""
        server = _ScriptedServer([_KILL, _RESPONSE])
        client = Client("127.0.0.1", server.port, timeout=5)
        assert client._send("GET", "/v1/stats", b"") == b"pong"
        server.join()
        assert len(server.requests) == 2

    def test_get_gives_up_after_one_retry(self):
        server = _ScriptedServer([_KILL, _KILL])
        client = Client("127.0.0.1", server.port, timeout=5)
        with pytest.raises(http.client.RemoteDisconnected):
            client._send("GET", "/v1/stats", b"")
        server.join()
        assert len(server.requests) == 2


class TestFailureBeforeWrite:
    def test_post_that_never_reached_the_wire_is_resent(self, monkeypatch):
        """A send that dies before the request was written is always safe
        to retry — the server cannot have seen it."""
        server = _ScriptedServer([_RESPONSE])
        calls = {"n": 0}
        real_request = http.client.HTTPConnection.request

        def flaky(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BrokenPipeError("stale keep-alive")
            return real_request(self, *args, **kwargs)

        monkeypatch.setattr(http.client.HTTPConnection, "request", flaky)
        client = Client("127.0.0.1", server.port, timeout=5)
        assert client._send("POST", "/v1/batch", b"reports") == b"pong"
        server.join()
        assert calls["n"] == 2
        assert len(server.requests) == 1  # the wire saw it exactly once

    def test_second_prewrite_failure_propagates(self, monkeypatch):
        monkeypatch.setattr(
            http.client.HTTPConnection,
            "request",
            lambda self, *a, **k: (_ for _ in ()).throw(
                BrokenPipeError("always down")
            ),
        )
        client = Client("127.0.0.1", 1, timeout=5)
        with pytest.raises(BrokenPipeError):
            client._send("POST", "/v1/batch", b"reports")
