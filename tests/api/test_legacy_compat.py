"""Legacy-surface compatibility: flat config kwargs, v2 checkpoints, and
the historical ``from repro import ...`` names all keep working."""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.api.session import create_session
from repro.api.specs import SessionSpec
from repro.core.online import OnlineRetraSyn
from repro.core.persistence import (
    load_checkpoint,
    peek_checkpoint_spec,
    save_checkpoint,
)
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.exceptions import DatasetError
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView

#: The public names importable from `repro` before the unified API landed.
#: Removing any of these is a breaking change — this list is the contract.
LEGACY_EXPORTS = (
    "RetraSyn", "RetraSynConfig", "OnlineRetraSyn", "ShardedOnlineRetraSyn",
    "SynthesisRun", "Synthesizer", "VectorizedSynthesizer",
    "GlobalMobilityModel", "TrajectoryAnalyzer", "FlowAnalyzer",
    "fidelity_report", "make_retrasyn", "make_all_update", "make_no_eq",
    "LBD", "LBA", "LPD", "LPA", "make_baseline",
    "load_dataset", "make_tdrive", "make_oldenburg", "make_sanjoaquin",
    "Grid", "Point", "BoundingBox", "Trajectory", "CellTrajectory",
    "OptimizedUnaryEncoding", "PrivacyAccountant",
    "ALL_METRICS", "evaluate_all",
    "DeploymentPlan", "plan_report", "recommend_k",
    "StreamDataset", "TransitionStateSpace",
)

#: Every historical RetraSynConfig keyword, exactly as callers wrote them.
LEGACY_CONFIG_KWARGS = dict(
    epsilon=1.0, w=20, division="population", allocator="adaptive",
    update_strategy="dmu", model_entering_quitting=True, lam=None,
    alpha=8.0, kappa=5, p_max=0.6, oracle_mode="fast", engine="object",
    compile_mode="incremental", synthesis_shards=1, n_shards=1,
    shard_executor="serial", dmu_prefilter=False, track_privacy=True,
    accountant_mode="columnar", seed=0,
)


class TestLegacyImports:
    def test_api_package_exports_its_whole_surface(self):
        import repro.api

        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_every_legacy_name_still_importable(self):
        import repro

        for name in LEGACY_EXPORTS:
            assert hasattr(repro, name), f"legacy export {name} vanished"
            assert name in repro.__all__

    def test_legacy_imports_emit_no_warnings(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for name in LEGACY_EXPORTS:
                getattr(repro, name)


class TestLegacyConfigKwargs:
    def test_full_legacy_kwargs_construct_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = RetraSynConfig(**LEGACY_CONFIG_KWARGS)
        for name, value in LEGACY_CONFIG_KWARGS.items():
            assert getattr(config, name) == value

    def test_legacy_config_round_trips_through_spec(self):
        config = RetraSynConfig(**LEGACY_CONFIG_KWARGS)
        assert config.to_spec().to_config() == config

    def test_legacy_config_pickles(self):
        config = RetraSynConfig(**LEGACY_CONFIG_KWARGS)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_flat_config_into_factory_warns_once(self, walk_data):
        config = RetraSynConfig(epsilon=1.0, w=10, seed=0)
        with pytest.warns(DeprecationWarning):
            session = create_session(config, walk_data.grid, lam=4.0)
        session.close()


def _rewrite_as_v2(path):
    """Turn a fresh v3 checkpoint into the exact v2 on-disk layout."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    assert payload["version"] == 3
    payload["version"] = 2
    del payload["spec"]  # v2 predates the layered specs
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


class TestV2CheckpointMigration:
    def _half_run_curator(self, data, seed=3):
        config = RetraSynConfig(epsilon=1.0, w=10, seed=seed)
        curator = OnlineRetraSyn(
            data.grid, config, lam=max(1.0, average_length(data.trajectories))
        )
        view = ColumnarStreamView(data, curator.space)
        for t in range(data.n_timestamps // 2):
            curator.process_timestep(
                t,
                participants=view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        return curator, view

    def test_v2_checkpoint_loads_with_deprecation_warning(
        self, walk_data, tmp_path
    ):
        curator, _ = self._half_run_curator(walk_data)
        path = tmp_path / "legacy.ckpt"
        save_checkpoint(curator, path)
        _rewrite_as_v2(path)
        with pytest.warns(DeprecationWarning, match="checkpoint format v2"):
            restored = load_checkpoint(path)
        assert restored._last_t == curator._last_t

    def test_v2_resume_stays_bitwise(self, walk_data, tmp_path):
        reference = RetraSyn(RetraSynConfig(epsilon=1.0, w=10, seed=3)).run(
            walk_data
        )
        curator, view = self._half_run_curator(walk_data)
        path = tmp_path / "legacy.ckpt"
        save_checkpoint(curator, path)
        _rewrite_as_v2(path)
        with pytest.warns(DeprecationWarning):
            resumed = load_checkpoint(path)
        for t in range(walk_data.n_timestamps // 2, walk_data.n_timestamps):
            resumed.process_timestep(
                t,
                participants=view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        run = resumed.result(walk_data.n_timestamps)
        assert (
            [(t.start_time, list(t.cells)) for t in run.synthetic]
            == [(t.start_time, list(t.cells)) for t in reference.synthetic]
        )

    def test_v2_spec_peek_returns_none(self, walk_data, tmp_path):
        curator, _ = self._half_run_curator(walk_data)
        path = tmp_path / "legacy.ckpt"
        save_checkpoint(curator, path)
        _rewrite_as_v2(path)
        with pytest.warns(DeprecationWarning):
            assert peek_checkpoint_spec(path) is None

    def test_resave_migrates_to_v3(self, walk_data, tmp_path):
        curator, _ = self._half_run_curator(walk_data)
        path = tmp_path / "legacy.ckpt"
        save_checkpoint(curator, path)
        _rewrite_as_v2(path)
        with pytest.warns(DeprecationWarning):
            restored = load_checkpoint(path)
        save_checkpoint(restored, path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning: it is v3 now
            spec = peek_checkpoint_spec(path)
        assert isinstance(spec, SessionSpec)

    def test_v3_checkpoint_carries_the_spec(self, walk_data, tmp_path):
        curator, _ = self._half_run_curator(walk_data)
        path = tmp_path / "current.ckpt"
        save_checkpoint(curator, path)
        spec = peek_checkpoint_spec(path)
        assert spec == curator.config.to_spec()

    def test_v1_is_still_refused(self, walk_data, tmp_path):
        curator, _ = self._half_run_curator(walk_data)
        path = tmp_path / "ancient.ckpt"
        save_checkpoint(curator, path)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["version"] = 1
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(DatasetError, match="unsupported checkpoint"):
            load_checkpoint(path)
