"""ISSUE 9 at the session/transport layer: pipelined rounds end to end.

``ShardingSpec.round_batch`` must flow through every boundary — the
direct and ingest sessions hand depth-sized groups to the curator, the
client chunks pipelined request bodies at its byte budget, and the
transport counters (shard pool and HTTP ingress) land on ``/metrics`` —
all without perturbing a single synthetic cell.
"""

from __future__ import annotations

import asyncio
import http.client
import threading

import pytest

from repro.api.client import Client
from repro.api.http import HttpIngress
from repro.api.session import create_session
from repro.api.specs import SessionSpec
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace


class _Server:
    """An ingress running on a background thread's event loop."""

    def __init__(self, session):
        self.ingress = HttpIngress(session)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):  # pragma: no cover - diagnostics
            raise RuntimeError("ingress did not come up")

    def _run(self):
        async def main():
            await self.ingress.start()
            self._ready.set()
            await self.ingress.serve_until_shutdown()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self.ingress.port

    def join(self):
        self._thread.join(10)


def _streams(dataset):
    return [(t.start_time, list(t.cells)) for t in dataset]


def _session_fingerprint(walk_data, **flat):
    """Drive a full replay through a local session; fingerprint it."""
    spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=21, **flat)
    lam = max(1.0, average_length(walk_data.trajectories))
    session = create_session(spec, walk_data.grid, lam=lam)
    space = session.curator.space
    view = ColumnarStreamView(walk_data, space)
    results = []
    for t in range(walk_data.n_timestamps):
        session.submit_batch(
            t,
            view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )
        results.extend(session.advance())
    session.close()
    run = session.result(walk_data.n_timestamps)
    return {"cells": _streams(run.synthetic), "results": results}


class TestSessionRoundBatch:
    @pytest.mark.parametrize("transport", ["direct", "ingest"])
    def test_depths_bit_identical_through_sessions(self, walk_data, transport):
        reference = _session_fingerprint(
            walk_data, transport=transport, n_shards=2
        )
        pipelined = _session_fingerprint(
            walk_data, transport=transport, n_shards=2, round_batch=3
        )
        assert pipelined == reference

    def test_unsharded_session_accepts_round_batch(self, walk_data):
        reference = _session_fingerprint(walk_data, transport="direct")
        pipelined = _session_fingerprint(
            walk_data, transport="direct", round_batch=4
        )
        assert pipelined == reference


@pytest.fixture
def pipelined_server(walk_data):
    """An ingress over a distributed pipelined session, plus a client."""
    spec = SessionSpec.from_flat(
        epsilon=1.0, w=10, seed=21, transport="ingest",
        n_shards=2, shard_executor="distributed", round_batch=3,
    )
    lam = max(1.0, average_length(walk_data.trajectories))
    server = _Server(create_session(spec, walk_data.grid, lam=lam))
    client = Client("127.0.0.1", server.port)
    yield server, client
    try:
        client.shutdown_server()
    except Exception:
        pass
    server.join()


def _scrape(port: int) -> str:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/metrics")
        return conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()


class TestRemotePipelinedRounds:
    def test_chunked_submit_batches_bit_identical(
        self, pipelined_server, walk_data
    ):
        """A tiny chunk budget forces many POSTs; output is unperturbed."""
        server, client = pipelined_server
        hello = client.hello()
        assert client.schema_version == 2
        client.chunk_bytes = 4_096  # far below one frame group
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        view = ColumnarStreamView(walk_data, space)
        items = [
            (
                t,
                view.batch_at(t),
                view.newly_entered_at(t),
                view.quitted_at(t),
                view.n_active_at(t),
            )
            for t in range(walk_data.n_timestamps)
        ]
        ack = client.submit_batches(items)
        assert ack["n_batches"] >= 1  # the final chunk's ack
        client.close()
        remote = client.result()

        reference = _session_fingerprint(
            walk_data, transport="ingest", n_shards=2,
        )
        assert _streams(remote) == reference["cells"]

    def test_transport_counters_exposed(self, pipelined_server, walk_data):
        server, client = pipelined_server
        hello = client.hello()
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        view = ColumnarStreamView(walk_data, space)
        client.submit_batches(
            [
                (
                    t,
                    view.batch_at(t),
                    view.newly_entered_at(t),
                    view.quitted_at(t),
                    view.n_active_at(t),
                )
                for t in range(12)
            ]
        )
        body = _scrape(server.port)
        for family, kind in (
            ("retrasyn_shard_frames_total", "counter"),
            ("retrasyn_shard_bytes_total", "counter"),
            ("retrasyn_shard_roundtrip_seconds", "histogram"),
            ("retrasyn_ingress_frames_total", "counter"),
            ("retrasyn_ingress_bytes_total", "counter"),
        ):
            assert f"# TYPE {family} {kind}" in body, family
        samples = {}
        for line in body.splitlines():
            if line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        for direction in ("sent", "received"):
            assert samples[f'retrasyn_shard_frames_total{{direction="{direction}"}}'] > 0
            assert samples[f'retrasyn_shard_bytes_total{{direction="{direction}"}}'] > 0
            assert samples[f'retrasyn_ingress_bytes_total{{direction="{direction}"}}'] > 0
        assert samples['retrasyn_ingress_frames_total{direction="received"}'] >= 12
        assert samples["retrasyn_shard_roundtrip_seconds_count"] > 0

    def test_fused_frames_reduce_round_trips(self, pipelined_server, walk_data):
        """Depth 3 must spend fewer shard frames than one per timestamp.

        The per-timestamp protocol costs 2 frames per shard per round
        (submit + advance); fused groups amortise both verbs, so the
        frames-per-round ratio must drop strictly below 2 per shard.
        """
        server, client = pipelined_server
        hello = client.hello()
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        view = ColumnarStreamView(walk_data, space)
        client.submit_batches(
            [
                (
                    t,
                    view.batch_at(t),
                    view.newly_entered_at(t),
                    view.quitted_at(t),
                    view.n_active_at(t),
                )
                for t in range(walk_data.n_timestamps)
            ]
        )
        pool = server.ingress.session.curator._pool
        rounds = server.ingress.session.stats()["n_timestamps"]
        assert rounds > 0
        frames_per_round = pool.frames_sent / rounds
        assert frames_per_round < 2 * 2  # 2 shards × 2 verbs, the depth-1 cost
