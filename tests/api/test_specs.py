"""The layered spec model and its equivalence with the flat config façade."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.specs import (
    EngineSpec,
    PrivacySpec,
    ServiceSpec,
    SessionSpec,
    ShardingSpec,
    iter_cli_fields,
)
from repro.core.retrasyn import RetraSynConfig
from repro.exceptions import ConfigurationError


class TestLayerValidation:
    def test_defaults_are_valid(self):
        spec = SessionSpec()
        assert spec.privacy.epsilon == 1.0
        assert spec.engine.engine == "object"
        assert spec.sharding.n_shards == 1
        assert spec.service.transport == "direct"

    @pytest.mark.parametrize(
        "layer_cls, kwargs",
        [
            (PrivacySpec, dict(epsilon=0.0)),
            (PrivacySpec, dict(epsilon=-1.0)),
            (PrivacySpec, dict(w=0)),
            (PrivacySpec, dict(division="weekly")),
            (PrivacySpec, dict(allocator="greedy")),
            (PrivacySpec, dict(allocator="random", division="budget")),
            (PrivacySpec, dict(allocator="adaptive-user")),  # population
            (PrivacySpec, dict(accountant_mode="quantum")),
            (PrivacySpec, dict(kappa=0)),
            (PrivacySpec, dict(p_max=0.0)),
            (EngineSpec, dict(engine="fpga")),
            (EngineSpec, dict(oracle_mode="psychic")),
            (EngineSpec, dict(compile_mode="jit")),
            (EngineSpec, dict(update_strategy="sometimes")),
            (EngineSpec, dict(lam=0.0)),
            (ShardingSpec, dict(n_shards=0)),
            (ShardingSpec, dict(shard_executor="thread")),
            (ShardingSpec, dict(synthesis_shards=0)),
            (ShardingSpec, dict(shard_round_timeout=-1.0)),
            (ShardingSpec, dict(shard_round_timeout="soon")),
            (ServiceSpec, dict(transport="carrier-pigeon")),
            (ServiceSpec, dict(queue_size=0)),
            (ServiceSpec, dict(max_lateness=-1)),
            (ServiceSpec, dict(checkpoint_every=-1)),
            (ServiceSpec, dict(checkpoint_every=None)),  # None must not leak
            (ServiceSpec, dict(checkpoint_every=True)),  # bool is not an int
            (ServiceSpec, dict(checkpoint_keep=0)),
            (ServiceSpec, dict(checkpoint_keep=None)),
            (ServiceSpec, dict(drain_deadline=-1.0)),
            (ServiceSpec, dict(ingest_consumers=0)),
            (ServiceSpec, dict(http_port=70000)),
        ],
    )
    def test_bad_fields_raise(self, layer_cls, kwargs):
        with pytest.raises(ConfigurationError):
            layer_cls(**kwargs)

    def test_adaptive_user_requires_budget_division(self):
        spec = PrivacySpec(division="budget", allocator="adaptive-user")
        assert spec.allocator == "adaptive-user"
        with pytest.raises(ConfigurationError):
            PrivacySpec(division="population", allocator="adaptive-user")

    def test_layers_must_be_spec_instances(self):
        with pytest.raises(ConfigurationError):
            SessionSpec(privacy={"epsilon": 1.0})


class TestConfigFacade:
    def test_config_validation_delegates_to_specs(self):
        for bad in (
            dict(division="x"),
            dict(allocator="nope"),
            dict(epsilon=-2),
            dict(w=0),
            dict(engine="gpu"),
            dict(n_shards=0),
            dict(shard_executor="fiber"),
            dict(allocator="adaptive-user"),  # needs budget division
        ):
            with pytest.raises(ConfigurationError):
                RetraSynConfig(**bad)

    def test_round_trip_config_spec_config(self):
        config = RetraSynConfig(
            epsilon=2.5, w=7, division="budget", allocator="uniform",
            engine="vectorized", compile_mode="full", oracle_mode="exact",
            synthesis_shards=2, n_shards=3, shard_executor="serial",
            dmu_prefilter=True, accountant_mode="object",
            track_privacy=False, lam=9.5, alpha=4.0, kappa=3, p_max=0.4,
            update_strategy="all", model_entering_quitting=False, seed=42,
        )
        spec = config.to_spec()
        assert spec.privacy.epsilon == 2.5
        assert spec.privacy.division == "budget"
        assert spec.engine.compile_mode == "full"
        assert spec.engine.lam == 9.5
        assert spec.sharding.n_shards == 3
        assert spec.sharding.dmu_prefilter is True
        assert spec.seed == 42
        assert spec.to_config() == config

    def test_from_flat_matches_from_config(self):
        config = RetraSynConfig(epsilon=0.5, w=5, n_shards=2, seed=1)
        assert SessionSpec.from_flat(**config.to_spec().flat()) == config.to_spec()

    def test_from_flat_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            SessionSpec.from_flat(budget=1.0)

    def test_from_flat_accepts_service_fields(self):
        spec = SessionSpec.from_flat(
            epsilon=1.0, transport="ingest", queue_size=5, max_lateness=2
        )
        assert spec.service.transport == "ingest"
        assert spec.service.queue_size == 5

    def test_label_matches_config_label(self):
        for kwargs in (
            dict(),
            dict(division="budget"),
            dict(update_strategy="all"),
            dict(model_entering_quitting=False, division="budget"),
        ):
            config = RetraSynConfig(**kwargs)
            assert config.to_spec().label == config.label


class TestReplace:
    def test_flat_replace_revalidates(self):
        spec = SessionSpec()
        assert spec.replace(epsilon=3.0).privacy.epsilon == 3.0
        with pytest.raises(ConfigurationError):
            spec.replace(epsilon=-1.0)

    def test_replace_service_field(self):
        spec = SessionSpec().replace(transport="ingest", checkpoint_every=4)
        assert spec.service.transport == "ingest"
        assert spec.service.checkpoint_every == 4

    def test_replace_layer_object(self):
        spec = SessionSpec().replace(privacy=PrivacySpec(epsilon=2.0))
        assert spec.privacy.epsilon == 2.0

    def test_replace_unknown_field(self):
        with pytest.raises(ConfigurationError):
            SessionSpec().replace(warp_factor=9)


class TestCliDerivation:
    """The flag group is generated from the specs — drift is structurally
    impossible, and these tests pin the invariants that make it so."""

    def test_every_config_field_is_owned_by_exactly_one_layer(self):
        spec_fields: dict[str, int] = {}
        for cls in (PrivacySpec, EngineSpec, ShardingSpec):
            for f in dataclasses.fields(cls):
                spec_fields[f.name] = spec_fields.get(f.name, 0) + 1
        config_fields = {
            f.name for f in dataclasses.fields(RetraSynConfig)
        } - {"seed"}
        assert set(spec_fields) == config_fields
        assert all(count == 1 for count in spec_fields.values())

    def test_cli_fields_cover_the_historical_flags(self):
        flags = {f.metadata["cli"]["flag"] for _cls, f in iter_cli_fields()}
        assert flags == {
            "--epsilon", "--w", "--allocator", "--accountant-mode",
            "--engine", "--oracle-mode", "--compile-mode",
            "--shards", "--shard-executor", "--shard-round-timeout",
            "--round-batch", "--dmu-prefilter",
            "--synthesis-shards", "--synthesis-executor",
        }

    def test_service_cli_fields(self):
        flags = {
            f.metadata["cli"]["flag"]
            for _cls, f in iter_cli_fields(spec_classes=(ServiceSpec,))
        }
        assert flags == {
            "--queue-size", "--lateness", "--checkpoint", "--checkpoint-every",
            "--checkpoint-keep", "--drain-deadline", "--ingest-consumers",
        }

    def test_choices_come_from_the_validation_vocabularies(self):
        by_flag = {
            f.metadata["cli"]["flag"]: f.metadata["cli"]["choices"]
            for _cls, f in iter_cli_fields()
        }
        from repro.api import specs

        assert by_flag["--allocator"] == specs.ALLOCATORS
        assert by_flag["--engine"] == specs.ENGINES
        assert by_flag["--oracle-mode"] == specs.ORACLE_MODES
        assert by_flag["--compile-mode"] == specs.COMPILE_MODES
        assert by_flag["--shard-executor"] == specs.SHARD_EXECUTORS
