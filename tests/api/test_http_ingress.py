"""The HTTP ingress and Client: remote round trips must be bit-identical
to in-process sessions (the acceptance bar of the unified API)."""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.api.client import Client
from repro.api.http import HttpIngress
from repro.api.schema import SchemaError
from repro.api.session import create_session
from repro.api.specs import SessionSpec
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace


class _Server:
    """An ingress running on a background thread's event loop."""

    def __init__(self, session):
        self.ingress = HttpIngress(session)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):  # pragma: no cover - diagnostics
            raise RuntimeError("ingress did not come up")

    def _run(self):
        async def main():
            await self.ingress.start()
            self._ready.set()
            await self.ingress.serve_until_shutdown()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self.ingress.port

    def join(self):
        self._thread.join(10)


@pytest.fixture
def served(walk_data):
    """A live ingress over an ingest session, plus a connected client."""
    spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=21, transport="ingest")
    lam = max(1.0, average_length(walk_data.trajectories))
    server = _Server(create_session(spec, walk_data.grid, lam=lam))
    client = Client("127.0.0.1", server.port)
    yield server, client
    try:
        client.shutdown_server()
    except Exception:
        pass
    server.join()


def _replay(client, data, space):
    view = ColumnarStreamView(data, space)
    for t in range(data.n_timestamps):
        client.submit_batch(
            t,
            view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )


def _streams(dataset):
    return [(t.start_time, list(t.cells)) for t in dataset]


class TestRemoteRoundTrip:
    def test_hello_negotiates_and_describes_the_grid(self, served, walk_data):
        _server, client = served
        hello = client.hello()
        assert hello["schema"] == 2  # both sides speak v2 binary frames
        assert client.schema_version == 2
        assert hello["grid"]["k"] == walk_data.grid.k
        assert hello["include_eq"] is True
        assert client.grid().n_cells == walk_data.grid.n_cells

    def test_remote_replay_is_bit_identical_to_in_process(
        self, served, walk_data
    ):
        server, client = served
        hello = client.hello()
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        _replay(client, walk_data, space)
        client.close()
        remote = client.result()

        reference = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=10, seed=21)
        ).run(walk_data)
        assert _streams(remote) == _streams(reference.synthetic)
        assert remote.n_timestamps == reference.synthetic.n_timestamps
        # and the server session agrees with what it shipped — including
        # stream identities, so trajectory(uid) lookups match both sides
        local = server.ingress.session.result(walk_data.n_timestamps)
        assert _streams(remote) == _streams(local.synthetic)
        assert remote.user_ids == local.synthetic.user_ids

    def test_pipelined_replay_is_bit_identical(self, served, walk_data):
        """submit_batches (multi-frame bodies) ≡ one request per batch."""
        server, client = served
        hello = client.hello()
        assert client.schema_version == 2
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        view = ColumnarStreamView(walk_data, space)
        items = [
            (
                t,
                view.batch_at(t),
                view.newly_entered_at(t),
                view.quitted_at(t),
                view.n_active_at(t),
            )
            for t in range(walk_data.n_timestamps)
        ]
        for start in range(0, len(items), 4):
            ack = client.submit_batches(items[start : start + 4])
            assert ack["n_batches"] == len(items[start : start + 4])
        client.close()
        remote = client.result()
        reference = RetraSyn(
            RetraSynConfig(epsilon=1.0, w=10, seed=21)
        ).run(walk_data)
        assert _streams(remote) == _streams(reference.synthetic)

    def test_snapshot_and_stats_midstream(self, served, walk_data):
        _server, client = served
        space = TransitionStateSpace(walk_data.grid)
        view = ColumnarStreamView(walk_data, space)
        for t in range(5):
            client.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        snap = client.snapshot()
        assert isinstance(snap, np.ndarray)
        stats = client.stats()
        assert stats["ingest"]["n_submitted"] > 0
        assert stats["n_timestamps"] >= 4  # lateness 0: t=4 still open


class TestIngressErrors:
    def _raw(self, port, method, path, body=b""):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_unknown_route_is_404(self, served):
        server, _client = served
        status, msg = self._raw(server.port, "GET", "/v1/teleport")
        assert status == 404 and msg["type"] == "error"

    def test_wrong_method_is_405(self, served):
        server, _client = served
        status, msg = self._raw(server.port, "GET", "/v1/batch")
        assert status == 405 and msg["type"] == "error"

    def test_malformed_body_is_400(self, served):
        server, _client = served
        status, msg = self._raw(server.port, "POST", "/v1/batch", b"not json")
        assert status == 400 and msg["type"] == "error"

    def test_version_mismatch_is_reported(self, served):
        server, _client = served
        status, msg = self._raw(server.port, "GET", "/v1/hello?versions=99")
        assert status == 400
        assert "no common schema version" in msg["detail"]

    def test_checkpoint_without_configured_path_is_rejected(self, served):
        server, _client = served
        status, msg = self._raw(server.port, "POST", "/v1/checkpoint")
        assert status == 400 and msg["error"] == "ConfigurationError"

    def test_client_surfaces_server_errors(self, served):
        _server, client = served
        with pytest.raises(SchemaError, match="ConfigurationError"):
            client.checkpoint()


class TestServeHttpResume:
    def test_cli_http_resume_loads_the_checkpoint(
        self, walk_data, tmp_path, monkeypatch
    ):
        """`repro serve --http --resume` must restore the saved curator
        instead of silently starting fresh."""
        import argparse

        import repro.api.http as http_mod
        from repro.cli import _serve_http

        path = str(tmp_path / "serve.ckpt")
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=1, transport="ingest", checkpoint_path=path
        )
        session = create_session(
            spec, walk_data.grid, lam=max(1.0, average_length(walk_data.trajectories))
        )
        view = ColumnarStreamView(walk_data, session.curator.space)
        for t in range(7):
            session.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        session.advance()
        session.checkpoint()
        last_t = session.curator._last_t

        served = {}

        def fake_serve_http(session, host, port, on_ready=None):
            served["session"] = session
            ingress = http_mod.HttpIngress(session, host=host, port=port)
            return ingress

        monkeypatch.setattr(http_mod, "serve_http", fake_serve_http)
        args = argparse.Namespace(
            resume=True, host="127.0.0.1", http=0, out=None
        )
        assert _serve_http(args, walk_data, spec) == 0
        resumed = served["session"]
        assert resumed.curator._last_t == last_t
        assert resumed.spec.service.checkpoint_path == path

    def test_cli_http_resume_requires_a_checkpoint(self, walk_data):
        import argparse

        from repro.cli import _serve_http

        spec = SessionSpec.from_flat(epsilon=1.0, w=10, transport="ingest")
        args = argparse.Namespace(resume=True, host="127.0.0.1", http=0, out=None)
        with pytest.raises(ValueError, match="--resume requires"):
            _serve_http(args, walk_data, spec)
        spec = spec.replace(checkpoint_path="/nonexistent/x.ckpt")
        with pytest.raises(FileNotFoundError):
            _serve_http(args, walk_data, spec)


class TestIngressCheckpointing:
    def test_remote_checkpoint_writes_the_configured_path(
        self, walk_data, tmp_path
    ):
        path = str(tmp_path / "remote.ckpt")
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=2, transport="ingest", checkpoint_path=path
        )
        lam = max(1.0, average_length(walk_data.trajectories))
        server = _Server(create_session(spec, walk_data.grid, lam=lam))
        client = Client("127.0.0.1", server.port)
        try:
            space = TransitionStateSpace(walk_data.grid)
            view = ColumnarStreamView(walk_data, space)
            for t in range(6):
                client.submit_batch(
                    t, view.batch_at(t),
                    newly_entered=view.newly_entered_at(t),
                    quitted=view.quitted_at(t),
                    n_real_active=view.n_active_at(t),
                )
            assert client.checkpoint() == path
            from repro.api.session import load_session

            resumed = load_session(path)
            assert resumed.spec == spec
        finally:
            client.shutdown_server()
            server.join()
