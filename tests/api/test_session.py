"""The CuratorSession protocol, the create_session factory, and
session/batch-pipeline equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import (
    CuratorSession,
    DirectSession,
    IngestSession,
    create_session,
    load_session,
)
from repro.api.specs import SessionSpec
from repro.core.online import OnlineRetraSyn
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import average_length
from repro.stream.reports import ColumnarStreamView


def _lam(data):
    return max(1.0, average_length(data.trajectories))


def _drive(session, data, close=True):
    """Replay ``data`` through a session, timestamp by timestamp."""
    view = ColumnarStreamView(data, session.curator.space)
    for t in range(data.n_timestamps):
        session.submit_batch(
            t,
            view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )
        session.advance()
    if close:
        session.close()
    return session.result(data.n_timestamps)


def _streams(dataset):
    return [(t.start_time, list(t.cells)) for t in dataset]


class TestFactory:
    def test_three_engine_families_one_protocol(self, walk_data):
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0)
        cases = [
            (spec, DirectSession, OnlineRetraSyn),
            (spec.replace(n_shards=3), DirectSession, ShardedOnlineRetraSyn),
            (spec.replace(transport="ingest"), IngestSession, OnlineRetraSyn),
            (
                spec.replace(transport="ingest", n_shards=2),
                IngestSession,
                ShardedOnlineRetraSyn,
            ),
        ]
        for s, session_cls, curator_cls in cases:
            session = create_session(s, walk_data.grid, lam=_lam(walk_data))
            try:
                assert isinstance(session, CuratorSession)
                assert isinstance(session, session_cls)
                assert isinstance(session.curator, curator_cls)
                assert session.spec == s
            finally:
                session.close()

    def test_lam_is_required(self, walk_data):
        with pytest.raises(ConfigurationError, match="lambda"):
            create_session(SessionSpec(), walk_data.grid)

    def test_lam_from_engine_spec(self, walk_data):
        spec = SessionSpec.from_flat(lam=7.0)
        session = create_session(spec, walk_data.grid)
        assert session.curator.lam == 7.0

    def test_flat_config_is_deprecated_but_works(self, walk_data):
        config = RetraSynConfig(epsilon=1.0, w=10, seed=0)
        with pytest.warns(DeprecationWarning, match="SessionSpec"):
            session = create_session(config, walk_data.grid, lam=5.0)
        assert isinstance(session, DirectSession)


class TestEquivalence:
    """Sessions must be bit-identical to the batch pipeline for a fixed
    seed — they are the same engines behind a different surface."""

    @pytest.mark.parametrize("transport", ["direct", "ingest"])
    def test_session_matches_batch_pipeline(self, walk_data, transport):
        config = RetraSynConfig(epsilon=1.0, w=10, seed=123)
        batch_run = RetraSyn(config).run(walk_data)
        spec = config.to_spec().replace(transport=transport)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        run = _drive(session, walk_data)
        assert _streams(run.synthetic) == _streams(batch_run.synthetic)

    def test_sharded_session_matches_sharded_batch(self, walk_data):
        config = RetraSynConfig(epsilon=1.0, w=10, seed=9, n_shards=3)
        batch_run = RetraSyn(config).run(walk_data)
        session = create_session(
            config.to_spec(), walk_data.grid, lam=_lam(walk_data)
        )
        run = _drive(session, walk_data)
        assert _streams(run.synthetic) == _streams(batch_run.synthetic)

    def test_ingest_session_reorders_late_reports(self, walk_data):
        """Out-of-order submission within the lateness bound is invisible."""
        from repro.stream.ingest import UserReport

        config = RetraSynConfig(epsilon=1.0, w=10, seed=5)
        reference = RetraSyn(config).run(walk_data)

        spec = config.to_spec().replace(transport="ingest", max_lateness=1)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        view = ColumnarStreamView(walk_data, session.curator.space)
        rng = np.random.default_rng(0)
        for t0 in range(0, walk_data.n_timestamps, 2):
            rows = []
            for t in range(t0, min(t0 + 2, walk_data.n_timestamps)):
                b = view.batch_at(t)
                rows.extend(
                    UserReport.encoded(uid, t, idx, kind)
                    for uid, idx, kind in zip(
                        b.user_ids.tolist(), b.state_idx.tolist(),
                        b.kinds.tolist(),
                    )
                )
            for i in rng.permutation(len(rows)):
                session.submit_report(rows[int(i)])
            session.advance()
        session.close()
        run = session.result(walk_data.n_timestamps)
        assert _streams(run.synthetic) == _streams(reference.synthetic)


class TestSessionSurface:
    def test_snapshot_and_stats(self, walk_data):
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        _drive(session, walk_data, close=False)
        snap = session.snapshot()
        assert isinstance(snap, np.ndarray)
        assert snap.size == session.curator.synthesizer.n_live
        stats = session.stats()
        assert stats["n_timestamps"] == walk_data.n_timestamps
        assert stats["last_t"] == walk_data.n_timestamps - 1
        assert stats["privacy"]["satisfied"] is True
        session.close()

    def test_ingest_stats_section(self, walk_data):
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0, transport="ingest")
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        _drive(session, walk_data, close=False)
        stats = session.stats()
        assert stats["ingest"]["n_submitted"] > 0
        session.close()
        assert session.stats()["n_timestamps"] == walk_data.n_timestamps

    def test_result_defaults_to_processed_horizon(self, walk_data):
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        view = ColumnarStreamView(walk_data, session.curator.space)
        for t in range(4):
            session.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        session.advance()
        run = session.result()
        assert run.synthetic.n_timestamps == 4
        assert "RetraSyn_p" in run.synthetic.name

    def test_direct_close_drains_staged_batches(self, walk_data):
        """close() is end-of-stream for every transport: staged-but-not-
        advanced batches must be processed, like the ingest flush."""
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        view = ColumnarStreamView(walk_data, session.curator.space)
        for t in range(walk_data.n_timestamps):
            session.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        session.close()  # no explicit advance()
        assert session.stats()["n_timestamps"] == walk_data.n_timestamps

    def test_close_is_idempotent(self, walk_data):
        spec = SessionSpec.from_flat(epsilon=1.0, w=10, seed=0)
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        session.close()
        session.close()

    def test_checkpoint_without_path_raises(self, walk_data):
        session = create_session(
            SessionSpec.from_flat(seed=0), walk_data.grid, lam=5.0
        )
        with pytest.raises(ConfigurationError, match="checkpoint"):
            session.checkpoint()


class TestSessionCheckpointing:
    @pytest.mark.parametrize("transport", ["direct", "ingest"])
    def test_resume_is_bitwise(self, walk_data, tmp_path, transport):
        path = str(tmp_path / "session.ckpt")
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=7, transport=transport, checkpoint_path=path
        )
        uninterrupted = create_session(
            spec, walk_data.grid, lam=_lam(walk_data)
        )
        reference = _drive(uninterrupted, walk_data)

        first = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        view = ColumnarStreamView(walk_data, first.curator.space)
        cut = walk_data.n_timestamps // 2
        for t in range(cut):
            first.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
            first.advance()
        first.checkpoint()

        resumed = load_session(path)
        assert resumed.spec == spec
        view2 = ColumnarStreamView(walk_data, resumed.curator.space)
        # Replay from the curator's frontier: with the ingest transport the
        # assembler may have held back still-open timestamps at checkpoint
        # time (watermarking), and producers resend from _last_t + 1.
        for t in range(resumed.curator._last_t + 1, walk_data.n_timestamps):
            resumed.submit_batch(
                t, view2.batch_at(t),
                newly_entered=view2.newly_entered_at(t),
                quitted=view2.quitted_at(t),
                n_real_active=view2.n_active_at(t),
            )
            resumed.advance()
        resumed.close()
        run = resumed.result(walk_data.n_timestamps)
        assert _streams(run.synthetic) == _streams(reference.synthetic)

    def test_periodic_checkpoints_written(self, walk_data, tmp_path):
        path = str(tmp_path / "cadence.ckpt")
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=0, transport="ingest",
            checkpoint_path=path, checkpoint_every=5,
        )
        session = create_session(spec, walk_data.grid, lam=_lam(walk_data))
        _drive(session, walk_data)
        # periodic ones plus the final close() checkpoint
        expected = walk_data.n_timestamps // 5 + 1
        assert session.ingest_stats.checkpoints_written == expected
