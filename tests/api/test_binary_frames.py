"""Schema v2 binary frames: differential pins against the JSON v1 reference.

Every message must decode to bit-identical arrays whichever encoding
carried it — v1 base64 JSON stays the reference implementation, v2 frames
are the fast path.  These tests pin that equivalence for all ReportBatch
dtypes (including empty batches and max-uid int64 edges), frame
concatenation (pipelining), and the malformed-frame rejection paths an
ingress must survive.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.api import schema
from repro.api.schema import SchemaError
from repro.stream.reports import ReportBatch

INT64_MAX = np.iinfo(np.int64).max
INT64_MIN = np.iinfo(np.int64).min


def _batch(n=64, seed=0):
    rng = np.random.default_rng(seed)
    return ReportBatch.from_arrays(
        rng.integers(0, 10**9, size=n),
        rng.integers(-1, 500, size=n),
        rng.integers(0, 3, size=n),
    )


def _via_json(msg_v1: dict) -> dict:
    return schema.loads(schema.dumps(msg_v1))


def _via_frame(msg_v2: dict) -> dict:
    return schema.loads_any(schema.dump_frame(msg_v2))


def _assert_batch_tuples_identical(a, b):
    t_a, batch_a, ent_a, quit_a, n_a = a
    t_b, batch_b, ent_b, quit_b, n_b = b
    assert t_a == t_b and n_a == n_b
    for col in ("user_ids", "state_idx", "kinds"):
        x, y = getattr(batch_a, col), getattr(batch_b, col)
        assert x.dtype == y.dtype, col
        np.testing.assert_array_equal(x, y)
    for x, y in ((ent_a, ent_b), (quit_a, quit_b)):
        assert x.dtype == y.dtype
        np.testing.assert_array_equal(x, y)


class TestNegotiation:
    def test_v2_is_preferred(self):
        assert schema.SCHEMA_VERSION == 2
        assert schema.negotiate([1, 2]) == 2
        assert schema.negotiate([2, 99]) == 2

    def test_v1_only_peers_still_speak_json(self):
        assert schema.negotiate([1]) == 1

    def test_frame_versions_are_supported_versions(self):
        assert set(schema.FRAME_VERSIONS) <= set(schema.SUPPORTED_VERSIONS)


class TestReportBatchDifferential:
    """v1 JSON and v2 frame decode to bit-identical report batches."""

    def _both(self, t, batch, entered, quitted, n_active):
        v1 = schema.report_batch_message(
            t, batch, entered, quitted, n_active, version=1
        )
        v2 = schema.report_batch_message(
            t, batch, entered, quitted, n_active, version=2
        )
        return (
            schema.parse_report_batch(_via_json(v1)),
            schema.parse_report_batch(_via_frame(v2)),
        )

    def test_random_batch(self):
        a, b = self._both(3, _batch(257), [10, 11], [12], 200)
        _assert_batch_tuples_identical(a, b)

    def test_empty_batch(self):
        a, b = self._both(0, ReportBatch.empty(), [], [], 0)
        _assert_batch_tuples_identical(a, b)
        assert len(b[1]) == 0
        assert b[1].user_ids.dtype == np.int64
        assert b[1].kinds.dtype == np.int8

    def test_max_uid_edges(self):
        """int64 extremes survive both encodings bit-identically."""
        batch = ReportBatch.from_arrays(
            [0, INT64_MAX, INT64_MAX - 1, INT64_MIN],
            [-1, 0, 499, 1],
            [1, 0, 0, 2],
        )
        a, b = self._both(7, batch, [INT64_MAX], [INT64_MIN], 4)
        _assert_batch_tuples_identical(a, b)
        assert b[1].user_ids[1] == INT64_MAX

    def test_all_kind_codes(self):
        from repro.stream.reports import KIND_ENTER, KIND_MOVE, KIND_QUIT

        batch = ReportBatch.from_arrays(
            [1, 2, 3], [5, -1, -1], [KIND_MOVE, KIND_ENTER, KIND_QUIT]
        )
        a, b = self._both(1, batch, [2], [3], 3)
        _assert_batch_tuples_identical(a, b)

    def test_seeded_sweep(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(0, 400))
            a, b = self._both(
                int(rng.integers(0, 100)),
                _batch(n, seed=seed),
                rng.integers(0, 10**6, size=int(rng.integers(0, 8))),
                rng.integers(0, 10**6, size=int(rng.integers(0, 8))),
                n,
            )
            _assert_batch_tuples_identical(a, b)

    def test_frame_payload_bytes_match_v1_buffers(self):
        """The frame payload IS the v1 base64 plaintext, concatenated."""
        import base64

        batch = _batch(33, seed=5)
        v1 = schema.report_batch_message(2, batch, [9], [], 33, version=1)
        v2 = schema.report_batch_message(2, batch, [9], [], 33, version=2)
        blob = schema.dump_frame(v2)
        header_len, payload_len = struct.unpack_from("<II", blob, 4)
        payload = blob[12 + header_len :]
        assert len(payload) == payload_len
        joined = b"".join(
            base64.b64decode(v1[col])
            for col in ("user_ids", "state_idx", "kinds",
                        "newly_entered", "quitted")
        )
        assert payload == joined


class TestResultAndSnapshotDifferential:
    def test_result_round_trip_identical(self):
        births = np.asarray([0, 2, 5, 9])
        lengths = np.asarray([3, 1, 2, 4])
        flat = np.arange(10) + 100
        uids = np.asarray([7, 0, 3, INT64_MAX])
        args = (births, lengths, flat, 12, "syn", uids)
        a = schema.parse_result(
            _via_json(schema.result_message(*args, version=1))
        )
        b = schema.parse_result(
            _via_frame(schema.result_message(*args, version=2))
        )
        for x, y in zip(a, b):
            if isinstance(x, np.ndarray):
                assert x.dtype == y.dtype
                np.testing.assert_array_equal(x, y)
            else:
                assert x == y

    def test_snapshot_round_trip_identical(self):
        cells = np.asarray([3, 1, 4, 1, 5, INT64_MAX])
        a = schema.parse_snapshot(
            _via_json(schema.snapshot_message(cells, version=1))
        )
        b = schema.parse_snapshot(
            _via_frame(schema.snapshot_message(cells, version=2))
        )
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)

    def test_empty_result(self):
        empty = np.empty(0, dtype=np.int64)
        msg = schema.result_message(empty, empty, empty, 5, "e", empty,
                                    version=2)
        b, le, f, n_t, name, u = schema.parse_result(_via_frame(msg))
        assert b.size == le.size == f.size == u.size == 0
        assert n_t == 5 and name == "e"


class TestPipelining:
    """Frames are length-prefixed, so bodies concatenate."""

    def test_iter_frames_splits_concatenation(self):
        blobs, batches = [], []
        for t in range(5):
            batch = _batch(10 + t, seed=t)
            batches.append(batch)
            blobs.append(schema.dump_frame(schema.report_batch_message(
                t, batch, [], [], len(batch), version=2
            )))
        body = b"".join(blobs)
        msgs = list(schema.iter_frames(body, expect="report-batch"))
        assert len(msgs) == 5
        for t, (msg, batch) in enumerate(zip(msgs, batches)):
            got_t, got, _e, _q, _n = schema.parse_report_batch(msg)
            assert got_t == t
            np.testing.assert_array_equal(got.user_ids, batch.user_ids)

    def test_iter_frames_includes_empty_batches(self):
        body = schema.dump_frame(schema.report_batch_message(
            0, ReportBatch.empty(), [], [], 0, version=2
        )) * 3
        assert len(list(schema.iter_frames(body))) == 3

    def test_loads_any_rejects_pipelined_body(self):
        body = schema.dump_frame(schema.snapshot_message([1], version=2)) * 2
        with pytest.raises(SchemaError, match="iter_frames"):
            schema.loads_any(body)

    def test_loads_any_sniffs_encoding(self):
        assert schema.loads_any(schema.dumps(schema.message("ack", version=1)))[
            "schema"
        ] == 1
        blob = schema.dump_frame(schema.snapshot_message([4], version=2))
        assert schema.loads_any(blob)["schema"] == 2
        assert schema.is_frame(blob)
        assert not schema.is_frame(b'{"schema":1}')


class TestRejectionPaths:
    def test_truncated_prefix(self):
        with pytest.raises(SchemaError, match="truncated"):
            schema.load_frame(b"RSF2\x01")

    def test_bad_magic(self):
        with pytest.raises(SchemaError, match="magic"):
            schema.load_frame(b"XXXX" + b"\x00" * 8)

    def test_truncated_body(self):
        blob = schema.dump_frame(schema.snapshot_message([1, 2], version=2))
        with pytest.raises(SchemaError, match="truncated"):
            schema.load_frame(blob[:-3])

    def test_payload_overrun_declared_in_manifest(self):
        """A manifest claiming more elements than the payload holds."""
        blob = bytearray(
            schema.dump_frame(schema.snapshot_message([1, 2], version=2))
        )
        header_len, payload_len = struct.unpack_from("<II", blob, 4)
        header = bytes(blob[12 : 12 + header_len]).replace(
            b'["cells",2]', b'["cells",9]'
        )
        tampered = (
            b"RSF2" + struct.pack("<II", len(header), payload_len)
            + header + bytes(blob[12 + header_len :])
        )
        with pytest.raises(SchemaError, match="overruns"):
            schema.load_frame(tampered)

    def test_payload_underrun(self):
        """Payload bytes beyond the manifest are rejected, not ignored."""
        blob = schema.dump_frame(schema.snapshot_message([1, 2], version=2))
        header_len, payload_len = struct.unpack_from("<II", blob, 4)
        inflated = (
            blob[:4] + struct.pack("<II", header_len, payload_len + 8)
            + blob[12:] + b"\x00" * 8
        )
        with pytest.raises(SchemaError, match="beyond"):
            schema.load_frame(inflated)

    def test_unknown_column_in_manifest(self):
        blob = schema.dump_frame(schema.snapshot_message([1], version=2))
        header_len, payload_len = struct.unpack_from("<II", blob, 4)
        header = bytes(blob[12 : 12 + header_len]).replace(b'"cells"', b'"sells"')
        tampered = (
            b"RSF2" + struct.pack("<II", len(header), payload_len)
            + header + blob[12 + header_len :]
        )
        with pytest.raises(SchemaError, match="unknown wire column"):
            schema.load_frame(tampered)

    def test_oversized_header_bound(self):
        huge = b"RSF2" + struct.pack("<II", 2 * 1024 * 1024, 0)
        with pytest.raises(SchemaError, match="bound"):
            schema.load_frame(huge + b"\x00" * 16)

    def test_dump_frame_rejects_v1(self):
        with pytest.raises(SchemaError, match="no frame encoding"):
            schema.dump_frame(schema.message("ack", version=1))

    def test_decode_array_rejects_wrong_dtype_passthrough(self):
        with pytest.raises(SchemaError, match="dtype"):
            schema.decode_array("kinds", np.asarray([1, 2], dtype=np.int64))

    def test_frame_validation_still_applies(self):
        """Envelope rules (version/type/expect) hold on the frame path."""
        msg = schema.snapshot_message([1], version=2)
        blob = schema.dump_frame(msg)
        with pytest.raises(SchemaError, match="expected"):
            schema.load_frame(blob, expect="stats")
