"""End-to-end smoke: boot the real `repro serve --http` CLI in a
subprocess, drive it with `repro.api.Client`, and assert the remote
output is bit-identical to the equivalent in-process session.

This is the test the CI ``http-smoke`` job runs.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

import pytest

from repro.api.client import Client
from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.datasets.io import save_stream_dataset
from repro.datasets.synthetic import make_random_walks
from repro.stream.reports import ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace

_LISTEN_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


@pytest.fixture
def dataset(tmp_path):
    data = make_random_walks(k=5, n_streams=60, n_timestamps=20, seed=4)
    path = tmp_path / "walks.npz"
    save_stream_dataset(data, path)
    return data, path


def test_cli_http_serve_round_trip(dataset, tmp_path):
    data, path = dataset
    out_path = tmp_path / "remote_syn.npz"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--input", str(path), "--http", "0",
            "--epsilon", "1.0", "--w", "10", "--seed", "17",
            "--engine", "object", "--out", str(out_path),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        port = None
        for line in proc.stdout:
            found = _LISTEN_RE.search(line)
            if found:
                port = int(found.group(1))
                break
        assert port is not None, "server never reported its port"

        client = Client("127.0.0.1", port)
        hello = client.hello()
        space = TransitionStateSpace(
            client.grid(), include_entering_quitting=hello["include_eq"]
        )
        view = ColumnarStreamView(data, space)
        for t in range(data.n_timestamps):
            client.submit_batch(
                t, view.batch_at(t),
                newly_entered=view.newly_entered_at(t),
                quitted=view.quitted_at(t),
                n_real_active=view.n_active_at(t),
            )
        client.close()
        remote = client.result()
        client.shutdown_server()
        tail = proc.stdout.read()
        assert proc.wait(timeout=30) == 0, tail
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()

    reference = RetraSyn(RetraSynConfig(epsilon=1.0, w=10, seed=17)).run(data)
    assert (
        [(t.start_time, list(t.cells)) for t in remote]
        == [(t.start_time, list(t.cells)) for t in reference.synthetic]
    )
    # the CLI also wrote the same streams to --out
    from repro.datasets.io import load_stream_dataset

    written = load_stream_dataset(out_path)
    assert (
        [(t.start_time, list(t.cells)) for t in written]
        == [(t.start_time, list(t.cells)) for t in reference.synthetic]
    )
    assert "privacy audit" in tail
