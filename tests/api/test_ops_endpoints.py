"""The operational plane of the HTTP ingress: /metrics, probes, drain."""

from __future__ import annotations

import asyncio
import http.client
import re
import threading

import pytest

from repro.api.client import Client
from repro.api.http import HttpIngress
from repro.api.session import create_session
from repro.api.specs import SessionSpec
from repro.geo.trajectory import average_length
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.stream.reports import ColumnarStreamView
from repro.stream.state_space import TransitionStateSpace

#: One exposition line: `name{labels} value` with a float/int/±Inf/NaN value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)


class _Server:
    """An ingress running on a background thread's event loop."""

    def __init__(self, session):
        self.ingress = HttpIngress(session)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):  # pragma: no cover - diagnostics
            raise RuntimeError("ingress did not come up")

    def _run(self):
        async def main():
            await self.ingress.start()
            self._ready.set()
            await self.ingress.serve_until_shutdown()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self.ingress.port

    def join(self):
        self._thread.join(10)


def _get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


@pytest.fixture
def served(walk_data):
    spec = SessionSpec.from_flat(
        epsilon=1.0, w=10, seed=21, transport="ingest"
    )
    lam = max(1.0, average_length(walk_data.trajectories))
    server = _Server(create_session(spec, walk_data.grid, lam=lam))
    client = Client("127.0.0.1", server.port)
    yield server, client
    try:
        client.shutdown_server()
    except Exception:
        pass
    server.join()


def _replay(client, data, n: int):
    hello = client.hello()
    space = TransitionStateSpace(
        client.grid(), include_entering_quitting=hello["include_eq"]
    )
    view = ColumnarStreamView(data, space)
    for t in range(n):
        client.submit_batch(
            t,
            view.batch_at(t),
            newly_entered=view.newly_entered_at(t),
            quitted=view.quitted_at(t),
            n_real_active=view.n_active_at(t),
        )


class TestProbes:
    def test_healthz_is_always_alive(self, served):
        server, _client = served
        status, ctype, body = _get(server.port, "/healthz")
        assert status == 200
        assert body == "ok\n"
        assert ctype.startswith("text/plain")

    def test_readyz_reports_ready_once_serving(self, served):
        server, _client = served
        status, _ctype, body = _get(server.port, "/readyz")
        assert status == 200
        assert body == "ready\n"

    def test_readyz_flips_to_503_while_draining(self, served):
        server, _client = served
        server.ingress._draining = True
        try:
            status, _ctype, body = _get(server.port, "/readyz")
            assert status == 503
            assert body == "draining\n"
        finally:
            server.ingress._draining = False

    def test_batch_rejected_with_503_while_draining(self, served, walk_data):
        server, client = served
        server.ingress._draining = True
        try:
            with pytest.raises(Exception):
                _replay(client, walk_data, 1)
        finally:
            server.ingress._draining = False


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, served, walk_data):
        server, client = served
        _replay(client, walk_data, 8)
        status, ctype, body = _get(server.port, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_scrape_exposes_the_operational_families(self, served, walk_data):
        server, client = served
        _replay(client, walk_data, 8)
        _status, _ctype, body = _get(server.port, "/metrics")
        for name in (
            "retrasyn_ingest_submitted_total",
            "retrasyn_ingest_processed_total",
            "retrasyn_ingest_backlog",
            "retrasyn_ingest_backlog_high_water",
            "retrasyn_ingest_watermark_lag",
            "retrasyn_round_seconds_bucket",
            "retrasyn_round_seconds_count",
            "retrasyn_rounds_total",
            "retrasyn_live_streams",
            "retrasyn_privacy_spend_events_total",
            "retrasyn_privacy_refusals_total",
            "retrasyn_privacy_max_window_spend",
        ):
            assert name in body, f"missing metric {name}"

    def test_counters_track_the_load(self, served, walk_data):
        server, client = served
        _replay(client, walk_data, 8)
        _status, _ctype, body = _get(server.port, "/metrics")
        samples = {
            line.split(" ")[0]: float(line.split(" ")[1])
            for line in body.splitlines()
            if line and not line.startswith("#") and "{" not in line
        }
        stats = client.stats()["ingest"]
        assert samples["retrasyn_ingest_submitted_total"] == stats["n_submitted"]
        assert samples["retrasyn_ingest_submitted_total"] > 0
        # watermark closes t <= 8-1-1: seven rounds processed, spends recorded
        assert samples["retrasyn_rounds_total"] >= 1
        assert samples["retrasyn_privacy_spend_events_total"] > 0
        assert samples["retrasyn_round_seconds_count"] == samples[
            "retrasyn_rounds_total"
        ]

    def test_distributed_executor_exposes_per_shard_round_gauges(
        self, walk_data
    ):
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=21, transport="ingest",
            n_shards=2, shard_executor="distributed",
        )
        lam = max(1.0, average_length(walk_data.trajectories))
        server = _Server(create_session(spec, walk_data.grid, lam=lam))
        client = Client("127.0.0.1", server.port)
        try:
            _replay(client, walk_data, 6)
            _status, _ctype, body = _get(server.port, "/metrics")
            assert "# TYPE retrasyn_shard_round_seconds gauge" in body
            for shard in (0, 1):
                pattern = re.compile(
                    r'retrasyn_shard_round_seconds\{shard="%d"\} '
                    r"\d+(\.\d+)?([eE][+-]?\d+)?" % shard
                )
                assert pattern.search(body), f"no round gauge for shard {shard}"
        finally:
            try:
                client.shutdown_server()
            except Exception:
                pass
            server.join()

    def test_scrape_survives_a_closed_session(self, served, walk_data):
        """Projection callbacks over a finalised curator must not 500."""
        server, client = served
        _replay(client, walk_data, 4)
        client.close()
        status, _ctype, body = _get(server.port, "/metrics")
        assert status == 200
        assert "retrasyn_ingest_submitted_total" in body


class TestGracefulDrain:
    def test_drain_finishes_rounds_checkpoints_and_stops(
        self, walk_data, tmp_path
    ):
        ck = tmp_path / "drain.pkl"
        spec = SessionSpec.from_flat(
            epsilon=1.0, w=10, seed=21, transport="ingest",
            checkpoint_path=str(ck), drain_deadline=15.0,
        )
        lam = max(1.0, average_length(walk_data.trajectories))

        async def main():
            session = create_session(spec, walk_data.grid, lam=lam)
            ingress = HttpIngress(session)
            await ingress.start()
            client = Client("127.0.0.1", ingress.port)
            await asyncio.to_thread(_replay, client, walk_data, 6)
            ingress.begin_drain()
            await asyncio.wait_for(ingress.serve_until_shutdown(), 15)
            return ingress

        ingress = asyncio.run(main())
        assert ingress._draining
        from repro.core.persistence import checkpoint_exists

        assert checkpoint_exists(str(ck))
        assert ingress.session.curator._last_t is not None

    def test_begin_drain_is_idempotent(self, served):
        server, _client = served

        async def poke():
            server.ingress.begin_drain()
            server.ingress.begin_drain()

        # begin_drain needs the ingress loop; run it there.
        fut = asyncio.run_coroutine_threadsafe(
            poke(), server.ingress._server.get_loop()
        )
        fut.result(10)
        deadline = 10.0
        server._thread.join(deadline)
        assert not server._thread.is_alive()
