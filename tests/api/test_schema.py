"""Wire-schema round trips, version negotiation and rejection paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import schema
from repro.api.schema import SchemaError
from repro.stream.reports import ReportBatch


def _batch(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return ReportBatch.from_arrays(
        rng.integers(0, 1_000_000, size=n),
        rng.integers(-1, 500, size=n),
        rng.integers(0, 3, size=n),
    )


class TestNegotiation:
    def test_picks_highest_common(self):
        assert schema.negotiate([1]) == 1
        assert schema.negotiate([1, 99]) == 1
        assert schema.negotiate(["1"]) == 1

    def test_no_common_version(self):
        with pytest.raises(SchemaError, match="no common schema version"):
            schema.negotiate([99])

    def test_unparseable_versions(self):
        with pytest.raises(SchemaError):
            schema.negotiate(["one"])


class TestArrayCodec:
    def test_round_trip_is_lossless(self):
        values = np.asarray([0, 1, -1, 2**62, -(2**62)], dtype=np.int64)
        decoded = schema.decode_array(
            "user_ids", schema.encode_array("user_ids", values)
        )
        assert decoded.dtype == np.int64
        np.testing.assert_array_equal(decoded, values)

    def test_kinds_are_int8(self):
        decoded = schema.decode_array(
            "kinds", schema.encode_array("kinds", [0, 1, 2])
        )
        assert decoded.dtype == np.int8

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            schema.encode_array("payload", [1])
        with pytest.raises(SchemaError):
            schema.decode_array("payload", "AA==")

    def test_bad_base64(self):
        with pytest.raises(SchemaError):
            schema.decode_array("user_ids", "!!not-base64!!")

    def test_misaligned_buffer(self):
        import base64

        data = base64.b64encode(b"\x00" * 7).decode()
        with pytest.raises(SchemaError, match="multiple"):
            schema.decode_array("user_ids", data)


class TestEnvelopes:
    def test_loads_rejects_bad_version(self):
        msg = schema.message("ack")
        msg["schema"] = 99
        with pytest.raises(SchemaError, match="unsupported schema version"):
            schema.loads(schema.dumps(msg))

    def test_loads_rejects_unknown_type(self):
        raw = b'{"schema": 1, "type": "teleport"}'
        with pytest.raises(SchemaError, match="unknown message type"):
            schema.loads(raw)

    def test_loads_rejects_non_object(self):
        with pytest.raises(SchemaError):
            schema.loads(b"[1, 2]")
        with pytest.raises(SchemaError):
            schema.loads(b"\xff\xfe")

    def test_expect_mismatch(self):
        with pytest.raises(SchemaError, match="expected"):
            schema.loads(schema.dumps(schema.message("ack")), expect="stats")

    def test_expect_surfaces_error_messages(self):
        err = schema.error_message(ValueError("boom"))
        with pytest.raises(SchemaError, match="boom"):
            schema.loads(schema.dumps(err), expect="stats")

    def test_message_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            schema.message("telemetry")


class TestReportBatchMessage:
    def test_round_trip(self):
        batch = _batch(7)
        msg = schema.report_batch_message(
            3, batch, [10, 11], [12], n_real_active=6, version=1
        )
        parsed = schema.loads(schema.dumps(msg), expect="report-batch")
        t, decoded, entered, quitted, n_active = schema.parse_report_batch(parsed)
        assert t == 3 and n_active == 6
        np.testing.assert_array_equal(decoded.user_ids, batch.user_ids)
        np.testing.assert_array_equal(decoded.state_idx, batch.state_idx)
        np.testing.assert_array_equal(decoded.kinds, batch.kinds)
        np.testing.assert_array_equal(entered, [10, 11])
        np.testing.assert_array_equal(quitted, [12])

    def test_empty_batch(self):
        msg = schema.report_batch_message(0, ReportBatch.empty(), [], [], 0)
        _t, decoded, entered, quitted, _n = schema.parse_report_batch(msg)
        assert len(decoded) == 0 and entered.size == 0 and quitted.size == 0

    def test_length_disagreement(self):
        msg = schema.report_batch_message(0, _batch(4), [], [], 4)
        msg["n"] = 5
        with pytest.raises(SchemaError, match="disagrees"):
            schema.parse_report_batch(msg)

    def test_missing_column(self):
        msg = schema.report_batch_message(0, _batch(4), [], [], 4)
        del msg["state_idx"]
        with pytest.raises(SchemaError, match="malformed"):
            schema.parse_report_batch(msg)


class TestResultMessage:
    def test_round_trip(self):
        births = np.asarray([0, 2, 5])
        lengths = np.asarray([3, 1, 2])
        flat = np.asarray([4, 5, 6, 7, 8, 9])
        uids = np.asarray([7, 0, 3])
        msg = schema.result_message(
            births, lengths, flat, 10, "syn", uids, version=1
        )
        b, le, f, n_t, name, u = schema.parse_result(
            schema.loads(schema.dumps(msg), expect="result")
        )
        np.testing.assert_array_equal(b, births)
        np.testing.assert_array_equal(le, lengths)
        np.testing.assert_array_equal(f, flat)
        np.testing.assert_array_equal(u, uids)
        assert n_t == 10 and name == "syn"

    def test_inconsistent_lengths(self):
        msg = schema.result_message([0], [2], [1, 2], 5, "x", [0])
        msg["flat_cells"] = schema.encode_array("flat_cells", [1])
        with pytest.raises(SchemaError, match="disagrees"):
            schema.parse_result(msg)

    def test_inconsistent_user_ids(self):
        msg = schema.result_message([0], [2], [1, 2], 5, "x", [0])
        msg["user_ids"] = schema.encode_array("user_ids", [0, 1])
        with pytest.raises(SchemaError, match="disagree"):
            schema.parse_result(msg)

    def test_snapshot_round_trip(self):
        cells = np.asarray([3, 1, 4, 1, 5])
        out = schema.parse_snapshot(
            schema.loads(
                schema.dumps(schema.snapshot_message(cells, version=1)),
                expect="snapshot",
            )
        )
        np.testing.assert_array_equal(out, cells)
