"""Terminal visualisation helpers (no plotting dependencies).

matplotlib is deliberately not a dependency; these helpers render the
objects analysts look at — density grids, time series, transition matrices —
as compact ASCII art for terminals, logs and docstrings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid

#: Characters from empty to full intensity.
_RAMP = " .:-=+*#%@"


def _intensity(value: float, hi: float) -> str:
    if hi <= 0:
        return _RAMP[0]
    level = int(min(value / hi, 1.0) * (len(_RAMP) - 1))
    return _RAMP[level]


def density_heatmap(
    grid: Grid,
    counts: np.ndarray,
    title: Optional[str] = None,
) -> str:
    """Render per-cell counts as a K×K character grid.

    Row 0 of the grid (smallest y) is printed at the *bottom*, matching map
    orientation.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.shape != (grid.n_cells,):
        raise ConfigurationError(
            f"expected {grid.n_cells} cell counts, got shape {counts.shape}"
        )
    hi = counts.max()
    lines = []
    if title:
        lines.append(title)
    for row in range(grid.k - 1, -1, -1):
        cells = [counts[grid.rowcol_to_cell(row, col)] for col in range(grid.k)]
        lines.append("|" + "".join(_intensity(v, hi) * 2 for v in cells) + "|")
    lines.append("+" + "-" * (2 * grid.k) + "+")
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two ASCII blocks horizontally (for real-vs-synthetic views)."""
    l_lines = left.splitlines()
    r_lines = right.splitlines()
    height = max(len(l_lines), len(r_lines))
    width = max((len(ln) for ln in l_lines), default=0)
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    return "\n".join(
        f"{ln:<{width}}{' ' * gap}{r}" for ln, r in zip(l_lines, r_lines)
    )


def timeseries(
    values: Sequence[float],
    width: int = 60,
    height: int = 8,
    label: str = "",
) -> str:
    """Render a numeric series as a fixed-size ASCII line chart."""
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must both be >= 2")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label} (empty series)"
    # Average-pool to the requested width.
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray(
            [arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * arr.size for _ in range(height)]
    for x, v in enumerate(arr):
        y = int((v - lo) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    out = []
    if label:
        out.append(f"{label}  [min={lo:.4g}, max={hi:.4g}]")
    out.extend("".join(r) for r in rows)
    return "\n".join(out)


def transition_matrix_view(
    grid: Grid,
    matrix: np.ndarray,
    max_cells: int = 12,
) -> str:
    """Compact view of a |C|×|C| transition matrix (top rows by mass)."""
    matrix = np.asarray(matrix, dtype=float)
    n = grid.n_cells
    if matrix.shape != (n, n):
        raise ConfigurationError(
            f"expected a {n}x{n} matrix, got shape {matrix.shape}"
        )
    mass = matrix.sum(axis=1)
    order = np.argsort(mass)[::-1][:max_cells]
    hi = matrix.max()
    lines = ["origin -> strongest destinations"]
    for origin in order:
        if mass[origin] <= 0:
            continue
        dests = np.argsort(matrix[origin])[::-1][:3]
        parts = ", ".join(
            f"{int(d)}:{matrix[origin, d]:.3f}" for d in dests if matrix[origin, d] > 0
        )
        bar = _intensity(mass[origin], hi if hi > 0 else 1.0) * 3
        lines.append(f"  {int(origin):>4} {bar} {parts}")
    return "\n".join(lines)
