"""Density Error: per-timestamp spatial-distribution divergence."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.divergence import jensen_shannon_divergence
from repro.stream.stream import StreamDataset


def evaluation_timestamps(
    real: StreamDataset, max_eval: int = 100
) -> np.ndarray:
    """Timestamps with real activity, evenly subsampled to ``max_eval``.

    Shared by the per-timestamp streaming metrics so a method is scored on
    the same slices across metrics.
    """
    active = real.active_counts()
    candidates = np.flatnonzero(active > 0)
    if candidates.size == 0:
        return np.zeros(0, dtype=np.int64)
    if candidates.size <= max_eval:
        return candidates
    picks = np.linspace(0, candidates.size - 1, max_eval).astype(np.int64)
    return candidates[picks]


def density_error(
    real: StreamDataset,
    syn: StreamDataset,
    timestamps: Optional[Sequence[int]] = None,
    max_eval: int = 100,
) -> float:
    """Mean JSD between real and synthetic cell-density distributions.

    For each evaluated timestamp the density is the normalised histogram of
    active users over grid cells (paper Section V-B, "Density Error").
    """
    if timestamps is None:
        timestamps = evaluation_timestamps(real, max_eval)
    timestamps = np.asarray(timestamps, dtype=np.int64)
    if timestamps.size == 0:
        return 0.0
    real_counts = real.cell_counts_matrix()
    syn_counts = syn.cell_counts_matrix()
    divs = [
        jensen_shannon_divergence(real_counts[t], syn_counts[t])
        for t in timestamps
    ]
    return float(np.mean(divs))
