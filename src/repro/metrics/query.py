"""Spatio-temporal range-query error (paper Section V-B, "Query Error").

A query ``Q(T)`` counts the spatial points of dataset ``T`` falling inside a
random rectangular region during a random time range of size φ.  The error
of one query is the relative error with a **sanity bound** that caps the
influence of queries with very small true counts (the convention of
AdaTrace / LDPTrace, which the paper follows)::

    err(Q) = |Q(T_orig) − Q(T_syn)| / max(Q(T_orig), s)

where ``s`` is ``sanity_fraction`` of the average per-window point count.
The reported metric is the mean over ``n_queries`` random queries.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset


def _window_region_count(
    counts: np.ndarray, cells: np.ndarray, t0: int, t1: int
) -> float:
    """Points in ``cells`` during closed interval ``[t0, t1]``."""
    if cells.size == 0:
        return 0.0
    return float(counts[t0 : t1 + 1][:, cells].sum())


def query_error(
    real: StreamDataset,
    syn: StreamDataset,
    phi: int = 10,
    n_queries: int = 100,
    sanity_fraction: float = 0.01,
    region_fraction_range: tuple[float, float] = (0.2, 0.5),
    rng: RngLike = None,
) -> float:
    """Mean relative error of random range queries of time-size ``phi``."""
    rng = ensure_rng(rng)
    grid = real.grid
    real_counts = real.cell_counts_matrix()
    syn_counts = syn.cell_counts_matrix()
    horizon = real.n_timestamps
    phi = max(1, min(phi, horizon))
    # Sanity bound: a fraction of the average total points per φ-window.
    avg_window_points = real_counts.sum() / max(1, horizon - phi + 1)
    sanity = max(1.0, sanity_fraction * avg_window_points)

    errors = []
    for _ in range(n_queries):
        frac = rng.uniform(*region_fraction_range)
        region = grid.random_region(rng, frac)
        cells = np.asarray(grid.cells_in_region(region), dtype=np.int64)
        t0 = int(rng.integers(0, max(1, horizon - phi + 1)))
        t1 = t0 + phi - 1
        r = _window_region_count(real_counts, cells, t0, t1)
        s = _window_region_count(syn_counts, cells, t0, t1)
        errors.append(abs(r - s) / max(r, sanity))
    return float(np.mean(errors))
