"""Transition Error: single-timestamp movement-distribution divergence."""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

import numpy as np

from repro.metrics.density import evaluation_timestamps
from repro.metrics.divergence import jsd_from_counts
from repro.stream.stream import StreamDataset


def transition_error(
    real: StreamDataset,
    syn: StreamDataset,
    timestamps: Optional[Sequence[int]] = None,
    max_eval: int = 100,
) -> float:
    """Mean JSD between real and synthetic per-timestamp transition
    distributions (paper Section V-B, "Transition Error").

    The transition distribution at ``t`` is the normalised histogram over
    movement pairs ``(c_{t-1}, c_t)`` of streams that moved into ``t``.
    """
    if timestamps is None:
        timestamps = evaluation_timestamps(real, max_eval)
    divs = []
    for t in np.asarray(timestamps, dtype=np.int64):
        if t == 0:
            continue
        real_tr = Counter(real.transitions_at(int(t)))
        syn_tr = Counter(syn.transitions_at(int(t)))
        if not real_tr and not syn_tr:
            continue
        divs.append(jsd_from_counts(real_tr, syn_tr))
    if not divs:
        return 0.0
    return float(np.mean(divs))
