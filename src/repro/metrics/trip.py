"""Trip Error: divergence of the joint (start, end) cell distribution.

A *trip* is one trajectory's first and last reported cell.  Following
AdaTrace (and the paper), the metric is the JSD between the real and
synthetic joint distributions over ``|C|^2`` (start, end) pairs.
"""

from __future__ import annotations

from collections import Counter

from repro.metrics.divergence import jsd_from_counts
from repro.stream.stream import StreamDataset


def trip_distribution(dataset: StreamDataset) -> Counter:
    """Counts over (start_cell, end_cell) pairs; empty streams skipped."""
    counts: Counter = Counter()
    for traj in dataset.trajectories:
        if len(traj) == 0:
            continue
        counts[(traj.cells[0], traj.cells[-1])] += 1
    return counts


def trip_error(real: StreamDataset, syn: StreamDataset) -> float:
    """JSD between the two trip distributions."""
    return jsd_from_counts(trip_distribution(real), trip_distribution(syn))
