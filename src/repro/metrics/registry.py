"""Uniform evaluation over all eight paper metrics."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.metrics.density import density_error
from repro.metrics.hotspot import hotspot_ndcg
from repro.metrics.kendall import kendall_tau
from repro.metrics.length import length_error
from repro.metrics.pattern import pattern_f1
from repro.metrics.query import query_error
from repro.metrics.transition import transition_error
from repro.metrics.trip import trip_error
from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset

#: Metric names in the order of the paper's Table III rows.
ALL_METRICS: tuple[str, ...] = (
    "density_error",
    "query_error",
    "hotspot_ndcg",
    "transition_error",
    "pattern_f1",
    "kendall_tau",
    "trip_error",
    "length_error",
)

#: Metrics where larger values are better (Table III caption).
HIGHER_IS_BETTER: frozenset[str] = frozenset(
    {"hotspot_ndcg", "pattern_f1", "kendall_tau"}
)


def evaluate_all(
    real: StreamDataset,
    syn: StreamDataset,
    phi: int = 10,
    metrics: Optional[Sequence[str]] = None,
    n_queries: int = 100,
    n_pattern_ranges: int = 20,
    rng: RngLike = None,
) -> dict[str, float]:
    """Compute the requested metrics (default: all eight of Table III)."""
    rng = ensure_rng(rng)
    wanted = tuple(metrics) if metrics is not None else ALL_METRICS
    unknown = set(wanted) - set(ALL_METRICS)
    if unknown:
        raise ValueError(f"unknown metrics: {sorted(unknown)}")

    evaluators: dict[str, Callable[[], float]] = {
        "density_error": lambda: density_error(real, syn),
        "query_error": lambda: query_error(
            real, syn, phi=phi, n_queries=n_queries, rng=rng
        ),
        "hotspot_ndcg": lambda: hotspot_ndcg(real, syn, phi=phi, rng=rng),
        "transition_error": lambda: transition_error(real, syn),
        "pattern_f1": lambda: pattern_f1(
            real, syn, phi=phi, n_ranges=n_pattern_ranges, rng=rng
        ),
        "kendall_tau": lambda: kendall_tau(real, syn),
        "trip_error": lambda: trip_error(real, syn),
        "length_error": lambda: length_error(real, syn),
    }
    return {name: evaluators[name]() for name in wanted}
