"""Pattern F1: preservation of frequent high-order mobility patterns.

A *pattern* is an ordered sequence of consecutive cells (paper Section V-B).
Within a random time range of size φ we mine the top-``N`` most frequent
patterns of length 2..``max_len`` from both databases and report the F1
overlap, averaged over random ranges.  Consecutive duplicate cells are kept:
"stay" behaviour is part of the mobility semantics.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset


def mine_patterns(
    dataset: StreamDataset,
    t0: int,
    t1: int,
    top_n: int = 100,
    max_len: int = 4,
) -> set[tuple[int, ...]]:
    """Top-``top_n`` frequent cell n-grams in the window ``[t0, t1]``."""
    counts: Counter = Counter()
    for traj in dataset.trajectories:
        cells = traj.subsequence(t0, t1)
        m = len(cells)
        if m < 2:
            continue
        for length in range(2, min(max_len, m) + 1):
            for i in range(m - length + 1):
                counts[tuple(cells[i : i + length])] += 1
    if not counts:
        return set()
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return {pattern for pattern, _cnt in ranked[:top_n]}


def f1_of_sets(a: set, b: set) -> float:
    """F1 overlap of two pattern sets; 1.0 when both are empty."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    return 2.0 * inter / (len(a) + len(b))


def pattern_f1(
    real: StreamDataset,
    syn: StreamDataset,
    phi: int = 10,
    top_n: int = 100,
    max_len: int = 4,
    n_ranges: int = 20,
    rng: RngLike = None,
) -> float:
    """Mean top-``top_n`` pattern F1 over random φ-sized time ranges."""
    rng = ensure_rng(rng)
    horizon = real.n_timestamps
    phi = max(2, min(phi, horizon))
    scores = []
    for _ in range(n_ranges):
        t0 = int(rng.integers(0, max(1, horizon - phi + 1)))
        t1 = t0 + phi - 1
        real_patterns = mine_patterns(real, t0, t1, top_n, max_len)
        syn_patterns = mine_patterns(syn, t0, t1, top_n, max_len)
        scores.append(f1_of_sets(real_patterns, syn_patterns))
    return float(np.mean(scores))
