"""Length Error: divergence of the travel-distance distribution.

Each trajectory contributes its total travel distance (sum of consecutive
cell-center distances); distances are binned into ``n_bins`` equal-width
buckets over the combined range and the two histograms are compared with
JSD.  Baselines whose synthetic streams never terminate produce distances
far beyond any real trajectory, so the supports separate and the JSD pins at
``ln 2 ≈ 0.6931`` — exactly the constant rows in the paper's Table III.
"""

from __future__ import annotations

import numpy as np

from repro.geo.distance import cell_path_length
from repro.metrics.divergence import jensen_shannon_divergence
from repro.stream.stream import StreamDataset


def travel_distances(dataset: StreamDataset) -> np.ndarray:
    """Per-trajectory travel distance through cell centers."""
    return np.asarray(
        [cell_path_length(dataset.grid, traj.cells) for traj in dataset.trajectories]
    )


def length_error(
    real: StreamDataset, syn: StreamDataset, n_bins: int = 20
) -> float:
    """JSD between binned travel-distance distributions."""
    real_d = travel_distances(real)
    syn_d = travel_distances(syn)
    if real_d.size == 0 and syn_d.size == 0:
        return 0.0
    hi = float(max(real_d.max(initial=0.0), syn_d.max(initial=0.0)))
    if hi <= 0.0:
        return 0.0
    edges = np.linspace(0.0, hi, n_bins + 1)
    real_h, _ = np.histogram(real_d, bins=edges)
    syn_h, _ = np.histogram(syn_d, bins=edges)
    return jensen_shannon_divergence(real_h, syn_h)
