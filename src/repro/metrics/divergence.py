"""Jensen–Shannon divergence, the workhorse distance of Section V-B.

Natural-log JSD is bounded by ``ln 2 ≈ 0.6931`` — the ceiling visible in the
paper's Length Error rows for baselines whose synthetic distribution shares
no support with the real one.
"""

from __future__ import annotations

import numpy as np

LN2 = float(np.log(2.0))


def _normalize(p: np.ndarray) -> np.ndarray:
    p = np.clip(np.asarray(p, dtype=float), 0.0, None)
    total = p.sum()
    if total <= 0.0:
        return np.full(p.shape, 1.0 / p.size)
    return p / total


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) in nats; contributions with ``p_i = 0`` are zero."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JSD(p, q) in nats over a shared support; inputs are renormalised.

    Both inputs may be unnormalised count vectors.  An all-zero vector is
    treated as uniform (the convention used for empty timestamps).
    """
    p = _normalize(p)
    q = _normalize(q)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def jsd_from_counts(
    counts_a: dict, counts_b: dict
) -> float:
    """JSD between two sparse count dictionaries over their support union."""
    support = sorted(set(counts_a) | set(counts_b))
    if not support:
        return 0.0
    a = np.asarray([counts_a.get(s, 0) for s in support], dtype=float)
    b = np.asarray([counts_b.get(s, 0) for s in support], dtype=float)
    return jensen_shannon_divergence(a, b)
