"""Kendall's tau on overall cell popularity (historical metric).

Counts every point of every trajectory per cell across the whole horizon in
both databases and reports the Kendall rank-correlation coefficient between
the two count vectors.  1.0 means the synthetic database preserves the
popularity ranking of locations perfectly; values near 0 (or negative) mean
the ranking is destroyed — the signature of the NoEQ ablation in Table IV.
"""

from __future__ import annotations

from scipy import stats

from repro.stream.stream import StreamDataset


def kendall_tau(real: StreamDataset, syn: StreamDataset) -> float:
    """Kendall-tau correlation of per-cell total visit counts."""
    real_counts = real.cell_counts_matrix().sum(axis=0)
    syn_counts = syn.cell_counts_matrix().sum(axis=0)
    if real_counts.std() == 0 or syn_counts.std() == 0:
        return 0.0
    tau = stats.kendalltau(real_counts, syn_counts).statistic
    return float(tau) if tau == tau else 0.0  # NaN -> 0
