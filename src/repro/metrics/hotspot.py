"""Hotspot preservation via NDCG (paper Section V-B, "Hotspot NDCG").

For a random time range of size φ, the ground-truth ranking is the top
``n_h`` cells by real point count.  The synthetic dataset proposes its own
top-``n_h`` cells; each proposed cell's *graded relevance* is its real
count, and the score is the standard NDCG@n_h — 1.0 when the synthetic
ranking reproduces the real hotspots in order.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset


def _ndcg_at(real_counts: np.ndarray, syn_counts: np.ndarray, nh: int) -> float:
    """NDCG of the synthetic top-``nh`` ranking against real relevances."""
    ideal = np.sort(real_counts)[::-1][:nh].astype(float)
    idcg = float((ideal / np.log2(np.arange(2, ideal.size + 2))).sum())
    if idcg <= 0.0:
        return 1.0  # no real hotspots: any ranking is vacuously perfect
    predicted = np.argsort(syn_counts, kind="stable")[::-1][:nh]
    gains = real_counts[predicted].astype(float)
    dcg = float((gains / np.log2(np.arange(2, gains.size + 2))).sum())
    return dcg / idcg


def hotspot_ndcg(
    real: StreamDataset,
    syn: StreamDataset,
    phi: int = 10,
    nh: int = 10,
    n_ranges: int = 100,
    rng: RngLike = None,
) -> float:
    """Mean NDCG@``nh`` over ``n_ranges`` random time ranges of size φ."""
    rng = ensure_rng(rng)
    real_counts = real.cell_counts_matrix()
    syn_counts = syn.cell_counts_matrix()
    horizon = real.n_timestamps
    phi = max(1, min(phi, horizon))
    scores = []
    for _ in range(n_ranges):
        t0 = int(rng.integers(0, max(1, horizon - phi + 1)))
        t1 = t0 + phi
        r = real_counts[t0:t1].sum(axis=0)
        s = syn_counts[t0:t1].sum(axis=0)
        scores.append(_ndcg_at(r, s, nh))
    return float(np.mean(scores))
