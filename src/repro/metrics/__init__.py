"""Utility metrics (paper Section V-B).

Streaming metrics — global level:

* :func:`~repro.metrics.density.density_error` — per-timestamp JSD of the
  spatial density distribution;
* :func:`~repro.metrics.query.query_error` — mean relative error of random
  spatio-temporal range queries over windows of size φ (with sanity bound);
* :func:`~repro.metrics.hotspot.hotspot_ndcg` — NDCG@n_h of the most
  popular cells within random time ranges.

Streaming metrics — semantic level:

* :func:`~repro.metrics.transition.transition_error` — per-timestamp JSD of
  the single-step transition distribution;
* :func:`~repro.metrics.pattern.pattern_f1` — F1 overlap of the top-N
  frequent high-order movement patterns in random time ranges.

Historical (trajectory-level) metrics:

* :func:`~repro.metrics.kendall.kendall_tau` — rank correlation of overall
  cell popularity;
* :func:`~repro.metrics.trip.trip_error` — JSD of the joint (start, end)
  cell distribution;
* :func:`~repro.metrics.length.length_error` — JSD of the binned
  travel-distance distribution.

``metrics.registry`` evaluates any subset of these uniformly.
"""

from repro.metrics.divergence import jensen_shannon_divergence
from repro.metrics.density import density_error
from repro.metrics.query import query_error
from repro.metrics.hotspot import hotspot_ndcg
from repro.metrics.transition import transition_error
from repro.metrics.pattern import pattern_f1
from repro.metrics.kendall import kendall_tau
from repro.metrics.trip import trip_error
from repro.metrics.length import length_error
from repro.metrics.registry import (
    ALL_METRICS,
    HIGHER_IS_BETTER,
    evaluate_all,
)

__all__ = [
    "jensen_shannon_divergence",
    "density_error",
    "query_error",
    "hotspot_ndcg",
    "transition_error",
    "pattern_f1",
    "kendall_tau",
    "trip_error",
    "length_error",
    "ALL_METRICS",
    "HIGHER_IS_BETTER",
    "evaluate_all",
]
