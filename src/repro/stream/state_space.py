"""Dense indexing of the transition-state domain under reachability.

The naive movement domain has ``|C|^2`` states; the paper restricts it to
transitions between adjacent cells (including self-loops), shrinking the
space to ``O(9|C|)`` and making the OUE encoding practical.  This module
assigns every legal state a dense integer index::

    [movement states, ordered by (origin, destination)] ++
    [enter states, ordered by cell] ++
    [quit states, ordered by cell]

and precomputes the index groups needed to normalise the mobility model
row-by-row (paper Eq. 6).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import DomainError
from repro.geo.grid import Grid
from repro.stream.events import StateKind, TransitionState


class TransitionStateSpace:
    """Bijective mapping between legal transition states and dense indices.

    Parameters
    ----------
    grid:
        The discretisation grid; defines cells and adjacency.
    include_entering_quitting:
        When ``False`` the space contains only movement states — used by the
        NoEQ ablation variant and by the LDP-IDS baselines, which do not
        model enter/quit events.
    """

    def __init__(self, grid: Grid, include_entering_quitting: bool = True) -> None:
        self.grid = grid
        self.include_eq = bool(include_entering_quitting)

        self._move_pairs: list[tuple[int, int]] = []
        self._move_index: dict[tuple[int, int], int] = {}
        for origin in range(grid.n_cells):
            for dest in grid.neighbor_lists[origin]:
                self._move_index[(origin, dest)] = len(self._move_pairs)
                self._move_pairs.append((origin, dest))

        self.n_move = len(self._move_pairs)
        self.n_cells = grid.n_cells
        self._enter_offset = self.n_move
        self._quit_offset = self.n_move + (self.n_cells if self.include_eq else 0)
        self.size = self.n_move + (2 * self.n_cells if self.include_eq else 0)

        # Row groups for Eq. 6: indices of movement states leaving each cell.
        self._out_move_indices: list[np.ndarray] = []
        for origin in range(grid.n_cells):
            idx = [self._move_index[(origin, d)] for d in grid.neighbor_lists[origin]]
            self._out_move_indices.append(np.asarray(idx, dtype=np.int64))

        # Flat (origin * n_cells + dest) -> move index table for vectorized
        # lookups; -1 marks illegal pairs.  Only materialised while the
        # quadratic table stays small; larger grids fall back to the dict.
        self._flat_move_lookup: np.ndarray | None = None
        if self.n_cells * self.n_cells <= 4_000_000:
            flat = np.full(self.n_cells * self.n_cells, -1, dtype=np.int64)
            for (origin, dest), i in self._move_index.items():
                flat[origin * self.n_cells + dest] = i
            self._flat_move_lookup = flat

        # Origin cell of every movement state (move_pairs is origin-ordered).
        self.move_origins = np.asarray(
            [o for o, _ in self._move_pairs], dtype=np.int64
        )
        self._padded_out: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # state -> index
    # ------------------------------------------------------------------ #
    def index_of_move(self, origin: int, destination: int) -> int:
        key = (origin, destination)
        if key not in self._move_index:
            raise DomainError(
                f"movement {origin}->{destination} violates the reachability "
                f"constraint (cells are not adjacent)"
            )
        return self._move_index[key]

    def index_of_enter(self, cell: int) -> int:
        self._require_eq("enter")
        self._check_cell(cell)
        return self._enter_offset + cell

    def index_of_quit(self, cell: int) -> int:
        self._require_eq("quit")
        self._check_cell(cell)
        return self._quit_offset + cell

    def move_index_lookup(
        self, origins: np.ndarray, destinations: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`index_of_move` over parallel cell arrays."""
        origins = np.asarray(origins, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if origins.size and (
            origins.min() < 0 or origins.max() >= self.n_cells
            or destinations.min() < 0 or destinations.max() >= self.n_cells
        ):
            raise DomainError("cell ids outside the grid")
        if self._flat_move_lookup is not None:
            out = self._flat_move_lookup[origins * self.n_cells + destinations]
        else:
            out = np.asarray(
                [
                    self._move_index.get((int(o), int(d)), -1)
                    for o, d in zip(origins, destinations)
                ],
                dtype=np.int64,
            )
        if out.size and out.min() < 0:
            bad = int(np.flatnonzero(out < 0)[0])
            raise DomainError(
                f"movement {int(origins[bad])}->{int(destinations[bad])} "
                f"violates the reachability constraint (cells are not adjacent)"
            )
        return out

    def index_of(self, state: TransitionState) -> int:
        if state.kind is StateKind.MOVE:
            return self.index_of_move(state.origin, state.destination)
        if state.kind is StateKind.ENTER:
            return self.index_of_enter(state.destination)
        return self.index_of_quit(state.origin)

    # ------------------------------------------------------------------ #
    # index -> state
    # ------------------------------------------------------------------ #
    def state_of(self, index: int) -> TransitionState:
        if not 0 <= index < self.size:
            raise DomainError(f"state index {index} outside [0, {self.size})")
        if index < self.n_move:
            origin, dest = self._move_pairs[index]
            return TransitionState.move(origin, dest)
        if index < self._quit_offset:
            return TransitionState.enter(index - self._enter_offset)
        return TransitionState.quit(index - self._quit_offset)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[TransitionState]:
        return (self.state_of(i) for i in range(self.size))

    # ------------------------------------------------------------------ #
    # structured views
    # ------------------------------------------------------------------ #
    @property
    def move_pairs(self) -> list[tuple[int, int]]:
        """All legal ``(origin, destination)`` pairs in index order."""
        return list(self._move_pairs)

    def out_move_indices(self, origin: int) -> np.ndarray:
        """Indices of movement states leaving ``origin`` (incl. self-loop)."""
        self._check_cell(origin)
        return self._out_move_indices[origin]

    def out_destinations(self, origin: int) -> list[int]:
        """Destination cells reachable from ``origin``, index-aligned with
        :meth:`out_move_indices`."""
        return self.grid.neighbor_lists[origin]

    def padded_out_structure(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Static padded row structure for vectorized Eq. 6 assembly.

        Returns ``(out_state_pad, dest_pad, degrees)`` where

        * ``out_state_pad`` is ``(n_cells, width)`` movement-state indices
          (row ``i`` holds :meth:`out_move_indices`, zero-padded — callers
          mask by ``degrees``);
        * ``dest_pad`` is the matching destination-cell matrix, padded by
          repeating the row's last legal destination so an inverse-CDF
          lookup can never step off the row;
        * ``degrees`` is the per-origin legal-destination count.

        Built once per space and cached; all three arrays are shared
        read-only by compiled mobility models and the matrix views.
        """
        if self._padded_out is None:
            degrees = np.asarray(
                [len(self.grid.neighbor_lists[c]) for c in range(self.n_cells)],
                dtype=np.int64,
            )
            width = int(degrees.max(initial=1))
            out_pad = np.zeros((self.n_cells, width), dtype=np.int64)
            dest_pad = np.zeros((self.n_cells, width), dtype=np.int64)
            for c in range(self.n_cells):
                idx = self._out_move_indices[c]
                dests = self.grid.neighbor_lists[c]
                out_pad[c, : idx.size] = idx
                dest_pad[c, : len(dests)] = dests
                dest_pad[c, len(dests):] = dests[-1]
            self._padded_out = (out_pad, dest_pad, degrees)
        return self._padded_out

    def origins_of_states(self, indices) -> np.ndarray:
        """Distinct origin cells whose Eq. 6 row depends on the given states.

        Movement states dirty their origin's row; quit states dirty their
        cell's row (the quit mass sits in the row denominator); entering
        states touch no row — they only feed the entering distribution.
        Used by the synthesis plane to recompile exactly the rows a DMU
        round changed.
        """
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        if idx.min() < 0 or idx.max() >= self.size:
            raise DomainError(f"state indices outside [0, {self.size})")
        parts = [self.move_origins[idx[idx < self.n_move]]]
        if self.include_eq:
            quits = idx[idx >= self._quit_offset]
            parts.append(quits - self._quit_offset)
        return np.unique(np.concatenate(parts))

    @property
    def enter_indices(self) -> np.ndarray:
        """Indices of all enter states, ordered by cell."""
        self._require_eq("enter")
        return np.arange(self._enter_offset, self._enter_offset + self.n_cells)

    @property
    def quit_indices(self) -> np.ndarray:
        """Indices of all quit states, ordered by cell."""
        self._require_eq("quit")
        return np.arange(self._quit_offset, self._quit_offset + self.n_cells)

    @property
    def move_indices(self) -> np.ndarray:
        """Indices of all movement states."""
        return np.arange(self.n_move)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _check_cell(self, cell: int) -> None:
        if not 0 <= cell < self.n_cells:
            raise DomainError(f"cell id {cell} outside [0, {self.n_cells})")

    def _require_eq(self, what: str) -> None:
        if not self.include_eq:
            raise DomainError(
                f"this state space excludes entering/quitting states ({what})"
            )
