"""Shared uid → dense-slot table backing the columnar user-state planes.

Several per-user columnar stores need the same mapping: given an int64
array of user ids, find (or create) each user's dense row index so that
statuses, last-report timestamps and privacy-ledger windows can live in
flat numpy arrays instead of per-uid dicts.  :class:`UserSlotTable` is
that mapping, fully vectorized:

* lookups are one ``np.searchsorted`` over a sorted uid index — no Python
  loop over the batch, which is what keeps ``spend_many`` /
  ``active_mask`` array-speed at 100k+ reporters per round;
* slot numbers are assigned in **first-appearance order**, exactly like
  the dict-based stores they replace, so audit surfaces that iterate in
  slot order (``recycle`` return values, ``active_users``) keep their
  historical ordering;
* one table can be *shared* between components — the unsharded curator
  hands the same instance to its :class:`~repro.stream.user_tracker
  .UserTracker` and its columnar privacy accountant, so a user occupies
  one row everywhere.  Components own their columns and grow them lazily
  to ``n_slots``; the table owns only the uid ↔ slot correspondence;
* steady-state admission has a **pre-registered fast path**: while every
  interned uid equals its own slot (the table is an *identity* mapping —
  the shape :meth:`UserSlotTable.preregister` of a dense uid population
  produces, and what every dataset replay generates), lookups are a pure
  bounds check with **no** ``searchsorted`` at all.  The flag degrades
  automatically (and permanently) the first time a non-dense uid
  arrives, falling back to the sorted-index path.

The table pickles as plain arrays, so curator checkpoints restore shared
instances with identity intact (both components point at one object
again after :func:`~repro.core.persistence.load_checkpoint`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _as_id_array(user_ids) -> np.ndarray:
    """Normalise ids to int64, rejecting silent coercion.

    Float/object inputs raise (the dict stores this table replaced would
    have raised on lookup or aliased distinct users on truncation), and
    uint64 values above the int64 range raise instead of wrapping to
    negative ids.
    """
    ids = np.asarray(user_ids)
    if ids.size and not np.issubdtype(ids.dtype, np.integer):
        raise ConfigurationError(
            f"user ids must be integers, got dtype {ids.dtype}"
        )
    if ids.dtype == np.uint64 and ids.size and ids.max() > np.uint64(
        np.iinfo(np.int64).max
    ):
        raise ConfigurationError("user ids exceed the int64 range")
    return np.atleast_1d(ids.astype(np.int64, copy=False))


class UserSlotTable:
    """Vectorized, append-only mapping from user id to dense slot index."""

    def __init__(self) -> None:
        self._uids = np.empty(0, dtype=np.int64)  # slot -> uid (capacity-padded)
        self._n = 0
        # Sorted secondary index for O(log n) vectorized lookups.
        self._sorted_uids = np.empty(0, dtype=np.int64)
        self._sorted_slots = np.empty(0, dtype=np.int64)
        # True while uid == slot for every interned uid (dense 0..n-1
        # population): lookups are then a bounds check, no searchsorted.
        self._identity = True

    def __setstate__(self, state) -> None:
        # Checkpoints written before the fast path existed lack the flag;
        # recompute it so resumed services keep steady-state admission fast.
        self.__dict__.update(state)
        if "_identity" not in state:
            n = self._n
            self._identity = bool(
                n == 0
                or np.array_equal(self._uids[:n], np.arange(n, dtype=np.int64))
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_slots(self) -> int:
        return self._n

    @property
    def uids(self) -> np.ndarray:
        """uid of each slot, indexed by slot (do not mutate)."""
        return self._uids[: self._n]

    def __len__(self) -> int:
        return self._n

    def __contains__(self, user_id) -> bool:
        return self.slot_of(user_id) >= 0

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def is_identity(self) -> bool:
        """True while every interned uid equals its slot (fast-path armed)."""
        return self._identity

    def lookup(self, user_ids) -> np.ndarray:
        """Slots of ``user_ids``; ``-1`` marks ids the table has never seen."""
        ids = _as_id_array(user_ids)
        if self._n == 0 or ids.size == 0:
            return np.full(ids.shape, -1, dtype=np.int64)
        if self._identity:
            # Pre-registered fast path: uid == slot, so known ids map to
            # themselves and anything outside [0, n) is unseen.
            return np.where((ids >= 0) & (ids < self._n), ids, -1)
        pos = np.searchsorted(self._sorted_uids, ids)
        pos_c = np.minimum(pos, self._n - 1)
        found = self._sorted_uids[pos_c] == ids
        return np.where(found, self._sorted_slots[pos_c], -1)

    def slot_of(self, user_id) -> int:
        """Scalar lookup; ``-1`` when unknown."""
        return int(self.lookup([user_id])[0])

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #
    def intern(self, user_ids) -> np.ndarray:
        """Slots of ``user_ids``, appending unseen ids as new slots.

        New ids receive consecutive slots in first-appearance order (the
        dict-insertion order of the stores this table replaced), even when
        one batch repeats an id.
        """
        ids = _as_id_array(user_ids)
        slots = self.lookup(ids)
        missing = slots < 0
        if missing.any():
            uniq, first_idx = np.unique(ids[missing], return_index=True)
            new_uids = uniq[np.argsort(first_idx, kind="stable")]
            base = self._n
            self._grow(new_uids.size)
            self._uids[base : base + new_uids.size] = new_uids
            self._n += new_uids.size
            if self._identity:
                # Identity survives only while the appended uids continue
                # the dense 0..n-1 run; one gap or reordering disarms it.
                self._identity = bool(
                    np.array_equal(
                        new_uids, np.arange(base, self._n, dtype=np.int64)
                    )
                )
            self._insert_sorted(new_uids, np.arange(base, self._n, dtype=np.int64))
            slots = self.lookup(ids)
        return slots

    def preregister(self, user_ids) -> np.ndarray:
        """Intern a whole population ahead of its first report.

        Admission of an already-interned uid never touches the append
        path, so a service that pre-registers its expected users keeps
        every steady-state round on the read-only lookup — and when the
        population is dense (uids ``0..n-1`` in order, the shape every
        replay produces), on the no-``searchsorted`` identity fast path.
        Returns the slots, like :meth:`intern`.
        """
        return self.intern(user_ids)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _grow(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._uids)
        if need <= cap:
            return
        fresh = np.zeros(max(need, 2 * cap, 1024), dtype=np.int64)
        fresh[: self._n] = self._uids[: self._n]
        self._uids = fresh

    def _insert_sorted(self, new_uids: np.ndarray, new_slots: np.ndarray) -> None:
        # new_uids is sorted-unique only up to first-appearance reordering;
        # sort locally so the merged index stays globally sorted.
        order = np.argsort(new_uids, kind="stable")
        new_uids, new_slots = new_uids[order], new_slots[order]
        pos = np.searchsorted(self._sorted_uids, new_uids)
        self._sorted_uids = np.insert(self._sorted_uids, pos, new_uids)
        self._sorted_slots = np.insert(self._sorted_slots, pos, new_slots)
