"""Columnar report plane: batches of user reports as numpy arrays.

The object-path curator moves reports around as ``(user_id,
TransitionState)`` tuples — one Python object per user per timestamp.  At
production population sizes that representation dominates the round cost:
allocation, per-user dict lookups, and (for the process shard executor)
pickling of dataclass instances.  This module defines the columnar wire
format the whole pipeline speaks instead:

* :class:`ReportBatch` — one timestamp's candidate reports as three
  parallel arrays: ``user_ids`` (int64), ``state_idx`` (int64 dense indices
  into the :class:`~repro.stream.state_space.TransitionStateSpace`, ``-1``
  for states the space cannot encode), and ``kinds`` (int8 transition
  family codes).  Batches flow unchanged from ingestion through selection,
  the frequency oracles and shard merging; process shards receive index
  arrays, never pickled state objects.
* :class:`ColumnarStreamView` — per-timestamp ``ReportBatch`` views over a
  finished :class:`~repro.stream.stream.StreamDataset`, built in one
  vectorized pass over the trajectories.  Row order within a timestamp is
  the dataset's trajectory order, exactly matching
  :meth:`~repro.stream.stream.StreamDataset.participants_at`, so the
  columnar and object paths consume identical RNG streams.
* :func:`shard_of_array` — the vectorized twin of
  :func:`~repro.core.sharded.shard_of`.

The batch layout is the protocol's *wire format*; semantic meaning (which
index is which transition) stays owned by ``TransitionStateSpace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DomainError
from repro.stream.events import StateKind, TransitionState
from repro.stream.state_space import TransitionStateSpace

#: int8 transition-family codes backing ``ReportBatch.kinds``.
KIND_MOVE, KIND_ENTER, KIND_QUIT = 0, 1, 2

#: StateKind -> int8 kind code (the single source of truth for the codes).
KIND_OF_STATE = {
    StateKind.MOVE: KIND_MOVE,
    StateKind.ENTER: KIND_ENTER,
    StateKind.QUIT: KIND_QUIT,
}

#: Knuth multiplicative hash (same constant as repro.core.sharded).
_HASH_MULT = np.uint64(2654435761)
_MASK32 = np.uint64(0xFFFFFFFF)


def shard_of_array(user_ids: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorized shard assignment, bit-identical to ``shard_of``.

    The int64 → uint64 cast plus the 32-bit mask reproduce the scalar
    version exactly: truncating the product modulo 2^64 preserves the low
    32 bits the scalar code keeps.
    """
    uids = np.asarray(user_ids, dtype=np.int64).astype(np.uint64)
    h = (uids * _HASH_MULT) & _MASK32
    h ^= h >> np.uint64(16)
    return (h % np.uint64(n_shards)).astype(np.int64)


@dataclass(frozen=True)
class ReportBatch:
    """One timestamp's candidate reports, columnar.

    Attributes
    ----------
    user_ids:
        int64 array of reporting user ids.
    state_idx:
        int64 array of dense transition-state indices; ``-1`` marks a state
        the target space cannot encode (enter/quit rows under a NoEQ
        space).  Rows with ``-1`` must be filtered (``moves_only``) before
        reaching a frequency oracle.
    kinds:
        int8 array of ``KIND_MOVE`` / ``KIND_ENTER`` / ``KIND_QUIT`` codes.
    """

    user_ids: np.ndarray
    state_idx: np.ndarray
    kinds: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.user_ids)
        if len(self.state_idx) != n or len(self.kinds) != n:
            raise DomainError(
                f"ReportBatch columns disagree on length: "
                f"{n}/{len(self.state_idx)}/{len(self.kinds)}"
            )

    def __len__(self) -> int:
        return len(self.user_ids)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "ReportBatch":
        return ReportBatch(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
        )

    @staticmethod
    def from_arrays(user_ids, state_idx, kinds) -> "ReportBatch":
        """Build from array-likes, normalising dtypes."""
        return ReportBatch(
            np.asarray(user_ids, dtype=np.int64),
            np.asarray(state_idx, dtype=np.int64),
            np.asarray(kinds, dtype=np.int8),
        )

    @staticmethod
    def from_participants(
        space: TransitionStateSpace,
        participants: Sequence[tuple[int, TransitionState]],
    ) -> "ReportBatch":
        """Bridge from the object representation, preserving row order.

        Enter/quit states that ``space`` cannot encode (NoEQ spaces) are
        kept with ``state_idx == -1`` so the caller's movement filter sees
        the same population as the object path did.
        """
        n = len(participants)
        uids = np.empty(n, dtype=np.int64)
        idx = np.empty(n, dtype=np.int64)
        kinds = np.empty(n, dtype=np.int8)
        encodable_eq = space.include_eq
        for i, (uid, state) in enumerate(participants):
            uids[i] = uid
            kind = KIND_OF_STATE[state.kind]
            kinds[i] = kind
            if kind == KIND_MOVE or encodable_eq:
                idx[i] = space.index_of(state)
            else:
                idx[i] = -1
        return ReportBatch(uids, idx, kinds)

    # ------------------------------------------------------------------ #
    # row operations
    # ------------------------------------------------------------------ #
    def take(self, rows: np.ndarray) -> "ReportBatch":
        """Sub-batch of the given row indices, in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        return ReportBatch(
            self.user_ids[rows], self.state_idx[rows], self.kinds[rows]
        )

    def moves_only(self) -> "ReportBatch":
        """Rows holding movement reports (the NoEQ participation filter)."""
        return self.take(np.flatnonzero(self.kinds == KIND_MOVE))

    def partition(self, n_shards: int) -> list["ReportBatch"]:
        """Hash-partition rows into ``n_shards`` sub-batches.

        Row order within each partition is preserved, so a partitioned
        round consumes each shard's RNG exactly as an unpartitioned round
        over that shard's users would.
        """
        if n_shards == 1:
            return [self]
        sid = shard_of_array(self.user_ids, n_shards)
        return [self.take(np.flatnonzero(sid == k)) for k in range(n_shards)]

    def to_participants(
        self, space: TransitionStateSpace
    ) -> list[tuple[int, TransitionState]]:
        """Back-convert to the object representation (tests, debugging)."""
        out: list[tuple[int, TransitionState]] = []
        for uid, idx, kind in zip(
            self.user_ids.tolist(), self.state_idx.tolist(), self.kinds.tolist()
        ):
            if idx >= 0:
                state = space.state_of(idx)
            elif kind == KIND_ENTER:
                state = TransitionState.enter(0)  # cell unknown without idx
            else:
                state = TransitionState.quit(0)
            out.append((uid, state))
        return out


def as_report_batch(
    space: TransitionStateSpace,
    participants,
) -> ReportBatch:
    """Normalise either representation to a :class:`ReportBatch`."""
    if isinstance(participants, ReportBatch):
        return participants
    return ReportBatch.from_participants(space, participants)


class ColumnarStreamView:
    """Per-timestamp columnar views over a finished stream dataset.

    One pass over the trajectories builds four flat arrays (timestamp, user
    id, state index, kind); a stable sort groups them by timestamp while
    keeping trajectory order inside each group — the exact row order
    ``participants_at`` produces.  Every per-timestamp accessor is then an
    O(1) slice.
    """

    def __init__(self, dataset, space: TransitionStateSpace) -> None:
        self.dataset = dataset
        self.space = space
        self.n_timestamps = dataset.n_timestamps
        self._build(dataset, space)

    def _build(self, dataset, space: TransitionStateSpace) -> None:
        ts: list[np.ndarray] = []
        uids: list[np.ndarray] = []
        idxs: list[np.ndarray] = []
        kinds: list[np.ndarray] = []
        include_eq = space.include_eq
        enter_offset = getattr(space, "_enter_offset", None)
        quit_offset = getattr(space, "_quit_offset", None)
        for traj in dataset.trajectories:
            cells = np.asarray(traj.cells, dtype=np.int64)
            L = cells.size
            # enter at start, moves at start+1..end, quit at end+1
            t0 = traj.start_time
            n_rows = L + 1
            t_arr = np.arange(t0, t0 + n_rows, dtype=np.int64)
            uid_arr = np.full(n_rows, traj.user_id, dtype=np.int64)
            kind_arr = np.full(n_rows, KIND_MOVE, dtype=np.int8)
            kind_arr[0] = KIND_ENTER
            kind_arr[-1] = KIND_QUIT
            idx_arr = np.full(n_rows, -1, dtype=np.int64)
            if L > 1:
                idx_arr[1:L] = space.move_index_lookup(cells[:-1], cells[1:])
            if include_eq:
                idx_arr[0] = enter_offset + cells[0]
                idx_arr[-1] = quit_offset + cells[-1]
            ts.append(t_arr)
            uids.append(uid_arr)
            idxs.append(idx_arr)
            kinds.append(kind_arr)
        if ts:
            t_all = np.concatenate(ts)
            order = np.argsort(t_all, kind="stable")
            self._t = t_all[order]
            self._uid = np.concatenate(uids)[order]
            self._idx = np.concatenate(idxs)[order]
            self._kind = np.concatenate(kinds)[order]
        else:
            self._t = np.empty(0, dtype=np.int64)
            self._uid = np.empty(0, dtype=np.int64)
            self._idx = np.empty(0, dtype=np.int64)
            self._kind = np.empty(0, dtype=np.int8)
        bounds = np.searchsorted(
            self._t, np.arange(self.n_timestamps + 1, dtype=np.int64)
        )
        self._lo, self._hi = bounds[:-1], bounds[1:]

    def _slice(self, t: int) -> slice:
        if not 0 <= t < self.n_timestamps:
            raise DomainError(
                f"timestamp {t} outside [0, {self.n_timestamps})"
            )
        return slice(int(self._lo[t]), int(self._hi[t]))

    def batch_at(self, t: int) -> ReportBatch:
        """All candidate reports at ``t`` (row order = trajectory order)."""
        s = self._slice(t)
        return ReportBatch(self._uid[s], self._idx[s], self._kind[s])

    def newly_entered_at(self, t: int) -> np.ndarray:
        s = self._slice(t)
        return self._uid[s][self._kind[s] == KIND_ENTER]

    def quitted_at(self, t: int) -> np.ndarray:
        s = self._slice(t)
        return self._uid[s][self._kind[s] == KIND_QUIT]

    def n_active_at(self, t: int) -> int:
        """Streams with a location at ``t`` (enter + move reports)."""
        s = self._slice(t)
        return int((self._kind[s] != KIND_QUIT).sum())
