"""Transition states: the atoms of the global mobility model.

Paper Definition 5 and surrounding text: the general transition domain is
``S = {m_ij} ∪ {e_i} ∪ {q_j}`` where

* ``m_ij`` — the user moved from cell ``c_i`` to adjacent cell ``c_j``
  between the previous and the current timestamp (``i == j`` means staying);
* ``e_i`` — a new stream began at cell ``c_i`` at the current timestamp;
* ``q_j`` — the user stopped reporting; their final location was ``c_j``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class StateKind(enum.Enum):
    """Which of the three transition families a state belongs to."""

    MOVE = "move"
    ENTER = "enter"
    QUIT = "quit"


@dataclass(frozen=True, slots=True)
class TransitionState:
    """One user's mobility status at one timestamp.

    Attributes
    ----------
    kind:
        Family of the transition.
    origin:
        Source cell ``c_i`` for MOVE; ``None`` for ENTER; final cell for QUIT.
    destination:
        Target cell ``c_j`` for MOVE; entered cell for ENTER; ``None`` for QUIT.
    """

    kind: StateKind
    origin: Optional[int]
    destination: Optional[int]

    @staticmethod
    def move(origin: int, destination: int) -> "TransitionState":
        return TransitionState(StateKind.MOVE, origin, destination)

    @staticmethod
    def enter(cell: int) -> "TransitionState":
        return TransitionState(StateKind.ENTER, None, cell)

    @staticmethod
    def quit(cell: int) -> "TransitionState":
        return TransitionState(StateKind.QUIT, cell, None)

    def __str__(self) -> str:
        if self.kind is StateKind.MOVE:
            return f"m({self.origin}->{self.destination})"
        if self.kind is StateKind.ENTER:
            return f"e({self.destination})"
        return f"q({self.origin})"
