"""User-side encoding of transition states.

Bridges the stream substrate and the LDP substrate: converts each reporting
user's :class:`~repro.stream.events.TransitionState` into its dense index in
the :class:`~repro.stream.state_space.TransitionStateSpace` (the paper's
|S|-bit one-hot encoding, steps ② of Figure 2) and runs the frequency oracle
round trip (③–④).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ldp.freq_oracle import FrequencyOracle
from repro.stream.events import TransitionState
from repro.stream.reports import ReportBatch
from repro.stream.state_space import TransitionStateSpace


class UserSideEncoder:
    """Encodes transition states and drives the FO collection round."""

    def __init__(self, space: TransitionStateSpace) -> None:
        self.space = space

    def encode(self, states: Sequence[TransitionState]) -> np.ndarray:
        """Dense state indices for a batch of users' transition states."""
        return np.asarray([self.space.index_of(s) for s in states], dtype=np.int64)

    def encode_batch(
        self, participants: Sequence[tuple[int, TransitionState]]
    ) -> ReportBatch:
        """Columnar :class:`~repro.stream.reports.ReportBatch` from object
        ``(user_id, state)`` pairs, preserving row order."""
        return ReportBatch.from_participants(self.space, participants)

    def one_hot(self, state: TransitionState) -> np.ndarray:
        """The |S|-bit one-hot vector of a single state (paper Figure 2 ②)."""
        vec = np.zeros(len(self.space), dtype=np.uint8)
        vec[self.space.index_of(state)] = 1
        return vec

    def collect_counts(
        self, oracle: FrequencyOracle, states: Sequence[TransitionState]
    ) -> np.ndarray:
        """Full private collection: returns estimated counts over ``S``.

        The caller owns the privacy accounting; this method only runs the
        mechanism.
        """
        if len(states) == 0:
            return np.zeros(len(self.space))
        return oracle.collect(self.encode(states))
