"""Async ingestion front-end: out-of-order reports → per-timestamp batches.

The batch pipeline replays a finished dataset, but a *deployed* curator is
a service: users emit perturbation-ready reports continuously, slightly out
of order, and the server must close each timestamp, aggregate, update the
model and synthesize before moving on.  This module is that front door:

* :class:`UserReport` — one user's report for one timestamp, either an
  explicit :class:`~repro.stream.events.TransitionState` or a pre-encoded
  ``(state_idx, kind)`` pair (the fast path: encoding happens user-side).
* :class:`TimestampAssembler` — pure, sans-IO reordering core.  Buffers
  reports per timestamp, advances a *watermark* ``max_seen_t −
  max_lateness`` and closes every timestamp at or below it, emitting
  columnar :class:`~repro.stream.reports.ReportBatch`es in strict
  timestamp order.  Reports for an already-closed timestamp are dropped
  and counted (the usual streaming late-data policy).  Closed batches are
  sorted by user id, giving the service a canonical row order that is
  independent of arrival order — so a fixed seed yields the same synthetic
  stream no matter how the network shuffled the reports.
* :class:`MultiConsumerAssembler` — the multi-feeder variant: buffering
  is hash-partitioned by user id behind per-partition locks, so parallel
  producers no longer serialize behind one buffer; closed batches stay
  bit-identical to the single-consumer reference (the canonical uid sort
  erases partitioning from the output).  ``ServiceSpec.ingest_consumers``
  selects it.
* :class:`IngestionService` — the asyncio event loop around the assembler:
  a bounded :class:`asyncio.Queue` provides backpressure (``submit``
  suspends the producer when the curator falls behind), a single consumer
  drains it into the assembler and drives ``curator.process_timestep`` for
  every closed timestamp, optionally checkpointing every N timestamps via
  :func:`repro.core.persistence.save_checkpoint`.
* :func:`ingest_events` — synchronous convenience driver used by the CLI
  (``repro serve``), tests and benchmarks.

The curator's round is CPU-bound and runs inline on the consumer task;
the event loop's job here is flow control, not parallelism — collection
parallelism lives in :class:`~repro.core.sharded.ShardWorkerPool`.  The
closed batches' ``user_ids`` arrays feed the curator's columnar privacy
accountant directly (no per-uid conversion), and checkpoints written here
carry the full accounting plane — slot table and spend ring buffer — so a
resumed service keeps enforcing the same w-event ledger.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass
from typing import AsyncIterator, Iterable, Iterator, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stream.events import TransitionState
from repro.stream.reports import (
    KIND_ENTER,
    KIND_MOVE,
    KIND_OF_STATE,
    KIND_QUIT,
    ReportBatch,
    shard_of_array,
)


@dataclass(frozen=True, slots=True)
class UserReport:
    """One user's report for one timestamp.

    Either ``state`` is a :class:`TransitionState` (encoded on arrival) or
    ``state_idx``/``kind`` carry the already-encoded columnar form.
    """

    user_id: int
    t: int
    state: Optional[TransitionState] = None
    state_idx: int = -1
    kind: int = -1

    @staticmethod
    def encoded(user_id: int, t: int, state_idx: int, kind: int) -> "UserReport":
        return UserReport(user_id, t, None, int(state_idx), int(kind))


@dataclass(frozen=True)
class ClosedTimestamp:
    """Everything the curator needs for one closed collection round."""

    t: int
    batch: ReportBatch
    newly_entered: np.ndarray
    quitted: np.ndarray
    n_active: int


@dataclass
class IngestStats:
    """Counters the service exposes for monitoring."""

    n_submitted: int = 0
    n_late_dropped: int = 0
    n_timestamps: int = 0
    n_reports_processed: int = 0
    backpressure_waits: int = 0
    checkpoints_written: int = 0


class TimestampAssembler:
    """Reorders an out-of-order report stream into closed timestamps.

    Parameters
    ----------
    space:
        Transition-state space used to encode object-form reports; also
        decides whether enter/quit states are encodable (NoEQ spaces keep
        them as ``state_idx == -1`` rows, which the curator filters).
    start_t:
        First timestamp to emit (``curator._last_t + 1`` when resuming).
    max_lateness:
        Reorder bound: a report for timestamp ``t`` may still arrive as
        long as no report for any ``t' > t + max_lateness`` has been seen.
        ``0`` means arrivals are timestamp-ordered (reports within one
        timestamp may interleave freely); ``t`` then closes the moment a
        report for ``t+1`` arrives.  Reports that violate the bound are
        dropped — and if a user's *enter* report is among them, their later
        movement reports reference a user the tracker never met, which the
        curator rejects.  Size the bound to the transport's real skew.
    """

    def __init__(self, space, start_t: int = 0, max_lateness: int = 0) -> None:
        if max_lateness < 0:
            raise ConfigurationError(
                f"max_lateness must be >= 0, got {max_lateness}"
            )
        self.space = space
        self.max_lateness = int(max_lateness)
        self._next_t = int(start_t)
        self._max_seen = int(start_t) - 1
        # Per-timestamp arrival-ordered segments: either a list of loose
        # ``(uid, idx, kind)`` rows or a whole ReportBatch kept columnar
        # (the zero-copy fast path: batches decoded straight off the wire
        # are buffered as-is and only concatenated at close).
        self._buffers: dict[int, list] = {}
        self.n_late_dropped = 0
        self._n_buffered = 0
        #: Most rows ever buffered at once — the assembler's queue-depth
        #: high-water mark, reported by the serve load harness.
        self.backlog_high_water = 0

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def _encode(self, report: UserReport) -> tuple[int, int, int]:
        """``(user_id, state_idx, kind)`` of one report (pure, lock-free)."""
        if report.state is not None:
            kind = KIND_OF_STATE[report.state.kind]
            if kind == KIND_MOVE or self.space.include_eq:
                idx = self.space.index_of(report.state)
            else:
                idx = -1
        else:
            if report.kind not in (KIND_MOVE, KIND_ENTER, KIND_QUIT):
                raise ConfigurationError(
                    f"report carries neither a state nor a valid kind: {report}"
                )
            idx, kind = int(report.state_idx), int(report.kind)
        return int(report.user_id), idx, kind

    def add(self, report: UserReport) -> None:
        """Buffer one report; late reports are dropped and counted."""
        t = int(report.t)
        if t < self._next_t:
            self.n_late_dropped += 1
            return
        uid, idx, kind = self._encode(report)
        self._append_row(self._buffers.setdefault(t, []), (uid, idx, kind))
        self._track_buffered(1)
        if t > self._max_seen:
            self._max_seen = t

    def add_batch(self, t: int, batch: ReportBatch) -> int:
        """Buffer one timestamp's pre-encoded reports in one call.

        The columnar zero-copy twin of per-report :meth:`add`: the batch
        is buffered *as-is* (its arrays are never exploded into rows) and
        concatenated with its timestamp's other segments at close, where
        one stable uid sort restores the canonical order — so mixing
        batch and loose submissions is fine.  Returns the number of rows
        buffered (0 when the whole batch is late).
        """
        t = int(t)
        if t < self._next_t:
            self.n_late_dropped += len(batch)
            return 0
        if len(batch):
            self._buffers.setdefault(t, []).append(batch)
            self._track_buffered(len(batch))
        if t > self._max_seen:
            self._max_seen = t
        return len(batch)

    # ------------------------------------------------------------------ #
    # closing
    # ------------------------------------------------------------------ #
    @property
    def watermark(self) -> int:
        """Largest timestamp that is safe to close.

        Seeing a report for ``max_seen`` promises nothing about timestamps
        within ``max_lateness`` of it — including ``max_seen`` itself, whose
        own reports are still arriving — hence the additional ``− 1``.
        """
        return self._max_seen - self.max_lateness - 1

    @property
    def next_t(self) -> int:
        return self._next_t

    @property
    def watermark_lag(self) -> int:
        """Timestamps seen in the stream but not yet closed.

        Zero when fully caught up; under steady traffic it hovers around
        ``max_lateness + 1`` (the window the watermark holds open), and a
        growing value means closing has fallen behind arrival.
        """
        return max(0, self._max_seen - self._next_t + 1)

    def pop_ready(self) -> list[ClosedTimestamp]:
        """Close every timestamp at or below the watermark, in order.

        Timestamps with no buffered reports still close (as empty rounds)
        so the curator's consecutive-timestamp invariant holds across
        quiet periods.
        """
        out: list[ClosedTimestamp] = []
        while self._next_t <= self.watermark:
            out.append(self._close(self._next_t))
            self._next_t += 1
        return out

    def flush(self) -> list[ClosedTimestamp]:
        """Close everything buffered (end of stream)."""
        out: list[ClosedTimestamp] = []
        while self._next_t <= self._max_seen:
            out.append(self._close(self._next_t))
            self._next_t += 1
        return out

    def _track_buffered(self, n: int) -> None:
        """Maintain the backlog counter and its high-water mark."""
        self._n_buffered += n
        if self._n_buffered > self.backlog_high_water:
            self.backlog_high_water = self._n_buffered

    @property
    def backlog(self) -> int:
        """Rows currently buffered and awaiting their timestamp's close."""
        return self._n_buffered

    @staticmethod
    def _append_row(segments: list, row: tuple) -> None:
        """Append one loose row, extending the trailing row segment."""
        if segments and isinstance(segments[-1], list):
            segments[-1].append(row)
        else:
            segments.append([row])

    def _pop_segments(self, t: int) -> list:
        """Drain timestamp ``t``'s buffered segments (hook for subclasses)."""
        segments = self._buffers.pop(t, [])
        self._n_buffered -= sum(len(s) for s in segments)
        return segments

    def _close(self, t: int) -> ClosedTimestamp:
        segments = self._pop_segments(t)
        uid_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        kind_parts: list[np.ndarray] = []
        for seg in segments:
            if isinstance(seg, ReportBatch):
                uid_parts.append(seg.user_ids)
                idx_parts.append(seg.state_idx)
                kind_parts.append(seg.kinds)
                continue
            m = len(seg)
            u = np.empty(m, dtype=np.int64)
            ix = np.empty(m, dtype=np.int64)
            kd = np.empty(m, dtype=np.int8)
            for i, (uid, state_idx, kind) in enumerate(seg):
                u[i], ix[i], kd[i] = uid, state_idx, kind
            uid_parts.append(u)
            idx_parts.append(ix)
            kind_parts.append(kd)
        if not uid_parts:
            uids = np.empty(0, dtype=np.int64)
            idx = np.empty(0, dtype=np.int64)
            kinds = np.empty(0, dtype=np.int8)
        elif len(uid_parts) == 1:
            uids, idx, kinds = uid_parts[0], idx_parts[0], kind_parts[0]
        else:
            uids = np.concatenate(uid_parts)
            idx = np.concatenate(idx_parts)
            kinds = np.concatenate(kind_parts)
        # Canonical row order: stable sort of the arrival-order
        # concatenation by user id, so the batch (and therefore the
        # curator's RNG consumption) is arrival-order independent —
        # identical to the historical row-at-a-time materialisation.
        order = np.argsort(uids, kind="stable")
        batch = ReportBatch(uids[order], idx[order], kinds[order])
        return ClosedTimestamp(
            t=t,
            batch=batch,
            newly_entered=batch.user_ids[batch.kinds == KIND_ENTER],
            quitted=batch.user_ids[batch.kinds == KIND_QUIT],
            n_active=int((batch.kinds != KIND_QUIT).sum()),
        )


class MultiConsumerAssembler(TimestampAssembler):
    """A :class:`TimestampAssembler` safe to feed from several consumers.

    The single-consumer assembler serializes every ``add`` behind the one
    thread that owns it — with parallel shard rounds upstream, assembly
    becomes the serial section.  This subclass hash-partitions buffering
    by user id (:func:`~repro.stream.reports.shard_of_array`, the same
    Knuth hash the sharded engine uses), so ``n_partitions`` feeders can
    buffer concurrently, each touching only its partition's lock.

    Closed output is **canonical and identical to the single-consumer
    reference**: a close drains every partition and stable-sorts the
    concatenation by user id — the same order :meth:`TimestampAssembler
    ._close` produces — and duplicate reports of one uid hash to one
    partition, so even their relative order survives.  The property tests
    in ``tests/stream/test_multi_consumer.py`` pin this equivalence under
    randomized lateness/shuffle schedules.

    Correctness of the late check under concurrency: feeders take their
    partition's lock *before* comparing ``t`` against ``next_t``, and a
    close bumps ``next_t`` (under the state lock) *before* draining the
    partitions — so a feeder either sees the bumped ``next_t`` and counts
    the row late, or lands the row before the drain reaches its
    partition.  Rows are never silently stranded in a closed timestamp's
    buffer.
    """

    def __init__(
        self, space, start_t: int = 0, max_lateness: int = 0,
        n_partitions: int = 2,
    ) -> None:
        import threading

        super().__init__(space, start_t=start_t, max_lateness=max_lateness)
        if n_partitions < 1:
            raise ConfigurationError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        self.n_partitions = int(n_partitions)
        self._parts: list[dict[int, list[tuple[int, int, int]]]] = [
            {} for _ in range(self.n_partitions)
        ]
        self._part_locks = [threading.Lock() for _ in range(self.n_partitions)]
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # feeding (concurrent)
    # ------------------------------------------------------------------ #
    def add(self, report: UserReport) -> None:
        t = int(report.t)
        uid, idx, kind = self._encode(report)  # pure: outside any lock
        p = int(shard_of_array([uid], self.n_partitions)[0])
        with self._part_locks[p]:
            if t < self._next_t:
                with self._state_lock:
                    self.n_late_dropped += 1
                return
            self._append_row(self._parts[p].setdefault(t, []), (uid, idx, kind))
            with self._state_lock:
                self._track_buffered(1)
                if t > self._max_seen:
                    self._max_seen = t

    def add_batch(self, t: int, batch: ReportBatch) -> int:
        t = int(t)
        if len(batch) == 0:
            # Still advances the watermark clock for empty rounds.
            with self._part_locks[0]:
                if t < self._next_t:
                    return 0
                with self._state_lock:
                    if t > self._max_seen:
                        self._max_seen = t
            return 0
        pids = shard_of_array(batch.user_ids, self.n_partitions)
        buffered = 0
        for p in range(self.n_partitions):
            rows_p = np.flatnonzero(pids == p)
            if rows_p.size == 0:
                continue
            sub = batch.take(rows_p)
            with self._part_locks[p]:
                if t < self._next_t:
                    with self._state_lock:
                        self.n_late_dropped += len(sub)
                    continue
                self._parts[p].setdefault(t, []).append(sub)
                buffered += len(sub)
                with self._state_lock:
                    self._track_buffered(len(sub))
                    if t > self._max_seen:
                        self._max_seen = t
        return buffered

    # ------------------------------------------------------------------ #
    # closing (single closer at a time; safe against concurrent feeders)
    # ------------------------------------------------------------------ #
    def _claim_next(self, bound: int) -> Optional[int]:
        with self._state_lock:
            if self._next_t > bound:
                return None
            t = self._next_t
            self._next_t += 1
            return t

    def pop_ready(self) -> list[ClosedTimestamp]:
        out: list[ClosedTimestamp] = []
        while True:
            t = self._claim_next(self.watermark)
            if t is None:
                return out
            out.append(self._close(t))

    def flush(self) -> list[ClosedTimestamp]:
        out: list[ClosedTimestamp] = []
        while True:
            t = self._claim_next(self._max_seen)
            if t is None:
                return out
            out.append(self._close(t))

    def _pop_segments(self, t: int) -> list:
        segments: list = []
        for buf, lock in zip(self._parts, self._part_locks):
            with lock:
                segments.extend(buf.pop(t, []))
        with self._state_lock:
            self._n_buffered -= sum(len(s) for s in segments)
        return segments

    # ------------------------------------------------------------------ #
    # pickling (quiesced snapshots only)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # Locks are process-local machinery and must never reach a pickle;
        # buffered rows and watermark state are plain data.  Snapshots are
        # only meaningful with no concurrent feeders (the service drains
        # before checkpointing).
        state = dict(self.__dict__)
        state["_part_locks"] = None
        state["_state_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        import threading

        self.__dict__.update(state)
        self._part_locks = [
            threading.Lock() for _ in range(self.n_partitions)
        ]
        self._state_lock = threading.Lock()


def make_assembler(
    space, start_t: int = 0, max_lateness: int = 0, consumers: int = 1
) -> TimestampAssembler:
    """The assembler a service should run: single- or multi-consumer."""
    if consumers <= 1:
        return TimestampAssembler(
            space, start_t=start_t, max_lateness=max_lateness
        )
    return MultiConsumerAssembler(
        space, start_t=start_t, max_lateness=max_lateness,
        n_partitions=consumers,
    )


class IngestionService:
    """Bounded-queue asyncio service driving a curator from raw reports.

    The ordering/processing core is an
    :class:`~repro.api.session.IngestSession` — the same object the
    unified curator API and the HTTP ingress drive — so the asyncio shell
    here adds exactly one thing: a bounded ingress queue whose ``submit``
    suspends producers when the curator falls behind (backpressure).

    Parameters
    ----------
    curator:
        An :class:`~repro.core.online.OnlineRetraSyn` (or sharded
        subclass).  Resume is automatic: ingestion starts at
        ``curator._last_t + 1``.
    queue_size:
        Bound of the ingress queue; a full queue suspends ``submit``
        callers until the consumer catches up (backpressure).
    max_lateness:
        Watermark slack forwarded to :class:`TimestampAssembler`.
    checkpoint_path / checkpoint_every:
        When ``checkpoint_path`` is set, a final checkpoint is always
        written at end of stream; ``checkpoint_every > 0`` additionally
        checkpoints after every that many processed timestamps.
    """

    _SENTINEL = None

    def __init__(
        self,
        curator,
        queue_size: int = 10_000,
        max_lateness: int = 0,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 1,
        ingest_consumers: int = 1,
    ) -> None:
        from repro.api.session import IngestSession
        from repro.api.specs import ServiceSpec, SessionSpec

        if queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        self.curator = curator
        self.session = IngestSession(
            curator,
            SessionSpec.from_config(
                curator.config,
                service=ServiceSpec(
                    transport="ingest",
                    queue_size=queue_size,
                    max_lateness=max_lateness,
                    checkpoint_path=(
                        None if checkpoint_path is None else str(checkpoint_path)
                    ),
                    checkpoint_every=checkpoint_every,
                    checkpoint_keep=checkpoint_keep,
                    ingest_consumers=ingest_consumers,
                ),
            ),
        )
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._draining = False

    @property
    def assembler(self) -> TimestampAssembler:
        return self.session.assembler

    @property
    def stats(self) -> IngestStats:
        return self.session.ingest_stats

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    async def submit(self, report: UserReport) -> None:
        """Enqueue one report; suspends while the queue is full."""
        if self.queue.full():
            self.stats.backpressure_waits += 1
        await self.queue.put(report)
        self.stats.n_submitted += 1

    async def stop(self) -> None:
        """Signal end-of-stream; ``run`` flushes and returns."""
        await self.queue.put(self._SENTINEL)

    def begin_drain(self) -> None:
        """Mark the service draining (SIGTERM path).

        A drained shutdown closes only watermark-complete timestamps:
        the trailing timestamps whose reports were still arriving stay
        unprocessed, so the final checkpoint lands on a timestamp
        boundary and a resumed replay (which re-reads those reports from
        the source) is bit-identical to an uninterrupted run.
        """
        self._draining = True

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    async def run(self) -> IngestStats:
        """Drain the queue until the sentinel, driving the curator."""
        while True:
            report = await self.queue.get()
            if report is self._SENTINEL:
                self.session.close(flush_partial=not self._draining)
                return self.stats
            self.session.assembler.add(report)
            if self.session.advance():
                # Yield so suspended producers resume promptly after a
                # CPU-heavy curator round.
                await asyncio.sleep(0)


async def _drive(
    service: IngestionService,
    reports: Union[Iterable[UserReport], AsyncIterator[UserReport]],
    handle_signals: bool = True,
) -> IngestStats:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: list[signal.Signals] = []

    def _on_signal() -> None:
        # Graceful drain: the producer stops feeding, the consumer closes
        # watermark-complete rounds only and writes the final checkpoint.
        service.begin_drain()
        stop.set()

    if handle_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            # add_signal_handler is main-thread / Unix only; callers
            # driving from worker threads simply get no drain hook.
            try:
                loop.add_signal_handler(sig, _on_signal)
            except (NotImplementedError, RuntimeError, ValueError):
                continue
            installed.append(sig)

    async def _produce() -> None:
        if hasattr(reports, "__aiter__"):
            async for report in reports:  # pragma: no cover - async sources
                if stop.is_set():
                    break
                await service.submit(report)
        else:
            for report in reports:
                if stop.is_set():
                    break
                await service.submit(report)
        await service.stop()

    consumer = asyncio.ensure_future(service.run())
    producer = asyncio.ensure_future(_produce())
    try:
        # FIRST_EXCEPTION: if the curator raises, stop immediately instead
        # of leaving the producer suspended on a full queue forever.
        done, _pending = await asyncio.wait(
            {consumer, producer}, return_when=asyncio.FIRST_EXCEPTION
        )
        for task in done:
            if task.cancelled():
                continue
            exc = task.exception()
            if exc is not None:
                raise exc
        return await consumer
    finally:
        for task in (consumer, producer):
            if not task.done():
                task.cancel()
        for sig in installed:
            loop.remove_signal_handler(sig)


def ingest_events(
    curator,
    reports: Iterable[UserReport],
    queue_size: int = 10_000,
    max_lateness: int = 0,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    checkpoint_keep: int = 1,
    ingest_consumers: int = 1,
) -> IngestStats:
    """Synchronously run the full ingestion loop over ``reports``.

    Builds an :class:`IngestionService`, feeds every report through the
    bounded queue, flushes, and returns the stats.  This is the CLI and
    test entry point; long-running deployments hold the service object and
    call ``submit`` from their own event loop instead.

    SIGTERM/SIGINT trigger a graceful drain (when running on the main
    thread): feeding stops, watermark-complete timestamps finish, and a
    final checkpoint is written before returning normally.
    """
    service = IngestionService(
        curator,
        queue_size=queue_size,
        max_lateness=max_lateness,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        checkpoint_keep=checkpoint_keep,
        ingest_consumers=ingest_consumers,
    )
    return asyncio.run(_drive(service, reports))


def dataset_reports(
    view,
    start_t: int = 0,
    shuffle_rng: Optional[np.random.Generator] = None,
    block: int = 1,
) -> Iterator[UserReport]:
    """Replay a :class:`~repro.stream.reports.ColumnarStreamView` as an
    event stream of pre-encoded :class:`UserReport`\\ s.

    ``shuffle_rng`` permutes arrival order inside blocks of ``block``
    consecutive timestamps, simulating out-of-order delivery: with
    ``block = max_lateness + 1`` every report still lands within the
    service's lateness budget, so nothing is dropped and — thanks to the
    assembler's canonical ordering — the synthetic output is identical to
    an in-order replay.
    """
    block = max(1, int(block))
    for t0 in range(start_t, view.n_timestamps, block):
        ts = range(t0, min(t0 + block, view.n_timestamps))
        rows: list[UserReport] = []
        for t in ts:
            b = view.batch_at(t)
            rows.extend(
                UserReport.encoded(uid, t, idx, kind)
                for uid, idx, kind in zip(
                    b.user_ids.tolist(),
                    b.state_idx.tolist(),
                    b.kinds.tolist(),
                )
            )
        if shuffle_rng is not None and len(rows) > 1:
            order = shuffle_rng.permutation(len(rows))
            rows = [rows[int(i)] for i in order]
        yield from rows
