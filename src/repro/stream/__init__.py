"""Trajectory-stream substrate.

Models the paper's streaming setting (Sections II-B and III-B):

* :class:`~repro.stream.events.TransitionState` — a user's per-timestamp
  mobility status: a movement ``m_ij`` between adjacent cells, an entering
  event ``e_i``, or a quitting event ``q_j``.
* :class:`~repro.stream.state_space.TransitionStateSpace` — dense indexing of
  the full state domain ``S`` under reachability constraints (``O(9|C|)``).
* :class:`~repro.stream.stream.StreamDataset` — a collection of cell
  trajectories viewed timestamp-by-timestamp, deriving each user's
  transition state at each timestamp.
* :class:`~repro.stream.user_tracker.UserTracker` — the dynamic active-user
  set with the recycling rule of Algorithm 1 (line 9).
* :class:`~repro.stream.slots.UserSlotTable` — the vectorized uid → dense
  slot mapping shared by the tracker's status columns and the columnar
  privacy accountant's spend ring buffer.
* :class:`~repro.stream.reports.ReportBatch` — the columnar report plane:
  per-timestamp batches as numpy index arrays, the wire format the whole
  collection pipeline (shards included) speaks.
* :mod:`~repro.stream.ingest` — the async ingestion front-end: out-of-order
  reports assembled into per-timestamp batches under a watermark, behind a
  bounded backpressure queue.
"""

from repro.stream.events import StateKind, TransitionState
from repro.stream.ingest import (
    IngestionService,
    IngestStats,
    TimestampAssembler,
    UserReport,
    ingest_events,
)
from repro.stream.reports import (
    ColumnarStreamView,
    ReportBatch,
    shard_of_array,
)
from repro.stream.slots import UserSlotTable
from repro.stream.state_space import TransitionStateSpace
from repro.stream.stream import StreamDataset
from repro.stream.user_tracker import UserStatus, UserTracker
from repro.stream.encoder import UserSideEncoder

__all__ = [
    "StateKind",
    "TransitionState",
    "TransitionStateSpace",
    "StreamDataset",
    "UserStatus",
    "UserTracker",
    "UserSlotTable",
    "UserSideEncoder",
    "ReportBatch",
    "ColumnarStreamView",
    "shard_of_array",
    "UserReport",
    "TimestampAssembler",
    "IngestionService",
    "IngestStats",
    "ingest_events",
]
