"""Stream view over a collection of cell trajectories.

A :class:`StreamDataset` holds the *original database* ``T_orig`` (paper
Definition 4): one cell trajectory per user stream, each with an entering
timestamp.  It exposes the per-timestamp views the curator pipeline consumes:
which users are reporting, what transition state each reporting user is in,
and how many streams are active.

Transition-state convention (matching the authors' release):

* at ``t == start_time``            the user reports ``e_{c_t}``;
* at ``start_time < t <= end_time`` the user reports ``m_{c_{t-1} c_t}``;
* at ``t == end_time + 1``          the user reports ``q_{c_end}``;
* otherwise the user has no state at ``t`` (not participating).

Trajectories with gaps must be split into multiple streams beforehand (the
paper inserts quitting events and splits; see
:func:`split_on_gaps`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.geo.grid import Grid
from repro.geo.trajectory import CellTrajectory, average_length, total_points
from repro.stream.events import TransitionState


@dataclass
class StreamDataset:
    """The original trajectory-stream database ``T_orig``.

    Attributes
    ----------
    grid:
        Discretisation grid all trajectories live on.
    trajectories:
        One finished :class:`CellTrajectory` per user stream.
    n_timestamps:
        Horizon of the stream; derived from the data when omitted.
    """

    grid: Grid
    trajectories: list[CellTrajectory] = field(default_factory=list)
    n_timestamps: Optional[int] = None
    name: str = "unnamed"

    def __post_init__(self) -> None:
        from repro.core.trajectory_store import StoreTrajectories

        if isinstance(self.trajectories, StoreTrajectories):
            # Store-backed lazy sequence: ids are the (unique) store rows
            # and the horizon comes from the store arrays, so nothing here
            # materialises a CellTrajectory object.
            if self.n_timestamps is None:
                self.n_timestamps = self.trajectories.horizon()
            self._by_user = None
        else:
            for i, traj in enumerate(self.trajectories):
                if traj.user_id is None:
                    traj.user_id = i
            if self.n_timestamps is None:
                # Include the quit-report timestamp (end_time + 1).
                self.n_timestamps = (
                    max((t.end_time + 2 for t in self.trajectories), default=0)
                )
            self._by_user = {t.user_id: t for t in self.trajectories}
            if len(self._by_user) != len(self.trajectories):
                raise DatasetError("duplicate user_id among trajectories")
        self._cell_counts: Optional[np.ndarray] = None
        self._transitions_by_t: Optional[list] = None

    @classmethod
    def from_store(
        cls,
        grid: Grid,
        store,
        rows=None,
        n_timestamps: Optional[int] = None,
        name: str = "store",
    ) -> "StreamDataset":
        """Dataset over a :class:`~repro.core.trajectory_store.TrajectoryStore`.

        Trajectory objects are materialised lazily, per stream, the first
        time a caller indexes or iterates them; array-side consumers (the
        primed count matrix, ``user_ids``, ``stats``'s point totals) never
        build objects.  ``rows`` selects and orders the streams (default:
        every stream in creation order).
        """
        from repro.core.trajectory_store import StoreTrajectories

        if rows is None:
            rows = np.arange(store.n_total, dtype=np.int64)
        return cls(
            grid,
            StoreTrajectories(store, rows),
            n_timestamps=n_timestamps,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[CellTrajectory]:
        return iter(self.trajectories)

    def trajectory(self, user_id: int) -> CellTrajectory:
        if self._by_user is None:
            return self.trajectories[self.trajectories.index_of_user(user_id)]
        if user_id not in self._by_user:
            raise DatasetError(f"unknown user_id {user_id}")
        return self._by_user[user_id]

    @property
    def user_ids(self) -> list[int]:
        if self._by_user is None:
            return self.trajectories.user_ids()
        return [t.user_id for t in self.trajectories]

    # ------------------------------------------------------------------ #
    # per-timestamp views
    # ------------------------------------------------------------------ #
    def active_at(self, t: int) -> list[CellTrajectory]:
        """Streams with a location report at timestamp ``t``."""
        return [traj for traj in self.trajectories if traj.active_at(t)]

    def n_active_at(self, t: int) -> int:
        return sum(1 for traj in self.trajectories if traj.active_at(t))

    def cells_at(self, t: int) -> np.ndarray:
        """Array of cells occupied at timestamp ``t`` (one per active user)."""
        return np.asarray(
            [traj.cell_at(t) for traj in self.trajectories if traj.active_at(t)],
            dtype=np.int64,
        )

    def transition_state(self, traj: CellTrajectory, t: int) -> Optional[TransitionState]:
        """The transition state of one stream at timestamp ``t`` (or None)."""
        if t == traj.start_time:
            return TransitionState.enter(traj.cells[0])
        if traj.start_time < t <= traj.end_time:
            i = t - traj.start_time
            return TransitionState.move(traj.cells[i - 1], traj.cells[i])
        if t == traj.end_time + 1:
            return TransitionState.quit(traj.last_cell)
        return None

    def participants_at(self, t: int) -> list[tuple[int, TransitionState]]:
        """All ``(user_id, state)`` pairs with a defined state at ``t``.

        These are the users *able* to report at ``t``; the allocation
        strategy decides which of them actually do.
        """
        out: list[tuple[int, TransitionState]] = []
        for traj in self.trajectories:
            state = self.transition_state(traj, t)
            if state is not None:
                out.append((traj.user_id, state))
        return out

    def newly_entered_at(self, t: int) -> list[int]:
        """User ids whose stream starts exactly at ``t``."""
        return [traj.user_id for traj in self.trajectories if traj.start_time == t]

    def quitted_at(self, t: int) -> list[int]:
        """User ids whose quit event falls at ``t`` (last report at t-1)."""
        return [traj.user_id for traj in self.trajectories if traj.end_time + 1 == t]

    # ------------------------------------------------------------------ #
    # cached aggregate views (read-only; built lazily for metric speed)
    # ------------------------------------------------------------------ #
    def cell_counts_matrix(self) -> np.ndarray:
        """``(n_timestamps, n_cells)`` matrix of point counts per cell.

        Built once and cached; datasets are treated as immutable after
        construction, which holds for both generated inputs and finished
        synthesis outputs.
        """
        if self._cell_counts is None:
            counts = np.zeros((self.n_timestamps, self.grid.n_cells), dtype=np.int64)
            for traj in self.trajectories:
                for i, c in enumerate(traj.cells):
                    t = traj.start_time + i
                    if 0 <= t < self.n_timestamps:
                        counts[t, c] += 1
            self._cell_counts = counts
        return self._cell_counts

    def prime_cell_counts(self, counts: np.ndarray) -> None:
        """Install a precomputed count matrix (e.g. from a TrajectoryStore).

        The synthesis plane computes the same ``(n_timestamps, n_cells)``
        matrix columnar-side (one bincount over the flat cell buffer); this
        hook lets it seed the cache so streaming metrics never run the
        per-trajectory loop above.  The matrix must match what the loop
        would produce — shape-checked here, value-pinned by
        ``tests/core/test_trajectory_store.py``.
        """
        counts = np.asarray(counts)
        expected = (self.n_timestamps, self.grid.n_cells)
        if counts.shape != expected:
            raise DatasetError(
                f"count matrix shape {counts.shape} does not match {expected}"
            )
        self._cell_counts = counts

    def transitions_at(self, t: int) -> list[tuple[int, int]]:
        """All real movement pairs ``(c_{t-1}, c_t)`` landing at ``t``."""
        if self._transitions_by_t is None:
            by_t: list[list[tuple[int, int]]] = [
                [] for _ in range(self.n_timestamps)
            ]
            for traj in self.trajectories:
                for i in range(1, len(traj.cells)):
                    ts = traj.start_time + i
                    if 0 <= ts < self.n_timestamps:
                        by_t[ts].append((traj.cells[i - 1], traj.cells[i]))
            self._transitions_by_t = by_t
        return self._transitions_by_t[t]

    def active_counts(self) -> np.ndarray:
        """Number of active streams at every timestamp."""
        return self.cell_counts_matrix().sum(axis=1)

    # ------------------------------------------------------------------ #
    # whole-stream statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Dataset statistics in the shape of the paper's Table I."""
        if self._by_user is None:
            # Store-backed: point totals come from the store's length
            # column, so printing stats never materialises trajectories.
            trajs = self.trajectories
            n_points = int(trajs.store.lengths_of(trajs.rows).sum())
            n = len(trajs)
            avg = n_points / n if n else 0.0
        else:
            n = len(self.trajectories)
            n_points = total_points(self.trajectories)
            avg = average_length(self.trajectories)
        return {
            "name": self.name,
            "size": n,
            "n_points": n_points,
            "average_length": avg,
            "timestamps": self.n_timestamps,
            "grid_k": self.grid.k,
        }

    def subsample(self, fraction: float, rng: np.random.Generator) -> "StreamDataset":
        """Random subset of streams (used by the Fig. 7 scalability sweep)."""
        if not 0.0 < fraction <= 1.0:
            raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
        n = max(1, int(round(len(self.trajectories) * fraction)))
        idx = rng.choice(len(self.trajectories), size=n, replace=False)
        chosen = [self.trajectories[i] for i in sorted(idx)]
        copies = [
            CellTrajectory(t.start_time, list(t.cells), user_id=i)
            for i, t in enumerate(chosen)
        ]
        return StreamDataset(
            self.grid,
            copies,
            n_timestamps=self.n_timestamps,
            name=f"{self.name}[{fraction:.0%}]",
        )


def split_on_gaps(
    start_time: int,
    cells_with_times: Sequence[tuple[int, int]],
    user_id_start: int = 0,
) -> list[CellTrajectory]:
    """Split a sparsely reported trace into gap-free streams.

    ``cells_with_times`` is a list of ``(timestamp, cell)`` pairs sorted by
    timestamp, possibly with missing timestamps.  Following Section V-A, a
    quitting event is implied wherever consecutive reports are non-adjacent
    in time and the trace restarts as a fresh stream.

    The ``start_time`` argument shifts every timestamp (useful when aligning
    raw data to the collection clock).
    """
    streams: list[CellTrajectory] = []
    cur_cells: list[int] = []
    cur_start = 0
    prev_t: Optional[int] = None
    uid = user_id_start
    for t, cell in cells_with_times:
        if prev_t is None or t == prev_t + 1:
            if prev_t is None:
                cur_start = t + start_time
            cur_cells.append(cell)
        else:
            streams.append(CellTrajectory(cur_start, cur_cells, user_id=uid))
            uid += 1
            cur_start = t + start_time
            cur_cells = [cell]
        prev_t = t
    if cur_cells:
        streams.append(CellTrajectory(cur_start, cur_cells, user_id=uid))
    return streams


def from_continuous(
    grid: Grid,
    raw_trajectories: Iterable,
    n_timestamps: Optional[int] = None,
    name: str = "unnamed",
) -> StreamDataset:
    """Discretise continuous :class:`~repro.geo.trajectory.Trajectory` objects
    into a :class:`StreamDataset` with reachability snapping."""
    cell_trajs = [t.discretize(grid) for t in raw_trajectories]
    for i, t in enumerate(cell_trajs):
        t.user_id = i
    return StreamDataset(grid, cell_trajs, n_timestamps=n_timestamps, name=name)
