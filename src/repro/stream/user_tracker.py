"""Dynamic active-user set with w-window recycling.

Population-division allocation (Algorithm 1) samples reporters from a
*dynamic* active-user set:

* a user becomes **active** when their stream starts (line 1/7);
* after reporting, the user is marked **inactive** (line 14) so they are not
  asked again inside the current privacy window;
* at timestamp ``t`` users who reported at ``t - w`` and have not quit are
  **recycled** back to active (line 9);
* users whose stream ended are **quitted** and never recycled (line 8).

This bookkeeping is exactly what guarantees w-event ε-LDP under population
division: each user reports at most once with full ε inside any window of
``w`` timestamps.

Internally the tracker is columnar end-to-end: uid → row resolution goes
through a :class:`~repro.stream.slots.UserSlotTable` (one vectorized
``searchsorted`` per batch, no per-uid dict scan), statuses live in an int8
code array and last-report timestamps in an int64 array, both indexed by
the table's dense slots.  Every lifecycle transition, the hot ``recycle``
scan and ``active_mask`` are single vectorized masks over the population.
The table can be *shared* — the unsharded curator hands the same instance
to its columnar privacy accountant, so a user occupies one row in both
planes; slots interned by the other component stay in an *unknown* state
here until the tracker itself meets the user.  Report histories (an
audit/test surface) are kept as per-round ``(slots, t)`` array pairs and
reconstructed on demand.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stream.slots import UserSlotTable


class UserStatus(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    QUITTED = "quitted"


#: int8 codes backing the status column.  _UNKNOWN marks slots interned into
#: a shared table by another component (e.g. the accountant) that the
#: tracker itself has never been told about.
_ACTIVE, _INACTIVE, _QUITTED, _UNKNOWN = 0, 1, 2, 3
_CODE_TO_STATUS = {
    _ACTIVE: UserStatus.ACTIVE,
    _INACTIVE: UserStatus.INACTIVE,
    _QUITTED: UserStatus.QUITTED,
}
#: Sentinel for "never reported"; smaller than any valid t - w.
_NEVER = np.iinfo(np.int64).min // 2


class UserTracker:
    """Tracks user statuses and performs the t−w recycling rule.

    Parameters
    ----------
    w:
        Privacy-window length.
    slots:
        Optional shared :class:`~repro.stream.slots.UserSlotTable`.  When
        omitted the tracker owns a private table.
    """

    def __init__(self, w: int, slots: Optional[UserSlotTable] = None) -> None:
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.w = int(w)
        self._table = slots if slots is not None else UserSlotTable()
        self._status = np.empty(0, dtype=np.int8)
        self._last_report = np.empty(0, dtype=np.int64)
        # Report history, columnar: one (slot-array, timestamp) pair per
        # mark_reported call; report_history() builds (and caches) a
        # per-slot index on first query so whole-population audits stay
        # linear in the number of reports.
        self._hist_slots: list[np.ndarray] = []
        self._hist_ts: list[int] = []
        self._hist_index: Optional[dict[int, list[int]]] = None

    # ------------------------------------------------------------------ #
    # columnar storage
    # ------------------------------------------------------------------ #
    def _ensure(self) -> None:
        """Grow the status columns to cover every slot in the table."""
        need = self._table.n_slots
        cap = len(self._status)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 1024)
        status = np.full(new_cap, _UNKNOWN, dtype=np.int8)
        status[:cap] = self._status
        last = np.full(new_cap, _NEVER, dtype=np.int64)
        last[:cap] = self._last_report
        self._status, self._last_report = status, last

    def _slots_of(self, user_ids: Iterable[int]) -> np.ndarray:
        """Dense slots for ``user_ids``, interning unseen ids — vectorized.

        The table validates ids (integer dtype, int64 range), so float or
        object inputs raise instead of silently aliasing truncated ids.
        """
        slots = self._table.intern(
            user_ids if isinstance(user_ids, np.ndarray) else list(user_ids)
        )
        self._ensure()
        return slots

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #
    def register(self, user_ids: Iterable[int]) -> None:
        """Mark newly arrived users as active (Algorithm 1, lines 1 and 7)."""
        slots = self._slots_of(user_ids)
        if slots.size:
            keep = self._status[slots] != _QUITTED
            self._status[slots[keep]] = _ACTIVE

    def mark_quitted(self, user_ids: Iterable[int]) -> None:
        """Mark users who ceased sharing as quitted (line 8)."""
        slots = self._slots_of(user_ids)
        if slots.size:
            self._status[slots] = _QUITTED

    def mark_reported(self, user_ids: Iterable[int], timestamp: int) -> None:
        """Mark sampled reporters inactive and remember when (line 14)."""
        slots = self._slots_of(user_ids)
        if not slots.size:
            return
        # An unknown (shared-table) user reporting here behaves like a
        # fresh arrival, as the dict tracker's implicit creation did.
        live = self._status[slots] != _QUITTED
        chosen = slots[live]
        self._status[chosen] = _INACTIVE
        self._last_report[chosen] = timestamp
        if chosen.size:
            self._hist_slots.append(chosen.copy())
            self._hist_ts.append(int(timestamp))
            self._hist_index = None

    def recycle(self, t: int) -> list[int]:
        """Reactivate users whose last report was at ``t - w`` (line 9).

        Returns the recycled user ids (useful for tests and audits).
        One vectorized scan over the status / last-report columns.
        """
        target = t - self.w
        if target < 0:
            return []
        n = self._table.n_slots
        if n > len(self._status):
            self._ensure()
        mask = (self._status[:n] == _INACTIVE) & (self._last_report[:n] == target)
        self._status[:n][mask] = _ACTIVE
        return self._table.uids[mask].tolist()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def status(self, user_id: int) -> UserStatus:
        slot = self._table.slot_of(user_id)
        if slot < 0 or slot >= len(self._status):
            raise ConfigurationError(f"unknown user {user_id}")
        code = int(self._status[slot])
        if code == _UNKNOWN:
            raise ConfigurationError(f"unknown user {user_id}")
        return _CODE_TO_STATUS[code]

    def active_mask(self, user_ids) -> np.ndarray:
        """Boolean mask of which of ``user_ids`` are currently active.

        Columnar twin of per-user :meth:`status` calls; unknown ids raise
        exactly as ``status`` does (including ids another component
        interned into a shared table without registering them here).
        """
        ids = np.atleast_1d(np.asarray(user_ids))
        if ids.size == 0:
            return np.zeros(0, dtype=bool)
        slots = self._table.lookup(ids)  # validates integer dtype/range
        bad = np.flatnonzero((slots < 0) | (slots >= len(self._status)))
        if bad.size:
            raise ConfigurationError(f"unknown user {int(ids[bad[0]])}")
        codes = self._status[slots]
        unknown = np.flatnonzero(codes == _UNKNOWN)
        if unknown.size:
            raise ConfigurationError(f"unknown user {int(ids[unknown[0]])}")
        return codes == _ACTIVE

    def active_users(self) -> list[int]:
        """The current active set ``U_A`` (Algorithm 1, line 11)."""
        n = min(self._table.n_slots, len(self._status))
        return self._table.uids[:n][self._status[:n] == _ACTIVE].tolist()

    def n_active(self) -> int:
        n = min(self._table.n_slots, len(self._status))
        return int((self._status[:n] == _ACTIVE).sum())

    def n_known(self) -> int:
        """Users the tracker has met (excludes shared-table-only slots)."""
        n = min(self._table.n_slots, len(self._status))
        return int((self._status[:n] != _UNKNOWN).sum())

    def known_users(self) -> list[int]:
        """Ids of every user the tracker has met, in slot order."""
        n = min(self._table.n_slots, len(self._status))
        return self._table.uids[:n][self._status[:n] != _UNKNOWN].tolist()

    def report_history(self, user_id: int) -> list[int]:
        slot = self._table.slot_of(user_id)
        if slot < 0:
            return []
        if self._hist_index is None:
            index: dict[int, list[int]] = {}
            for slots, t in zip(self._hist_slots, self._hist_ts):
                for s in slots.tolist():
                    index.setdefault(s, []).append(t)
            self._hist_index = index
        return list(self._hist_index.get(slot, ()))
