"""Dynamic active-user set with w-window recycling.

Population-division allocation (Algorithm 1) samples reporters from a
*dynamic* active-user set:

* a user becomes **active** when their stream starts (line 1/7);
* after reporting, the user is marked **inactive** (line 14) so they are not
  asked again inside the current privacy window;
* at timestamp ``t`` users who reported at ``t - w`` and have not quit are
  **recycled** back to active (line 9);
* users whose stream ended are **quitted** and never recycled (line 8).

This bookkeeping is exactly what guarantees w-event ε-LDP under population
division: each user reports at most once with full ε inside any window of
``w`` timestamps.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Iterable

from repro.exceptions import ConfigurationError


class UserStatus(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    QUITTED = "quitted"


class UserTracker:
    """Tracks user statuses and performs the t−w recycling rule."""

    def __init__(self, w: int) -> None:
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.w = int(w)
        self._status: dict[int, UserStatus] = {}
        self._reported_at: dict[int, list[int]] = defaultdict(list)

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #
    def register(self, user_ids: Iterable[int]) -> None:
        """Mark newly arrived users as active (Algorithm 1, lines 1 and 7)."""
        for uid in user_ids:
            if self._status.get(uid) is not UserStatus.QUITTED:
                self._status[uid] = UserStatus.ACTIVE

    def mark_quitted(self, user_ids: Iterable[int]) -> None:
        """Mark users who ceased sharing as quitted (line 8)."""
        for uid in user_ids:
            self._status[uid] = UserStatus.QUITTED

    def mark_reported(self, user_ids: Iterable[int], timestamp: int) -> None:
        """Mark sampled reporters inactive and remember when (line 14)."""
        for uid in user_ids:
            if self._status.get(uid) is UserStatus.QUITTED:
                continue
            self._status[uid] = UserStatus.INACTIVE
            self._reported_at[uid].append(timestamp)

    def recycle(self, t: int) -> list[int]:
        """Reactivate users whose last report was at ``t - w`` (line 9).

        Returns the recycled user ids (useful for tests and audits).
        """
        target = t - self.w
        recycled: list[int] = []
        if target < 0:
            return recycled
        for uid, times in self._reported_at.items():
            if not times or times[-1] != target:
                continue
            if self._status.get(uid) is UserStatus.INACTIVE:
                self._status[uid] = UserStatus.ACTIVE
                recycled.append(uid)
        return recycled

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def status(self, user_id: int) -> UserStatus:
        if user_id not in self._status:
            raise ConfigurationError(f"unknown user {user_id}")
        return self._status[user_id]

    def active_users(self) -> list[int]:
        """The current active set ``U_A`` (Algorithm 1, line 11)."""
        return [u for u, s in self._status.items() if s is UserStatus.ACTIVE]

    def n_active(self) -> int:
        return sum(1 for s in self._status.values() if s is UserStatus.ACTIVE)

    def n_known(self) -> int:
        return len(self._status)

    def report_history(self, user_id: int) -> list[int]:
        return list(self._reported_at.get(user_id, ()))
