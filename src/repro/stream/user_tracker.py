"""Dynamic active-user set with w-window recycling.

Population-division allocation (Algorithm 1) samples reporters from a
*dynamic* active-user set:

* a user becomes **active** when their stream starts (line 1/7);
* after reporting, the user is marked **inactive** (line 14) so they are not
  asked again inside the current privacy window;
* at timestamp ``t`` users who reported at ``t - w`` and have not quit are
  **recycled** back to active (line 9);
* users whose stream ended are **quitted** and never recycled (line 8).

This bookkeeping is exactly what guarantees w-event ε-LDP under population
division: each user reports at most once with full ε inside any window of
``w`` timestamps.

Internally the tracker is columnar: statuses live in an int8 code array and
last-report timestamps in an int64 array, both indexed by a dense per-user
slot.  The hot ``recycle`` scan is therefore one vectorized mask over the
whole population instead of a Python dict traversal, which is what keeps
million-user streams inside the per-timestamp budget.  Full report histories
(audit/test surface only) stay in a plain dict of lists.
"""

from __future__ import annotations

import enum
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError


class UserStatus(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    QUITTED = "quitted"


#: int8 codes backing the status column.
_ACTIVE, _INACTIVE, _QUITTED = 0, 1, 2
_CODE_TO_STATUS = {
    _ACTIVE: UserStatus.ACTIVE,
    _INACTIVE: UserStatus.INACTIVE,
    _QUITTED: UserStatus.QUITTED,
}
#: Sentinel for "never reported"; smaller than any valid t - w.
_NEVER = np.iinfo(np.int64).min // 2


class UserTracker:
    """Tracks user statuses and performs the t−w recycling rule."""

    def __init__(self, w: int) -> None:
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.w = int(w)
        self._slot: dict[int, int] = {}  # user id -> dense column index
        self._uids = np.empty(0, dtype=np.int64)
        self._status = np.empty(0, dtype=np.int8)
        self._last_report = np.empty(0, dtype=np.int64)
        self._n = 0
        self._history: dict[int, list[int]] = {}

    # ------------------------------------------------------------------ #
    # columnar storage
    # ------------------------------------------------------------------ #
    def _grow(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._uids)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 1024)
        for name, fill in (("_uids", 0), ("_status", _ACTIVE), ("_last_report", _NEVER)):
            old = getattr(self, name)
            fresh = np.full(new_cap, fill, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, name, fresh)

    def _slots_of(self, user_ids: Iterable[int]) -> np.ndarray:
        """Dense slots for ``user_ids``; unknown ids are appended as active."""
        ids = [int(u) for u in user_ids]  # normalise numpy ints to dict keys
        self._grow(len(ids))
        out = np.empty(len(ids), dtype=np.int64)
        for i, uid in enumerate(ids):
            slot = self._slot.get(uid)
            if slot is None:
                slot = self._n
                self._slot[uid] = slot
                self._uids[slot] = uid
                self._status[slot] = _ACTIVE
                self._last_report[slot] = _NEVER
                self._n += 1
            out[i] = slot
        return out

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #
    def register(self, user_ids: Iterable[int]) -> None:
        """Mark newly arrived users as active (Algorithm 1, lines 1 and 7)."""
        slots = self._slots_of(user_ids)
        if slots.size:
            keep = self._status[slots] != _QUITTED
            self._status[slots[keep]] = _ACTIVE

    def mark_quitted(self, user_ids: Iterable[int]) -> None:
        """Mark users who ceased sharing as quitted (line 8)."""
        slots = self._slots_of(user_ids)
        if slots.size:
            self._status[slots] = _QUITTED

    def mark_reported(self, user_ids: Iterable[int], timestamp: int) -> None:
        """Mark sampled reporters inactive and remember when (line 14)."""
        ids = [int(u) for u in user_ids]
        slots = self._slots_of(ids)
        if not slots.size:
            return
        live = self._status[slots] != _QUITTED
        chosen = slots[live]
        self._status[chosen] = _INACTIVE
        self._last_report[chosen] = timestamp
        for uid, ok in zip(ids, live):
            if ok:
                self._history.setdefault(uid, []).append(timestamp)

    def recycle(self, t: int) -> list[int]:
        """Reactivate users whose last report was at ``t - w`` (line 9).

        Returns the recycled user ids (useful for tests and audits).
        One vectorized scan over the status / last-report columns.
        """
        target = t - self.w
        if target < 0:
            return []
        n = self._n
        mask = (self._status[:n] == _INACTIVE) & (self._last_report[:n] == target)
        self._status[:n][mask] = _ACTIVE
        return self._uids[:n][mask].tolist()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def status(self, user_id: int) -> UserStatus:
        if user_id not in self._slot:
            raise ConfigurationError(f"unknown user {user_id}")
        return _CODE_TO_STATUS[int(self._status[self._slot[user_id]])]

    def active_mask(self, user_ids) -> np.ndarray:
        """Boolean mask of which of ``user_ids`` are currently active.

        Columnar twin of per-user :meth:`status` calls; unknown ids raise
        exactly as ``status`` does.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=bool)
        slots = np.empty(ids.size, dtype=np.int64)
        get = self._slot.get
        for i, uid in enumerate(ids.tolist()):
            slot = get(uid)
            if slot is None:
                raise ConfigurationError(f"unknown user {uid}")
            slots[i] = slot
        return self._status[slots] == _ACTIVE

    def active_users(self) -> list[int]:
        """The current active set ``U_A`` (Algorithm 1, line 11)."""
        n = self._n
        return self._uids[:n][self._status[:n] == _ACTIVE].tolist()

    def n_active(self) -> int:
        return int((self._status[: self._n] == _ACTIVE).sum())

    def n_known(self) -> int:
        return self._n

    def report_history(self, user_id: int) -> list[int]:
        return list(self._history.get(user_id, ()))
