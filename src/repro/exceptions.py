"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class PrivacyBudgetError(ReproError):
    """A privacy-budget invariant was violated.

    Raised by the :class:`repro.ldp.accountant.PrivacyAccountant` when a
    report would cause some user's spend inside a sliding window of ``w``
    timestamps to exceed the total budget ``epsilon``.
    """


class DomainError(ReproError):
    """A value fell outside the declared domain (e.g. unknown grid cell)."""


class DatasetError(ReproError):
    """A dataset is malformed or incompatible with the requested operation."""


class SynthesisError(ReproError):
    """The synthesizer reached an unrecoverable state."""


class ResponseLostError(ReproError):
    """A request was sent but the connection died before the response.

    Raised by :class:`repro.api.client.Client` when the server may have
    already applied a non-idempotent request (e.g. ``POST /v1/batch``)
    but the response was lost. Retrying automatically could double-apply
    reports, so the client surfaces the ambiguity instead; the caller
    must reconcile (e.g. compare ``/v1/stats`` counters) before
    resubmitting.
    """


class ShardWorkerError(ReproError):
    """A shard worker process died or broke protocol mid-round.

    Raised by the sharded collection engines (the pipe-based
    :class:`repro.core.sharded.ShardWorkerPool` and the socket-based
    :class:`repro.core.distributed.ShardSocketPool`) when a worker's
    channel breaks — typically because the worker process was killed —
    so the parent fails fast with the shard named instead of hanging or
    dying on a bare ``EOFError``.
    """
