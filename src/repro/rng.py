"""Seeded random-number helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises that convention so components never call
``numpy.random.default_rng`` ad hoc and experiments stay reproducible.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, or an existing
        generator (returned unchanged so callers can share one stream).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so results do not depend on the order in which children are consumed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
