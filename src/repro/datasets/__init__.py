"""Dataset generators and loaders.

The paper evaluates on T-Drive (real Beijing taxi traces) and two synthetic
datasets produced by Brinkhoff's network-based moving-object generator
(Oldenburg, SanJoaquin).  This environment has no network access, so the
substitutions documented in DESIGN.md apply:

* :mod:`repro.datasets.tdrive` — a taxi-fleet simulator over the Beijing
  5th-ring extent with hotspot-biased origin/destination flows, calibrated
  to Table I's scale statistics;
* :mod:`repro.datasets.brinkhoff` — a from-scratch re-implementation of the
  network-based moving-objects mechanic (road graph + shortest-path
  movement + per-timestamp arrivals + random quits) with the Oldenburg and
  SanJoaquin population dynamics;
* :mod:`repro.datasets.synthetic` — small analytic generators for tests.

All generators return a :class:`repro.stream.stream.StreamDataset` and take
a ``scale`` factor so laptop-scale runs and paper-scale runs share one code
path.
"""

from repro.datasets.tdrive import TDriveConfig, make_tdrive
from repro.datasets.brinkhoff import (
    BrinkhoffConfig,
    NetworkGenerator,
    make_oldenburg,
    make_sanjoaquin,
)
from repro.datasets.synthetic import (
    make_random_walks,
    make_two_hotspot_stream,
    make_lane_stream,
)
from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.datasets.preprocess import (
    RawFix,
    load_fixes_csv,
    preprocess_raw_traces,
)
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "TDriveConfig",
    "make_tdrive",
    "BrinkhoffConfig",
    "NetworkGenerator",
    "make_oldenburg",
    "make_sanjoaquin",
    "make_random_walks",
    "make_two_hotspot_stream",
    "make_lane_stream",
    "save_stream_dataset",
    "load_stream_dataset",
    "RawFix",
    "load_fixes_csv",
    "preprocess_raw_traces",
    "available_datasets",
    "load_dataset",
]
