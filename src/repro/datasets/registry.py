"""Name-based dataset loading used by experiments and benchmarks.

``load_dataset("tdrive", scale=0.05)`` hides generator details behind the
paper's dataset names so experiment code reads like the evaluation section.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.brinkhoff import make_oldenburg, make_sanjoaquin
from repro.datasets.tdrive import TDriveConfig, make_tdrive
from repro.exceptions import DatasetError
from repro.rng import RngLike
from repro.stream.stream import StreamDataset


def _tdrive(scale: float, k: int, seed: RngLike) -> StreamDataset:
    return make_tdrive(TDriveConfig.scaled(scale, k=k), seed=seed)


_REGISTRY: dict[str, Callable[[float, int, RngLike], StreamDataset]] = {
    "tdrive": _tdrive,
    "t-drive": _tdrive,
    "oldenburg": lambda scale, k, seed: make_oldenburg(scale, k=k, seed=seed),
    "sanjoaquin": lambda scale, k, seed: make_sanjoaquin(scale, k=k, seed=seed),
}


def available_datasets() -> list[str]:
    """Canonical dataset names accepted by :func:`load_dataset`."""
    return ["tdrive", "oldenburg", "sanjoaquin"]


def load_dataset(
    name: str, scale: float = 0.05, k: int = 6, seed: RngLike = 0
) -> StreamDataset:
    """Generate one of the paper's three datasets at the requested scale.

    ``scale=1.0`` approximates the Table I magnitudes; the default 0.05 is
    laptop-friendly while retaining the datasets' qualitative structure.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    return _REGISTRY[key](scale, k, seed)
