"""Small analytic stream generators for tests and examples.

These produce cell-level :class:`~repro.stream.stream.StreamDataset` objects
directly (no continuous stage) with known structure, so tests can assert
that models learn the right transitions.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid, unit_grid
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset


def make_random_walks(
    k: int = 6,
    n_streams: int = 100,
    n_timestamps: int = 40,
    mean_length: float = 10.0,
    seed: RngLike = 0,
    name: str = "random-walks",
) -> StreamDataset:
    """Uniform random walks with geometric lengths and staggered entries."""
    if mean_length < 1:
        raise ConfigurationError(f"mean_length must be >= 1, got {mean_length}")
    rng = ensure_rng(seed)
    grid = unit_grid(k)
    trajectories = []
    for uid in range(n_streams):
        start_t = int(rng.integers(0, max(1, n_timestamps - 2)))
        length = 1 + int(rng.geometric(1.0 / mean_length))
        length = min(length, n_timestamps - start_t)
        cell = int(rng.integers(0, grid.n_cells))
        cells = [cell]
        for _ in range(length - 1):
            nbrs = grid.neighbor_lists[cell]
            cell = int(nbrs[rng.integers(0, len(nbrs))])
            cells.append(cell)
        trajectories.append(CellTrajectory(start_t, cells, user_id=uid))
    return StreamDataset(grid, trajectories, n_timestamps=n_timestamps, name=name)


def make_lane_stream(
    k: int = 6,
    n_streams: int = 200,
    n_timestamps: int = 30,
    row: int = 0,
    seed: RngLike = 0,
    name: str = "lane",
) -> StreamDataset:
    """Users flow deterministically left-to-right along one grid row.

    Every trajectory enters at cell ``(row, 0)`` and moves one column per
    timestamp until the right edge, then quits.  The true mobility model is
    a delta on each rightward transition — ideal for asserting model
    recovery.
    """
    rng = ensure_rng(seed)
    grid = unit_grid(k)
    if not 0 <= row < k:
        raise ConfigurationError(f"row must be in [0, {k}), got {row}")
    trajectories = []
    for uid in range(n_streams):
        start_t = int(rng.integers(0, max(1, n_timestamps - k)))
        cells = [grid.rowcol_to_cell(row, col) for col in range(k)]
        cells = cells[: max(2, min(k, n_timestamps - start_t))]
        trajectories.append(CellTrajectory(start_t, cells, user_id=uid))
    return StreamDataset(grid, trajectories, n_timestamps=n_timestamps, name=name)


def make_two_hotspot_stream(
    k: int = 6,
    n_streams: int = 300,
    n_timestamps: int = 60,
    shift_at: int | None = 30,
    seed: RngLike = 0,
    name: str = "two-hotspots",
) -> StreamDataset:
    """Traffic between two corner hotspots, with a mid-stream regime shift.

    Before ``shift_at`` most users travel from the lower-left corner toward
    the upper-right; afterwards the dominant direction reverses.  The shift
    exercises the DMU mechanism's ability to track changing distributions.
    """
    rng = ensure_rng(seed)
    grid = unit_grid(k)
    lower_left = grid.rowcol_to_cell(0, 0)
    upper_right = grid.rowcol_to_cell(k - 1, k - 1)
    trajectories = []
    for uid in range(n_streams):
        start_t = int(rng.integers(0, max(1, n_timestamps - 4)))
        forward = shift_at is None or start_t < shift_at
        src, dst = (lower_left, upper_right) if forward else (upper_right, lower_left)
        cells = _greedy_path(grid, src, dst, rng)
        cells = cells[: max(2, n_timestamps - start_t)]
        trajectories.append(CellTrajectory(start_t, cells, user_id=uid))
    return StreamDataset(grid, trajectories, n_timestamps=n_timestamps, name=name)


def _greedy_path(
    grid: Grid, src: int, dst: int, rng: np.random.Generator
) -> list[int]:
    """A noisy greedy walk from ``src`` to ``dst`` over adjacent cells."""
    cells = [src]
    cur = src
    rd, cd = grid.cell_to_rowcol(dst)
    while cur != dst and len(cells) < 4 * grid.k:
        r, c = grid.cell_to_rowcol(cur)
        step_r = int(np.sign(rd - r))
        step_c = int(np.sign(cd - c))
        if rng.random() < 0.15:  # occasional detour
            step_r = int(rng.integers(-1, 2))
            step_c = int(rng.integers(-1, 2))
        nr = min(max(r + step_r, 0), grid.k - 1)
        nc = min(max(c + step_c, 0), grid.k - 1)
        cur = grid.rowcol_to_cell(nr, nc)
        cells.append(cur)
    return cells
