"""Raw-trace preprocessing (paper Section V-A).

The paper turns raw GPS logs into its stream format with three steps:

1. **clock alignment** — "we assume the curator periodically collects the
   locations from users, and align the time in three datasets with
   corresponding discrete collection timestamps" (10-minute granularity for
   T-Drive, ≈15 s for the Brinkhoff datasets);
2. **spatial restriction** — "we select the denser area within the 5th
   ring" (fixes outside the study region are dropped);
3. **gap splitting** — "for trajectories including non-adjacent timestamps,
   we add quitting events and split them into multiple streams".

This module implements that pipeline for arbitrary raw fixes, so real GPS
logs (CSV of ``user, unix_time, x, y``) can be fed to the library exactly
the way the authors fed T-Drive to theirs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox, Point
from repro.geo.trajectory import CellTrajectory
from repro.stream.stream import StreamDataset, split_on_gaps


@dataclass(frozen=True, slots=True)
class RawFix:
    """One raw GPS sample: who, when (seconds), where."""

    user: int
    time: float
    x: float
    y: float


def align_to_clock(
    fixes: Iterable[RawFix],
    granularity: float,
    t0: Optional[float] = None,
) -> dict[int, list[tuple[int, Point]]]:
    """Snap raw fixes onto the curator's discrete collection clock.

    Each user's fixes are bucketed into slots of ``granularity`` seconds
    starting at ``t0`` (default: the earliest fix).  When several fixes land
    in one slot, the **last** one wins — the value the curator would see at
    collection time.  Returns per-user sorted ``(timestamp, point)`` lists.
    """
    if granularity <= 0:
        raise ConfigurationError(f"granularity must be positive, got {granularity}")
    fixes = list(fixes)
    if not fixes:
        return {}
    origin = min(f.time for f in fixes) if t0 is None else float(t0)
    slots: dict[int, dict[int, RawFix]] = defaultdict(dict)
    for f in fixes:
        if f.time < origin:
            continue
        slot = int((f.time - origin) // granularity)
        prev = slots[f.user].get(slot)
        if prev is None or f.time >= prev.time:
            slots[f.user][slot] = f
    return {
        user: [(slot, Point(f.x, f.y)) for slot, f in sorted(user_slots.items())]
        for user, user_slots in slots.items()
    }


def restrict_to_region(
    aligned: dict[int, list[tuple[int, Point]]],
    bbox: BoundingBox,
) -> dict[int, list[tuple[int, Point]]]:
    """Drop fixes outside the study region (e.g. the 5th ring).

    Dropping a fix creates a time gap, which :func:`build_stream_dataset`
    later turns into a quit + re-enter — matching the paper's handling of
    users who leave the region.
    """
    out: dict[int, list[tuple[int, Point]]] = {}
    for user, seq in aligned.items():
        kept = [(t, p) for t, p in seq if bbox.contains(p)]
        if kept:
            out[user] = kept
    return out


def build_stream_dataset(
    aligned: dict[int, list[tuple[int, Point]]],
    grid: Grid,
    n_timestamps: Optional[int] = None,
    name: str = "preprocessed",
) -> StreamDataset:
    """Discretise aligned traces and split them on time gaps.

    Consecutive-slot fixes become one stream; any missing slot inserts a
    quitting event and restarts as a fresh stream (Section V-A).  Cells are
    snapped so every transition satisfies the reachability constraint.
    """
    trajectories: list[CellTrajectory] = []
    uid = 0
    for _user, seq in sorted(aligned.items()):
        cells_with_times: list[tuple[int, int]] = []
        prev_t: Optional[int] = None
        prev_cell: Optional[int] = None
        for t, p in seq:
            cell = grid.locate(p)
            if prev_t is not None and t == prev_t + 1:
                cell = grid.snap_to_adjacent(prev_cell, cell)
            cells_with_times.append((t, cell))
            prev_t, prev_cell = t, cell
        streams = split_on_gaps(0, cells_with_times, user_id_start=uid)
        uid += len(streams)
        trajectories.extend(streams)
    if not trajectories and n_timestamps is None:
        raise DatasetError("no trajectories survived preprocessing")
    return StreamDataset(grid, trajectories, n_timestamps=n_timestamps, name=name)


def preprocess_raw_traces(
    fixes: Iterable[RawFix],
    bbox: BoundingBox,
    k: int = 6,
    granularity: float = 600.0,
    n_timestamps: Optional[int] = None,
    name: str = "preprocessed",
) -> StreamDataset:
    """The full Section V-A pipeline: align → restrict → discretise/split.

    Parameters
    ----------
    fixes:
        Raw GPS samples.
    bbox:
        Study region (the paper uses Beijing's 5th ring for T-Drive).
    k:
        Grid granularity K.
    granularity:
        Collection period in seconds (600 = the paper's 10 minutes).
    """
    aligned = align_to_clock(fixes, granularity)
    aligned = restrict_to_region(aligned, bbox)
    grid = Grid(bbox, k)
    return build_stream_dataset(aligned, grid, n_timestamps=n_timestamps, name=name)


def load_fixes_csv(path, delimiter: str = ",") -> list[RawFix]:
    """Read ``user,time,x,y`` rows (header optional) into :class:`RawFix`.

    Malformed rows raise :class:`DatasetError` with the line number, except
    a single leading header row which is skipped.
    """
    fixes: list[RawFix] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(delimiter)
            if len(parts) != 4:
                raise DatasetError(
                    f"{path}:{lineno}: expected 4 fields, got {len(parts)}"
                )
            try:
                fixes.append(
                    RawFix(int(parts[0]), float(parts[1]), float(parts[2]), float(parts[3]))
                )
            except ValueError as exc:
                if lineno == 1:
                    continue  # header row
                raise DatasetError(f"{path}:{lineno}: {exc}") from exc
    return fixes
