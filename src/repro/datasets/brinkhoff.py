"""Network-based moving-object generator (Brinkhoff-style).

Brinkhoff's classic generator (GeoInformatica 2002) moves objects along a
real road network; the paper uses it with the Oldenburg and San Joaquin maps
to create streams with 10,000 initial users, fixed per-timestamp arrivals,
random quits and ≈15-second ticks (Section V-A).  We re-implement the core
mechanic from scratch:

* a **road network** is synthesised as a perturbed grid graph with random
  edge deletions and a few diagonal shortcuts (connected by construction),
  its nodes embedded in the target bounding box — structurally similar to a
  mid-size city's arterial network;
* each object spawns at a network node, draws a destination node, and walks
  the **shortest path** toward it, advancing a bounded number of edges per
  tick so discretised moves respect grid adjacency;
* on arrival the object either draws a fresh destination or quits; objects
  also quit spontaneously with a small per-tick probability — matching the
  "users randomly quit sharing their locations" dynamic;
* ``new_per_ts`` objects enter at every timestamp.

Oldenburg and SanJoaquin differ only in population dynamics and horizon,
exactly as in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset


@dataclass
class BrinkhoffConfig:
    """Population dynamics and map parameters for a network dataset."""

    n_initial: int = 200
    new_per_ts: int = 10
    n_timestamps: int = 80
    k: int = 6
    graph_size: int = 14  # road network is a graph_size x graph_size lattice
    quit_prob: float = 0.02  # spontaneous per-tick quit probability
    arrival_quit_prob: float = 0.35  # quit probability on reaching destination
    edge_removal: float = 0.12  # fraction of lattice edges deleted
    diagonal_fraction: float = 0.08  # shortcut edges added
    bbox: BoundingBox = BoundingBox(0.0, 0.0, 10.0, 10.0)

    def __post_init__(self) -> None:
        if self.n_initial < 1:
            raise ConfigurationError(f"n_initial must be >= 1, got {self.n_initial}")
        if self.n_timestamps < 2:
            raise ConfigurationError(
                f"n_timestamps must be >= 2, got {self.n_timestamps}"
            )
        if self.graph_size < 2:
            raise ConfigurationError(f"graph_size must be >= 2, got {self.graph_size}")
        if not 0 <= self.quit_prob < 1:
            raise ConfigurationError(f"quit_prob must be in [0,1), got {self.quit_prob}")

    @classmethod
    def oldenburg(cls, scale: float = 0.05, k: int = 6) -> "BrinkhoffConfig":
        """Oldenburg dynamics: 10k initial, +500 per ts, 500 timestamps."""
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return cls(
            n_initial=max(20, int(10_000 * scale)),
            new_per_ts=max(1, int(500 * scale)),
            n_timestamps=max(40, int(500 * scale * 2)),
            k=k,
            graph_size=14,
        )

    @classmethod
    def sanjoaquin(cls, scale: float = 0.05, k: int = 6) -> "BrinkhoffConfig":
        """SanJoaquin dynamics: 10k initial, +1000 per ts, 1000 timestamps."""
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return cls(
            n_initial=max(20, int(10_000 * scale)),
            new_per_ts=max(1, int(1_000 * scale)),
            n_timestamps=max(50, int(1_000 * scale * 2)),
            k=k,
            graph_size=18,
        )


class NetworkGenerator:
    """Synthesises a road network and simulates moving objects on it."""

    def __init__(self, config: BrinkhoffConfig, rng: RngLike = None) -> None:
        self.config = config
        self.rng = ensure_rng(rng)
        self.graph = self._build_network()
        self.positions = {
            node: data["pos"] for node, data in self.graph.nodes(data=True)
        }
        self._nodes = list(self.graph.nodes)
        # Node popularity: a few attractor nodes receive extra traffic.
        weights = self.rng.random(len(self._nodes)) ** 3
        self._node_weights = weights / weights.sum()
        self._path_cache: dict[tuple, list] = {}

    # ------------------------------------------------------------------ #
    # road network construction
    # ------------------------------------------------------------------ #
    def _build_network(self) -> nx.Graph:
        cfg = self.config
        m = cfg.graph_size
        g = nx.grid_2d_graph(m, m)
        # Delete a fraction of edges without disconnecting the graph.
        edges = list(g.edges)
        self.rng.shuffle(edges)
        quota = int(len(edges) * cfg.edge_removal)
        for u, v in edges:
            if quota <= 0:
                break
            g.remove_edge(u, v)
            if nx.has_path(g, u, v):
                quota -= 1
            else:
                g.add_edge(u, v)
        # Add diagonal shortcuts (arterials).
        n_diag = int(len(edges) * cfg.diagonal_fraction)
        for _ in range(n_diag):
            r = int(self.rng.integers(0, m - 1))
            c = int(self.rng.integers(0, m - 1))
            if self.rng.random() < 0.5:
                g.add_edge((r, c), (r + 1, c + 1))
            else:
                g.add_edge((r + 1, c), (r, c + 1))
        # Embed nodes in the bounding box with positional jitter.
        bbox = cfg.bbox
        sx = bbox.width / (m - 1)
        sy = bbox.height / (m - 1)
        for r, c in g.nodes:
            jitter_x = self.rng.normal(0.0, 0.12 * sx)
            jitter_y = self.rng.normal(0.0, 0.12 * sy)
            x = min(max(bbox.min_x + c * sx + jitter_x, bbox.min_x), bbox.max_x)
            y = min(max(bbox.min_y + r * sy + jitter_y, bbox.min_y), bbox.max_y)
            g.nodes[(r, c)]["pos"] = (x, y)
        return g

    # ------------------------------------------------------------------ #
    # movement
    # ------------------------------------------------------------------ #
    def _sample_node(self):
        i = int(self.rng.choice(len(self._nodes), p=self._node_weights))
        return self._nodes[i]

    def _shortest_path(self, a, b) -> Optional[list]:
        key = (a, b)
        if key not in self._path_cache:
            try:
                self._path_cache[key] = nx.shortest_path(self.graph, a, b)
            except nx.NetworkXNoPath:
                self._path_cache[key] = None
        return self._path_cache[key]

    def generate(self, name: str = "network") -> StreamDataset:
        """Simulate the full population and return the stream dataset."""
        cfg = self.config
        grid = Grid(cfg.bbox, cfg.k)
        trajectories: list[CellTrajectory] = []
        live: list[dict] = []
        uid = 0

        def spawn(t: int) -> dict:
            nonlocal uid
            node = self._sample_node()
            obj = {
                "node": node,
                "path": [],
                "cells": [grid.locate_xy(*self.positions[node])],
                "start": t,
                "id": uid,
            }
            uid += 1
            self._assign_destination(obj)
            return obj

        for t in range(cfg.n_timestamps):
            n_new = cfg.n_initial if t == 0 else cfg.new_per_ts
            live.extend(spawn(t) for _ in range(n_new))
            if t == cfg.n_timestamps - 1:
                break
            survivors: list[dict] = []
            for obj in live:
                if self.rng.random() < cfg.quit_prob:
                    self._finish(obj, trajectories)
                    continue
                self._advance(obj)
                arrived = not obj["path"]
                if arrived and self.rng.random() < cfg.arrival_quit_prob:
                    # Record the final position before quitting.
                    obj["cells"].append(self._cell_of(grid, obj))
                    self._finish(obj, trajectories)
                    continue
                if arrived:
                    self._assign_destination(obj)
                obj["cells"].append(self._cell_of(grid, obj))
                survivors.append(obj)
            live = survivors

        for obj in live:
            self._finish(obj, trajectories)
        dataset = StreamDataset(
            grid, trajectories, n_timestamps=cfg.n_timestamps, name=name
        )
        return dataset

    def _assign_destination(self, obj: dict) -> None:
        for _attempt in range(5):
            dest = self._sample_node()
            path = self._shortest_path(obj["node"], dest)
            if path and len(path) > 1:
                obj["path"] = list(path[1:])
                return
        obj["path"] = []

    def _advance(self, obj: dict) -> None:
        """Move up to one network edge per tick (~15 s of driving)."""
        if obj["path"]:
            obj["node"] = obj["path"].pop(0)

    def _cell_of(self, grid: Grid, obj: dict) -> int:
        cell = grid.locate_xy(*self.positions[obj["node"]])
        # Enforce grid adjacency between consecutive reports.
        return grid.snap_to_adjacent(obj["cells"][-1], cell)

    @staticmethod
    def _finish(obj: dict, out: list[CellTrajectory]) -> None:
        out.append(CellTrajectory(obj["start"], obj["cells"], user_id=obj["id"]))


def make_oldenburg(
    scale: float = 0.05, k: int = 6, seed: RngLike = 1, name: str = "Oldenburg"
) -> StreamDataset:
    """Oldenburg-configured network dataset (see Table I for full scale)."""
    gen = NetworkGenerator(BrinkhoffConfig.oldenburg(scale, k), rng=seed)
    return gen.generate(name=name)


def make_sanjoaquin(
    scale: float = 0.05, k: int = 6, seed: RngLike = 2, name: str = "SanJoaquin"
) -> StreamDataset:
    """SanJoaquin-configured network dataset (see Table I for full scale)."""
    gen = NetworkGenerator(BrinkhoffConfig.sanjoaquin(scale, k), rng=seed)
    return gen.generate(name=name)
