"""Persistence for stream datasets.

Datasets are stored as a single compressed ``.npz`` archive: flat arrays of
cells plus per-trajectory offsets, start times and user ids, and the grid
geometry needed to reconstruct the :class:`~repro.geo.grid.Grid`.  The
format is stable, versioned and round-trip tested.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import DatasetError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox
from repro.geo.trajectory import CellTrajectory
from repro.stream.stream import StreamDataset

_FORMAT_VERSION = 1


def save_stream_dataset(dataset: StreamDataset, path: Union[str, Path]) -> None:
    """Write ``dataset`` to ``path`` as a compressed npz archive."""
    path = Path(path)
    cells = np.concatenate(
        [np.asarray(t.cells, dtype=np.int64) for t in dataset.trajectories]
    ) if dataset.trajectories else np.zeros(0, dtype=np.int64)
    lengths = np.asarray([len(t) for t in dataset.trajectories], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    np.savez_compressed(
        path,
        version=np.asarray([_FORMAT_VERSION]),
        cells=cells,
        offsets=offsets,
        start_times=np.asarray(
            [t.start_time for t in dataset.trajectories], dtype=np.int64
        ),
        user_ids=np.asarray(
            [t.user_id for t in dataset.trajectories], dtype=np.int64
        ),
        n_timestamps=np.asarray([dataset.n_timestamps]),
        grid_k=np.asarray([dataset.grid.k]),
        bbox=np.asarray(
            [
                dataset.grid.bbox.min_x,
                dataset.grid.bbox.min_y,
                dataset.grid.bbox.max_x,
                dataset.grid.bbox.max_y,
            ]
        ),
        name=np.asarray([dataset.name]),
    )


def load_stream_dataset(path: Union[str, Path]) -> StreamDataset:
    """Read a dataset previously written by :func:`save_stream_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported dataset format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        cells = archive["cells"]
        offsets = archive["offsets"]
        start_times = archive["start_times"]
        user_ids = archive["user_ids"]
        n_timestamps = int(archive["n_timestamps"][0])
        k = int(archive["grid_k"][0])
        bx = archive["bbox"]
        name = str(archive["name"][0])
    grid = Grid(BoundingBox(float(bx[0]), float(bx[1]), float(bx[2]), float(bx[3])), k)
    trajectories = [
        CellTrajectory(
            int(start_times[i]),
            cells[offsets[i] : offsets[i + 1]].tolist(),
            user_id=int(user_ids[i]),
        )
        for i in range(len(start_times))
    ]
    return StreamDataset(grid, trajectories, n_timestamps=n_timestamps, name=name)
