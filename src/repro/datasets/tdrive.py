"""T-Drive-like taxi-fleet simulator.

The real T-Drive dataset (Zheng 2011) records one week of GPS traces from
10,357 Beijing taxis; the paper restricts it to the 5th ring and aligns it to
886 ten-minute timestamps, yielding 232,640 streams with an average length of
13.61 reports (Table I).  Without network access we simulate a fleet whose
*discretised stream statistics* match those of the paper's preprocessed
input:

* trips start and end near a small set of **hotspots** (train stations,
  business districts) with a skewed origin→destination preference matrix,
  giving the spatial skew that density/hotspot metrics key on;
* movement heads toward the destination at bounded speed (at most one cell
  per timestamp after discretisation), giving Markovian transition structure
  with strong directionality;
* per-taxi activity alternates trips and off-duty gaps, producing the
  enter/quit churn the paper's dynamic user set exploits — each trip becomes
  one stream, exactly like the paper's gap-splitting preprocessing;
* trip lengths are geometric with mean ≈ 13.6 reports.

``scale`` multiplies the fleet size and the horizon so tests, benches and
paper-scale runs share one code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.geo.point import BEIJING_5TH_RING, BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.rng import RngLike, ensure_rng
from repro.stream.stream import StreamDataset, from_continuous

#: Paper-scale reference numbers (Table I).
PAPER_N_STREAMS = 232_640
PAPER_AVG_LENGTH = 13.61
PAPER_TIMESTAMPS = 886


@dataclass
class TDriveConfig:
    """Parameters of the simulated fleet.

    The defaults are laptop-scale; ``TDriveConfig.paper_scale()`` restores
    the Table I magnitudes.
    """

    n_taxis: int = 300
    n_timestamps: int = 120
    k: int = 6
    n_hotspots: int = 8
    mean_trip_length: float = PAPER_AVG_LENGTH
    mean_gap_length: float = 6.0
    hotspot_spread: float = 0.06  # fraction of bbox width
    diurnal: bool = False  # rush-hour OD reversal (see _HotspotMap)
    day_length: int = 144  # timestamps per day (24 h at 10-minute slots)
    bbox: BoundingBox = BEIJING_5TH_RING

    def __post_init__(self) -> None:
        if self.n_taxis < 1:
            raise ConfigurationError(f"n_taxis must be >= 1, got {self.n_taxis}")
        if self.n_timestamps < 2:
            raise ConfigurationError(
                f"n_timestamps must be >= 2, got {self.n_timestamps}"
            )
        if self.mean_trip_length < 1:
            raise ConfigurationError(
                f"mean_trip_length must be >= 1, got {self.mean_trip_length}"
            )

    @classmethod
    def paper_scale(cls, k: int = 6) -> "TDriveConfig":
        """Full Table I magnitude (expensive: ~3.2M points)."""
        return cls(n_taxis=10_357, n_timestamps=PAPER_TIMESTAMPS, k=k)

    @classmethod
    def scaled(cls, scale: float, k: int = 6) -> "TDriveConfig":
        """Fleet and horizon scaled from the paper's magnitudes."""
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return cls(
            n_taxis=max(10, int(10_357 * scale)),
            n_timestamps=max(30, int(PAPER_TIMESTAMPS * scale)),
            k=k,
        )


class _HotspotMap:
    """Skewed hotspot locations plus an origin→destination preference.

    With ``diurnal=True`` the OD preference reverses between the two halves
    of the simulated day — the morning commute (residential → business)
    versus the evening commute (business → residential), the exact
    "morning rush hours" dynamic the paper's DMU mechanism targets
    (Section III-C).
    """

    def __init__(self, config: TDriveConfig, rng: np.random.Generator) -> None:
        bbox = config.bbox
        h = config.n_hotspots
        self.config = config
        self.centers = np.column_stack(
            [
                rng.uniform(bbox.min_x + 0.1 * bbox.width, bbox.max_x - 0.1 * bbox.width, h),
                rng.uniform(bbox.min_y + 0.1 * bbox.height, bbox.max_y - 0.1 * bbox.height, h),
            ]
        )
        # Zipf-ish popularity and a sharpened random OD preference matrix.
        pop = 1.0 / np.arange(1, h + 1)
        self.popularity = pop / pop.sum()
        od = rng.random((h, h)) ** 2
        np.fill_diagonal(od, od.diagonal() * 0.2)  # discourage A->A trips
        self.od_am = od / od.sum(axis=1, keepdims=True)
        # Evening pattern: the morning flows reversed.
        od_pm = self.od_am.T.copy()
        self.od_pm = od_pm / od_pm.sum(axis=1, keepdims=True)
        self.spread_x = config.hotspot_spread * bbox.width
        self.spread_y = config.hotspot_spread * bbox.height

    def _od_at(self, t: int) -> np.ndarray:
        if not self.config.diurnal:
            return self.od_am
        phase = (t % self.config.day_length) / self.config.day_length
        return self.od_am if phase < 0.5 else self.od_pm

    def sample_origin(self, rng: np.random.Generator) -> tuple[int, Point]:
        h = int(rng.choice(self.popularity.size, p=self.popularity))
        return h, self._near(h, rng)

    def sample_destination(
        self, origin_hotspot: int, rng: np.random.Generator, t: int = 0
    ) -> Point:
        od = self._od_at(t)
        h = int(rng.choice(od.shape[1], p=od[origin_hotspot]))
        return self._near(h, rng)

    def _near(self, hotspot: int, rng: np.random.Generator) -> Point:
        cx, cy = self.centers[hotspot]
        return Point(
            cx + rng.normal(0.0, self.spread_x),
            cy + rng.normal(0.0, self.spread_y),
        )


def make_tdrive(
    config: TDriveConfig | None = None,
    seed: RngLike = 0,
    name: str = "T-Drive",
) -> StreamDataset:
    """Generate the T-Drive-like stream dataset."""
    cfg = config or TDriveConfig()
    rng = ensure_rng(seed)
    grid = Grid(cfg.bbox, cfg.k)
    hotspots = _HotspotMap(cfg, rng)
    # A taxi can cross roughly one cell per 10-minute timestamp.
    step_x = grid.cell_width * 0.9
    step_y = grid.cell_height * 0.9
    trajectories: list[Trajectory] = []

    for _taxi in range(cfg.n_taxis):
        t = int(rng.integers(0, max(1, cfg.n_timestamps // 4)))
        while t < cfg.n_timestamps - 1:
            origin_h, pos = hotspots.sample_origin(rng)
            dest = hotspots.sample_destination(origin_h, rng, t)
            # Geometric trip length with the configured mean (>= 2 reports).
            length = 2 + int(rng.geometric(1.0 / max(1.0, cfg.mean_trip_length - 2)))
            length = min(length, cfg.n_timestamps - t)
            if length < 2:
                break
            points = [cfg.bbox.clamp(pos)]
            cur = pos
            for _ in range(length - 1):
                dx = dest.x - cur.x
                dy = dest.y - cur.y
                dist = math.hypot(dx, dy)
                if dist < step_x * 0.5:
                    # Arrived: idle near the destination (passenger drop-off).
                    nxt = Point(
                        cur.x + rng.normal(0.0, step_x * 0.2),
                        cur.y + rng.normal(0.0, step_y * 0.2),
                    )
                else:
                    ux, uy = dx / dist, dy / dist
                    nxt = Point(
                        cur.x + ux * step_x * rng.uniform(0.5, 1.0)
                        + rng.normal(0.0, step_x * 0.15),
                        cur.y + uy * step_y * rng.uniform(0.5, 1.0)
                        + rng.normal(0.0, step_y * 0.15),
                    )
                cur = cfg.bbox.clamp(nxt)
                points.append(cur)
            trajectories.append(Trajectory(t, points))
            gap = 1 + int(rng.geometric(1.0 / cfg.mean_gap_length))
            t += length + gap

    dataset = from_continuous(grid, trajectories, n_timestamps=cfg.n_timestamps, name=name)
    return dataset
