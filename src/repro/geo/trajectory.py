"""Trajectory containers.

Two representations are used throughout the library:

* :class:`Trajectory` — a continuous-domain trace: an entering timestamp plus
  a list of :class:`~repro.geo.point.Point` observed at consecutive
  timestamps (the paper's ``T_i^o = {l_t | t = a_i, a_i+1, ...}``).
* :class:`CellTrajectory` — the discretised counterpart: an entering
  timestamp plus a list of grid-cell ids.

Both are immutable-by-convention sequences; mutation happens only through the
documented ``append``/``terminate`` methods used by the synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.exceptions import DatasetError
from repro.geo.grid import Grid
from repro.geo.point import Point


@dataclass
class Trajectory:
    """A continuous-domain trajectory reported by one user.

    Attributes
    ----------
    start_time:
        Entering timestamp ``a_i``: the index of the first report.
    points:
        One point per consecutive timestamp starting at ``start_time``.
    user_id:
        Optional stable identifier of the reporting user.
    """

    start_time: int
    points: list[Point] = field(default_factory=list)
    user_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    @property
    def end_time(self) -> int:
        """Timestamp of the final report (inclusive). Empty => start-1."""
        return self.start_time + len(self.points) - 1

    def active_at(self, t: int) -> bool:
        """Whether the trajectory has a report at timestamp ``t``."""
        return self.start_time <= t <= self.end_time

    def point_at(self, t: int) -> Point:
        if not self.active_at(t):
            raise DatasetError(
                f"trajectory spans [{self.start_time}, {self.end_time}], "
                f"no point at t={t}"
            )
        return self.points[t - self.start_time]

    def discretize(self, grid: Grid, snap: bool = True) -> "CellTrajectory":
        """Convert to a :class:`CellTrajectory` on ``grid``.

        With ``snap=True`` non-adjacent consecutive cells are projected onto
        the previous cell's neighbourhood so every transition satisfies the
        reachability constraint (paper Section III-B).
        """
        cells: list[int] = []
        for p in self.points:
            c = grid.locate(p)
            if snap and cells:
                c = grid.snap_to_adjacent(cells[-1], c)
            cells.append(c)
        return CellTrajectory(self.start_time, cells, user_id=self.user_id)


@dataclass
class CellTrajectory:
    """A grid-cell trajectory; the unit of synthesis and evaluation.

    The synthesizer also uses this class for *live* synthetic streams, where
    ``terminated`` flips to ``True`` once a quit event is sampled.
    """

    start_time: int
    cells: list[int] = field(default_factory=list)
    user_id: Optional[int] = None
    terminated: bool = False

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    @property
    def end_time(self) -> int:
        return self.start_time + len(self.cells) - 1

    def active_at(self, t: int) -> bool:
        return self.start_time <= t <= self.end_time

    def cell_at(self, t: int) -> int:
        if not self.active_at(t):
            raise DatasetError(
                f"trajectory spans [{self.start_time}, {self.end_time}], "
                f"no cell at t={t}"
            )
        return self.cells[t - self.start_time]

    @property
    def last_cell(self) -> int:
        if not self.cells:
            raise DatasetError("empty trajectory has no last cell")
        return self.cells[-1]

    def append(self, cell: int) -> None:
        """Extend the live trajectory by one timestamp."""
        if self.terminated:
            raise DatasetError("cannot append to a terminated trajectory")
        self.cells.append(cell)

    def terminate(self) -> None:
        """Mark the trajectory as quit; no further appends are allowed."""
        self.terminated = True

    def transitions(self) -> list[tuple[int, int]]:
        """All consecutive ``(from_cell, to_cell)`` movement pairs."""
        return list(zip(self.cells[:-1], self.cells[1:]))

    def subsequence(self, t_from: int, t_to: int) -> list[int]:
        """Cells observed in the closed timestamp interval ``[t_from, t_to]``.

        Timestamps outside the trajectory's span contribute nothing, so the
        result may be shorter than the interval (possibly empty).
        """
        lo = max(t_from, self.start_time)
        hi = min(t_to, self.end_time)
        if hi < lo:
            return []
        return self.cells[lo - self.start_time : hi - self.start_time + 1]


def total_points(trajectories: Sequence[CellTrajectory]) -> int:
    """Sum of reported points over a trajectory collection."""
    return sum(len(t) for t in trajectories)


def average_length(trajectories: Sequence[CellTrajectory]) -> float:
    """Mean trajectory length; 0.0 for an empty collection."""
    if not trajectories:
        return 0.0
    return total_points(trajectories) / len(trajectories)
