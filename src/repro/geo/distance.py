"""Distance helpers used by dataset generators and the length-error metric."""

from __future__ import annotations

import math
from typing import Sequence

from repro.geo.grid import Grid
from repro.geo.point import Point

EARTH_RADIUS_KM = 6371.0088


def euclidean(a: Point, b: Point) -> float:
    """Straight-line distance in the native coordinate units."""
    return math.hypot(a.x - b.x, a.y - b.y)


def haversine_km(a: Point, b: Point) -> float:
    """Great-circle distance in kilometres for (lon, lat) degree points."""
    lon1, lat1, lon2, lat2 = map(math.radians, (a.x, a.y, b.x, b.y))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def path_length(points: Sequence[Point]) -> float:
    """Total Euclidean length of a polyline."""
    return sum(euclidean(points[i], points[i + 1]) for i in range(len(points) - 1))


def cell_path_length(grid: Grid, cells: Sequence[int]) -> float:
    """Travel distance of a cell trajectory via consecutive cell centers.

    This is the distance notion behind the paper's *Length Error* metric: the
    distribution of per-trajectory travel distances is compared between the
    real and synthetic databases.
    """
    if len(cells) < 2:
        return 0.0
    centers = [grid.cell_center(c) for c in cells]
    return path_length(centers)
