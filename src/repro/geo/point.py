"""Continuous 2-D points and axis-aligned bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ConfigurationError


@dataclass(frozen=True, slots=True)
class Point:
    """A location in the continuous two-dimensional domain.

    The paper writes locations as ``l_t = (x_t, y_t)``; coordinates may be
    projected metres or (longitude, latitude) degrees — the grid treats them
    uniformly.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ConfigurationError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the box (inclusive of all edges)."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the nearest location inside the box."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)


#: Extent of the area inside Beijing's 5th ring road (approximate degrees),
#: the region the paper selects from the T-Drive dataset (Section V-A).
BEIJING_5TH_RING = BoundingBox(116.20, 39.75, 116.55, 40.03)
