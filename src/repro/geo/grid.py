"""Uniform ``K x K`` grid discretisation of a bounding box.

Cells are identified by a dense integer id ``cell = row * K + col`` with
``row`` indexing the y-axis and ``col`` the x-axis.  Neighbourhoods follow the
paper's reachability constraint (Section III-B): between two consecutive
timestamps a user can only move to one of the up-to-eight adjacent cells or
stay, so each cell has at most nine reachable successors including itself.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DomainError
from repro.geo.point import BoundingBox, Point


class Grid:
    """Uniform ``K x K`` partition of a :class:`BoundingBox`.

    Parameters
    ----------
    bbox:
        Spatial extent being discretised.
    k:
        Number of rows and columns (the paper's discretisation granularity
        ``K``; default 6 per Table II).
    """

    def __init__(self, bbox: BoundingBox, k: int = 6) -> None:
        if k < 1:
            raise ConfigurationError(f"grid granularity K must be >= 1, got {k}")
        self.bbox = bbox
        self.k = int(k)
        self._cell_w = bbox.width / self.k
        self._cell_h = bbox.height / self.k

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #
    @property
    def n_cells(self) -> int:
        """Total number of cells ``|C| = K * K``."""
        return self.k * self.k

    @property
    def cell_width(self) -> float:
        return self._cell_w

    @property
    def cell_height(self) -> float:
        return self._cell_h

    def rowcol_to_cell(self, row: int, col: int) -> int:
        if not (0 <= row < self.k and 0 <= col < self.k):
            raise DomainError(f"(row={row}, col={col}) outside {self.k}x{self.k} grid")
        return row * self.k + col

    def cell_to_rowcol(self, cell: int) -> tuple[int, int]:
        if not (0 <= cell < self.n_cells):
            raise DomainError(f"cell id {cell} outside [0, {self.n_cells})")
        return divmod(cell, self.k)

    def locate(self, point: Point) -> int:
        """Map a continuous point to its cell id, clamping to the extent.

        Points outside the bounding box are clamped to the nearest border
        cell, mirroring how the paper restricts T-Drive to the 5th ring and
        keeps every report representable.
        """
        p = self.bbox.clamp(point)
        col = min(int((p.x - self.bbox.min_x) / self._cell_w), self.k - 1)
        row = min(int((p.y - self.bbox.min_y) / self._cell_h), self.k - 1)
        return self.rowcol_to_cell(row, col)

    def locate_xy(self, x: float, y: float) -> int:
        """Vector-friendly variant of :meth:`locate` for raw coordinates."""
        return self.locate(Point(x, y))

    def locate_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised point-to-cell mapping for coordinate arrays."""
        xs = np.clip(np.asarray(xs, dtype=float), self.bbox.min_x, self.bbox.max_x)
        ys = np.clip(np.asarray(ys, dtype=float), self.bbox.min_y, self.bbox.max_y)
        cols = np.minimum(
            ((xs - self.bbox.min_x) / self._cell_w).astype(np.int64), self.k - 1
        )
        rows = np.minimum(
            ((ys - self.bbox.min_y) / self._cell_h).astype(np.int64), self.k - 1
        )
        return rows * self.k + cols

    def cell_center(self, cell: int) -> Point:
        row, col = self.cell_to_rowcol(cell)
        return Point(
            self.bbox.min_x + (col + 0.5) * self._cell_w,
            self.bbox.min_y + (row + 0.5) * self._cell_h,
        )

    def cell_bbox(self, cell: int) -> BoundingBox:
        row, col = self.cell_to_rowcol(cell)
        return BoundingBox(
            self.bbox.min_x + col * self._cell_w,
            self.bbox.min_y + row * self._cell_h,
            self.bbox.min_x + (col + 1) * self._cell_w,
            self.bbox.min_y + (row + 1) * self._cell_h,
        )

    # ------------------------------------------------------------------ #
    # neighbourhoods (reachability constraints)
    # ------------------------------------------------------------------ #
    def neighbors(self, cell: int, include_self: bool = True) -> list[int]:
        """Cells reachable from ``cell`` in one step (8-neighbourhood).

        ``include_self=True`` matches the paper's ``N_ci`` which contains the
        cell itself (staying put is a legal transition).
        """
        row, col = self.cell_to_rowcol(cell)
        out: list[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0 and not include_self:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.k and 0 <= c < self.k:
                    out.append(r * self.k + c)
        return out

    @cached_property
    def neighbor_lists(self) -> list[list[int]]:
        """``neighbor_lists[c]`` = sorted reachable successors of cell ``c``."""
        return [sorted(self.neighbors(c)) for c in range(self.n_cells)]

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether the move ``a -> b`` satisfies the reachability constraint."""
        ra, ca = self.cell_to_rowcol(a)
        rb, cb = self.cell_to_rowcol(b)
        return abs(ra - rb) <= 1 and abs(ca - cb) <= 1

    def snap_to_adjacent(self, prev: int, cur: int) -> int:
        """Project ``cur`` onto the neighbourhood of ``prev``.

        Raw data may occasionally jump further than one cell inside a single
        collection interval (GPS noise, sparse sampling).  Following the
        reachability constraint, such a jump is replaced by the adjacent cell
        of ``prev`` closest to ``cur`` so the transition stays in-domain.
        """
        if self.are_adjacent(prev, cur):
            return cur
        rp, cp = self.cell_to_rowcol(prev)
        rc, cc = self.cell_to_rowcol(cur)
        row = rp + max(-1, min(1, rc - rp))
        col = cp + max(-1, min(1, cc - cp))
        return self.rowcol_to_cell(row, col)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def discretize(self, points: Iterable[Point]) -> list[int]:
        """Map a sequence of continuous points to cell ids."""
        return [self.locate(p) for p in points]

    def cells_in_region(self, region: BoundingBox) -> list[int]:
        """All cells whose center lies inside ``region`` (for range queries)."""
        return [
            c for c in range(self.n_cells) if region.contains(self.cell_center(c))
        ]

    def random_region(
        self, rng: np.random.Generator, frac: float = 0.25
    ) -> BoundingBox:
        """Sample a random query rectangle covering ``frac`` of each axis."""
        if not 0.0 < frac <= 1.0:
            raise ConfigurationError(f"region fraction must be in (0, 1], got {frac}")
        w = self.bbox.width * frac
        h = self.bbox.height * frac
        x0 = self.bbox.min_x + rng.uniform(0.0, self.bbox.width - w) if frac < 1 else self.bbox.min_x
        y0 = self.bbox.min_y + rng.uniform(0.0, self.bbox.height - h) if frac < 1 else self.bbox.min_y
        return BoundingBox(x0, y0, x0 + w, y0 + h)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid(k={self.k}, bbox={self.bbox})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Grid)
            and self.k == other.k
            and self.bbox == other.bbox
        )

    def __hash__(self) -> int:
        return hash((self.k, self.bbox))


def unit_grid(k: int = 6) -> Grid:
    """Convenience constructor: a ``K x K`` grid over the unit square."""
    return Grid(BoundingBox(0.0, 0.0, 1.0, 1.0), k)


def manhattan_cell_distance(grid: Grid, a: int, b: int) -> int:
    """Chebyshev-free Manhattan distance between two cells in grid steps."""
    ra, ca = grid.cell_to_rowcol(a)
    rb, cb = grid.cell_to_rowcol(b)
    return abs(ra - rb) + abs(ca - cb)


def chebyshev_cell_distance(grid: Grid, a: int, b: int) -> int:
    """Chebyshev distance: minimum one-step moves between two cells."""
    ra, ca = grid.cell_to_rowcol(a)
    rb, cb = grid.cell_to_rowcol(b)
    return max(abs(ra - rb), abs(ca - cb))


def cells_to_centers(grid: Grid, cells: Sequence[int]) -> np.ndarray:
    """Return an ``(n, 2)`` array of cell-center coordinates."""
    out = np.empty((len(cells), 2), dtype=float)
    for i, c in enumerate(cells):
        p = grid.cell_center(c)
        out[i, 0] = p.x
        out[i, 1] = p.y
    return out
