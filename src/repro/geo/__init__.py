"""Geospatial substrate: points, bounding boxes, grids, and trajectories.

The paper discretises the continuous two-dimensional location domain into a
uniform ``K x K`` grid (Section III-B, "Geospatial Discretization").  This
package provides that discretisation plus the trajectory containers every
other layer builds on.
"""

from repro.geo.point import BoundingBox, Point
from repro.geo.grid import Grid
from repro.geo.trajectory import CellTrajectory, Trajectory
from repro.geo.distance import euclidean, haversine_km, path_length

__all__ = [
    "BoundingBox",
    "Point",
    "Grid",
    "Trajectory",
    "CellTrajectory",
    "euclidean",
    "haversine_km",
    "path_length",
]
