"""RetraSyn: real-time trajectory stream synthesis under w-event ε-LDP.

A full reproduction of *"Real-Time Trajectory Synthesis with Local
Differential Privacy"* (ICDE 2024): the RetraSyn framework, the LDP-IDS
baselines it is compared against, the datasets of the evaluation section,
and all eight utility metrics.

Quickstart::

    from repro import RetraSyn, RetraSynConfig, load_dataset, evaluate_all

    data = load_dataset("tdrive", scale=0.05, seed=0)
    run = RetraSyn(RetraSynConfig(epsilon=1.0, w=20, seed=0)).run(data)
    assert run.accountant.verify()          # w-event ε-LDP held
    scores = evaluate_all(data, run.synthetic, phi=10, rng=0)

Session API (engine-agnostic; see ``docs/API.md``)::

    from repro import SessionSpec, create_session

    spec = SessionSpec.from_flat(epsilon=1.0, w=20, seed=0, n_shards=4)
    session = create_session(spec, data.grid, lam=14.0)
"""

from repro.analysis import FlowAnalyzer, TrajectoryAnalyzer, fidelity_report
from repro.api.client import Client
from repro.api.session import (
    CuratorSession,
    DirectSession,
    IngestSession,
    create_session,
    load_session,
)
from repro.api.specs import (
    EngineSpec,
    PrivacySpec,
    ServiceSpec,
    SessionSpec,
    ShardingSpec,
)
from repro.core import (
    GlobalMobilityModel,
    OnlineRetraSyn,
    RetraSyn,
    RetraSynConfig,
    ShardedOnlineRetraSyn,
    SynthesisRun,
    Synthesizer,
    VectorizedSynthesizer,
    make_all_update,
    make_no_eq,
    make_retrasyn,
)
from repro.baselines import LBA, LBD, LPA, LPD, make_baseline
from repro.datasets import (
    load_dataset,
    make_oldenburg,
    make_sanjoaquin,
    make_tdrive,
)
from repro.geo import BoundingBox, Grid, Point, Trajectory, CellTrajectory
from repro.ldp import OptimizedUnaryEncoding, PrivacyAccountant
from repro.metrics import ALL_METRICS, evaluate_all
from repro.planning import DeploymentPlan, plan_report, recommend_k
from repro.stream import StreamDataset, TransitionStateSpace

__version__ = "1.0.0"

__all__ = [
    "PrivacySpec",
    "EngineSpec",
    "ShardingSpec",
    "ServiceSpec",
    "SessionSpec",
    "CuratorSession",
    "DirectSession",
    "IngestSession",
    "create_session",
    "load_session",
    "Client",
    "RetraSyn",
    "RetraSynConfig",
    "OnlineRetraSyn",
    "ShardedOnlineRetraSyn",
    "SynthesisRun",
    "Synthesizer",
    "VectorizedSynthesizer",
    "GlobalMobilityModel",
    "TrajectoryAnalyzer",
    "FlowAnalyzer",
    "fidelity_report",
    "make_retrasyn",
    "make_all_update",
    "make_no_eq",
    "LBD",
    "LBA",
    "LPD",
    "LPA",
    "make_baseline",
    "load_dataset",
    "make_tdrive",
    "make_oldenburg",
    "make_sanjoaquin",
    "Grid",
    "Point",
    "BoundingBox",
    "Trajectory",
    "CellTrajectory",
    "OptimizedUnaryEncoding",
    "PrivacyAccountant",
    "ALL_METRICS",
    "evaluate_all",
    "DeploymentPlan",
    "plan_report",
    "recommend_k",
    "StreamDataset",
    "TransitionStateSpace",
    "__version__",
]
