"""RetraSyn core: the paper's primary contribution.

* :class:`~repro.core.mobility_model.GlobalMobilityModel` — movement /
  entering / quitting distributions over the transition-state space (Eq. 6).
* :class:`~repro.core.dmu.DMUSelector` — significant-transition selection by
  minimising the introduced error (Eq. 7).
* :class:`~repro.core.synthesis.Synthesizer` — Markov generation with
  length-reweighted termination (Eq. 8) and size adjustment.
* :mod:`~repro.core.allocation` — adaptive / uniform / sample allocation for
  both budget division and population division (Eqs. 9–10).
* :class:`~repro.core.retrasyn.RetraSyn` — the end-to-end pipeline
  (Algorithm 1), with budget- and population-division modes.
* :mod:`~repro.core.variants` — AllUpdate and NoEQ ablation variants
  (Table IV).
* :class:`~repro.core.sharded.ShardedOnlineRetraSyn` — hash-partitioned,
  optionally multi-process collection engine (``RetraSynConfig.n_shards``).
* :class:`~repro.core.trajectory_store.TrajectoryStore` — columnar (SoA)
  storage for synthetic streams, shared by both synthesis engines.
"""

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.dmu import DMUSelector
from repro.core.synthesis import Synthesizer
from repro.core.fast_synthesis import VectorizedSynthesizer
from repro.core.trajectory_store import StoreTrajectories, TrajectoryStore
from repro.core.allocation import (
    AdaptiveBudgetAllocator,
    AdaptivePopulationAllocator,
    AdaptiveUserBudgetAllocator,
    AllocationContext,
    BudgetAllocator,
    PopulationAllocator,
    SampleBudgetAllocator,
    SamplePopulationAllocator,
    UniformBudgetAllocator,
    UniformPopulationAllocator,
)
from repro.core.online import OnlineRetraSyn, TimestepResult
from repro.core.sharded import CollectionShard, ShardedOnlineRetraSyn, shard_of
from repro.core.persistence import (
    load_checkpoint,
    load_config,
    load_model,
    peek_checkpoint_spec,
    save_checkpoint,
    save_config,
    save_model,
)
from repro.core.retrasyn import RetraSyn, RetraSynConfig, SynthesisRun
from repro.core.variants import make_all_update, make_no_eq, make_retrasyn

__all__ = [
    "GlobalMobilityModel",
    "DMUSelector",
    "Synthesizer",
    "VectorizedSynthesizer",
    "TrajectoryStore",
    "StoreTrajectories",
    "AllocationContext",
    "BudgetAllocator",
    "PopulationAllocator",
    "AdaptiveBudgetAllocator",
    "AdaptiveUserBudgetAllocator",
    "AdaptivePopulationAllocator",
    "UniformBudgetAllocator",
    "UniformPopulationAllocator",
    "SampleBudgetAllocator",
    "SamplePopulationAllocator",
    "RetraSyn",
    "RetraSynConfig",
    "SynthesisRun",
    "OnlineRetraSyn",
    "TimestepResult",
    "ShardedOnlineRetraSyn",
    "CollectionShard",
    "shard_of",
    "save_model",
    "load_model",
    "save_config",
    "load_config",
    "save_checkpoint",
    "load_checkpoint",
    "peek_checkpoint_spec",
    "make_retrasyn",
    "make_all_update",
    "make_no_eq",
]
