"""Incremental (online) curator interface.

:class:`~repro.core.retrasyn.RetraSyn` processes a finished
:class:`~repro.stream.stream.StreamDataset` in one call — convenient for
experiments, but a *real-time* deployment receives reports timestamp by
timestamp.  :class:`OnlineRetraSyn` is that interface::

    curator = OnlineRetraSyn(grid, RetraSynConfig(epsilon=1.0, w=20), lam=14)
    for t in range(...):                      # as wall-clock time advances
        step = curator.process_timestep(
            t,
            participants=[(uid, state), ...],  # users able to report at t
            newly_entered=[uid, ...],
            quitted=[uid, ...],
            n_real_active=count,
        )
        publish(curator.live_snapshot())       # current synthetic positions

    run = curator.result(n_timestamps=T)       # full SynthesisRun at the end

The batch pipeline is implemented on top of this class, so both paths share
one code base and one set of invariants (privacy accounting, DMU, size
adjustment).

Internally the collection phase is *columnar*: ``participants`` may be a
:class:`~repro.stream.reports.ReportBatch` (numpy arrays of user ids,
encoded state indices, and transition-kind codes) and object-path inputs —
lists of ``(user_id, TransitionState)`` pairs — are bridged into one at the
boundary.  Both representations drive the same selection code and consume
the RNG identically, so they produce bit-identical synthetic streams for a
fixed seed (tested in ``tests/core/test_columnar_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import (
    AllocationContext,
    make_budget_allocator,
    make_population_allocator,
)
from repro.core.dmu import DMUSelector
from repro.core.mobility_model import GlobalMobilityModel
from repro.core.synthesis import Synthesizer
from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.ldp.accountant import make_accountant
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.rng import ensure_rng
from repro.stream.encoder import UserSideEncoder
from repro.stream.reports import ReportBatch, as_report_batch
from repro.stream.slots import UserSlotTable
from repro.stream.state_space import TransitionStateSpace
from repro.stream.user_tracker import UserTracker

#: Collections with less budget than this are skipped outright.
_MIN_EPSILON = 1e-8

#: z-score of the per-position one-count noise floor used by the DMU
#: prefilter: positions whose raw one-counts never exceed
#: ``n·q + z·sqrt(n·q(1−q))`` are treated as never observed.
_SUPPORT_Z = 3.0


def support_mask(ones: np.ndarray, n_reporters: int, q: float) -> np.ndarray:
    """Which positions plausibly received a true report this round.

    Pure post-processing of the perturbed one-counts (no privacy cost): a
    position whose count is within ``_SUPPORT_Z`` standard deviations of
    the all-noise expectation ``n·q`` is indistinguishable from never
    reported.  Used to build the DMU candidate set when
    ``RetraSynConfig.dmu_prefilter`` is on.
    """
    if n_reporters <= 0:
        return np.zeros(np.asarray(ones).shape, dtype=bool)
    floor = n_reporters * q + _SUPPORT_Z * np.sqrt(n_reporters * q * (1.0 - q))
    return np.asarray(ones) > floor


def sample_population_reporters(
    tracker,
    report_phase: dict,
    rng,
    cfg,
    t: int,
    participants,
    newly_entered,
    rate: Optional[float],
    stochastic_round: bool = False,
) -> list:
    """Algorithm 1's per-timestamp reporter selection over one user set.

    Registers arrivals, recycles the ``t − w`` cohort, then either applies
    the user-driven "random" phase rule or samples a ``rate`` fraction of
    the eligible set.  Shared by the unsharded engine (whole population)
    and each :class:`~repro.core.sharded.CollectionShard` (one partition),
    so the selection semantics cannot drift between engines.

    ``stochastic_round=True`` rounds the sample size probabilistically so
    that its *expectation* is exactly ``rate * len(eligible)`` — required
    when the population is split into many small partitions, where
    deterministic rounding would systematically under- or over-sample.
    """
    tracker.register(newly_entered)
    if cfg.allocator == "random":
        for uid in newly_entered:
            report_phase[uid] = int(rng.integers(0, cfg.w))
    tracker.recycle(t)
    eligible = [
        (uid, s)
        for uid, s in participants
        if tracker.status(uid).value == "active"
    ]
    if cfg.allocator == "random":
        return [
            (uid, s)
            for uid, s in eligible
            if report_phase.get(uid, 0) == t % cfg.w
        ]
    target = (rate or 0.0) * len(eligible)
    if stochastic_round:
        n_sample = int(target) + int(rng.random() < (target - int(target)))
    else:
        n_sample = int(round(target))
    if n_sample <= 0 or not eligible:
        return []
    idx = rng.choice(
        len(eligible), size=min(n_sample, len(eligible)), replace=False
    )
    return [eligible[int(i)] for i in np.atleast_1d(idx)]


def sample_population_reporters_batch(
    tracker,
    report_phase: dict,
    rng,
    cfg,
    t: int,
    batch: ReportBatch,
    newly_entered,
    rate: Optional[float],
    stochastic_round: bool = False,
) -> np.ndarray:
    """Columnar twin of :func:`sample_population_reporters`.

    Returns the selected *row indices* into ``batch`` (in selection order).
    Draws from ``rng`` in exactly the same sequence as the object version —
    one ``integers`` call per arrival under the "random" strategy, one
    ``random`` call for stochastic rounding, one ``choice`` call over the
    eligible set — so for a fixed seed both samplers select the same users
    in the same order (pinned by ``tests/core/test_columnar_equivalence``).
    """
    entered = [int(u) for u in newly_entered]
    tracker.register(entered)
    if cfg.allocator == "random":
        for uid in entered:
            report_phase[uid] = int(rng.integers(0, cfg.w))
    tracker.recycle(t)
    eligible_rows = np.flatnonzero(tracker.active_mask(batch.user_ids))
    if cfg.allocator == "random":
        phase = t % cfg.w
        keep = [
            i
            for i, uid in zip(
                eligible_rows.tolist(), batch.user_ids[eligible_rows].tolist()
            )
            if report_phase.get(uid, 0) == phase
        ]
        return np.asarray(keep, dtype=np.int64)
    n_eligible = int(eligible_rows.size)
    target = (rate or 0.0) * n_eligible
    if stochastic_round:
        n_sample = int(target) + int(rng.random() < (target - int(target)))
    else:
        n_sample = int(round(target))
    if n_sample <= 0 or n_eligible == 0:
        return np.empty(0, dtype=np.int64)
    idx = rng.choice(n_eligible, size=min(n_sample, n_eligible), replace=False)
    return eligible_rows[np.atleast_1d(idx)]


@dataclass(frozen=True)
class TimestepResult:
    """What happened inside one :meth:`OnlineRetraSyn.process_timestep`."""

    t: int
    n_reporters: int
    epsilon_used: float
    n_significant: int
    n_live_synthetic: int


class OnlineRetraSyn:
    """Stateful per-timestamp RetraSyn curator.

    Parameters
    ----------
    grid:
        Discretisation grid shared with the reporting users.
    config:
        A :class:`~repro.core.retrasyn.RetraSynConfig`.
    lam:
        Termination restriction factor λ (Eq. 8).  The batch pipeline
        defaults it to the dataset's average length; online deployments
        supply a domain estimate.
    """

    def __init__(self, grid: Grid, config, lam: float) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        self.grid = grid
        self.config = config
        self.lam = float(lam)
        self.rng = ensure_rng(config.seed)
        self.space = TransitionStateSpace(
            grid, include_entering_quitting=config.model_entering_quitting
        )
        self.encoder = UserSideEncoder(self.space)
        self.model = GlobalMobilityModel(self.space)
        if config.engine == "vectorized":
            from repro.core.fast_synthesis import VectorizedSynthesizer

            self.synthesizer = VectorizedSynthesizer(
                self.model,
                lam=lam,
                enable_termination=config.model_entering_quitting,
                rng=self.rng,
                compile_mode=getattr(config, "compile_mode", "incremental"),
                synthesis_shards=getattr(config, "synthesis_shards", 1),
                synthesis_executor=getattr(
                    config, "synthesis_executor", "thread"
                ),
            )
        else:
            self.synthesizer = Synthesizer(
                self.model,
                lam=lam,
                enable_termination=config.model_entering_quitting,
                rng=self.rng,
            )
        self.selector = DMUSelector()
        self.context = AllocationContext(kappa=config.kappa)
        # One uid -> slot table backs both columnar user-state planes: the
        # tracker's status columns and the accountant's spend ring buffer.
        self._slots = UserSlotTable()
        self.accountant = (
            make_accountant(
                config.epsilon,
                config.w,
                mode=getattr(config, "accountant_mode", "columnar"),
                slots=self._slots,
            )
            if config.track_privacy
            else None
        )
        self.timings = {
            "user_side": 0.0,
            "model_construction": 0.0,
            "dmu": 0.0,
            "synthesis": 0.0,
        }
        self.reporters_per_timestamp: list[int] = []
        self.significant_per_timestamp: list[int] = []
        self._model_initialized = False
        self._last_t: Optional[int] = None
        # Cumulative plausibly-observed support, grown by each collection
        # round; only consulted when config.dmu_prefilter is on.
        self._dmu_candidates = np.zeros(self.space.size, dtype=bool)

        if config.division == "population":
            self._pop_alloc = (
                None
                if config.allocator == "random"
                else make_population_allocator(
                    config.allocator, config.w,
                    alpha=config.alpha, p_max=config.p_max,
                )
            )
            self._budget_alloc = None
            self._tracker = UserTracker(config.w, slots=self._slots)
            self._report_phase: dict[int, int] = {}
        else:
            self._pop_alloc = None
            self._budget_alloc = make_budget_allocator(
                config.allocator, config.epsilon, config.w,
                alpha=config.alpha, p_max=config.p_max,
            )
            self._tracker = None

    # ------------------------------------------------------------------ #
    # the per-timestamp protocol round
    # ------------------------------------------------------------------ #
    def process_timestep(
        self,
        t: int,
        participants,
        newly_entered: Sequence[int] = (),
        quitted: Sequence[int] = (),
        n_real_active: int = 0,
    ) -> TimestepResult:
        """Run one full collection → update → synthesis round.

        ``participants`` describes every user *able* to report at ``t`` —
        either a columnar :class:`~repro.stream.reports.ReportBatch` (the
        native representation) or object-path ``(user_id, state)`` pairs,
        which are bridged into a batch here.  The allocation strategy
        decides who actually reports; ``n_real_active`` drives size
        adjustment.
        """
        cfg = self.config
        if self._last_t is not None and t != self._last_t + 1:
            raise ConfigurationError(
                f"timestamps must be consecutive: got {t} after {self._last_t}"
            )
        self._last_t = t

        batch = as_report_batch(self.space, participants)
        if not cfg.model_entering_quitting:
            batch = batch.moves_only()
        entered = np.asarray(newly_entered, dtype=np.int64)
        quit_ids = np.asarray(quitted, dtype=np.int64)

        collected, n_reporters, eps_used = self._collect_round(
            t, batch, entered, quit_ids
        )
        self.reporters_per_timestamp.append(n_reporters)

        n_significant = self._update_model(collected, eps_used, n_reporters)
        self.significant_per_timestamp.append(n_significant)

        self._synthesize(t, n_real_active)
        return TimestepResult(
            t=t,
            n_reporters=n_reporters,
            epsilon_used=eps_used if n_reporters else 0.0,
            n_significant=n_significant,
            n_live_synthetic=self.synthesizer.n_live,
        )

    def process_timesteps(self, items) -> list[TimestepResult]:
        """Run a group of consecutive rounds; one result per timestamp.

        ``items`` is a sequence of ``(t, participants, newly_entered,
        quitted, n_real_active)`` tuples in timestamp order.  The unsharded
        curator's collection phase draws from the engine RNG, so there is
        no safe overlap here — this base implementation is the sequential
        reference the sharded engine's pipelined override must stay
        bit-identical to.
        """
        return [
            self.process_timestep(t, participants, entered, quitted, n_active)
            for t, participants, entered, quitted, n_active in items
        ]

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    def _collect_round(self, t, batch: ReportBatch, newly_entered, quitted):
        """Selection + private collection for one timestamp (columnar).

        Returns ``(collected, n_reporters, eps_used)``.  This is the hook
        :class:`~repro.core.sharded.ShardedOnlineRetraSyn` overrides: the
        model-update and synthesis phases downstream are shared.
        """
        chosen, eps_used = self._select_reporters(t, batch, newly_entered)
        collected = self._collect(t, chosen, eps_used)
        if self._tracker is not None:
            self._tracker.mark_quitted(quitted)
        return collected, len(chosen), eps_used

    def _select_reporters(self, t, batch: ReportBatch, newly_entered):
        cfg = self.config
        if cfg.division == "population":
            rate = (
                None
                if cfg.allocator == "random"
                else self._pop_alloc.propose(t, self.context)
            )
            rows = sample_population_reporters_batch(
                self._tracker, self._report_phase, self.rng, cfg,
                t, batch, newly_entered, rate,
            )
            return batch.take(rows), cfg.epsilon

        eps_t = self._propose_budget(t, batch)
        if eps_t < _MIN_EPSILON:
            chosen, eps_used = ReportBatch.empty(), 0.0
        else:
            chosen, eps_used = batch, eps_t
        self._budget_alloc.commit(eps_used)
        return chosen, eps_used

    def _propose_budget(self, t, batch: ReportBatch) -> float:
        """The round's ε_t under budget division.

        Per-user allocators (``allocator="adaptive-user"``) additionally
        receive the candidate batch's remaining window budgets from the
        privacy ledger, so spends adapt to the tightest participant rather
        than the schedule-level worst case.
        """
        alloc = self._budget_alloc
        if getattr(alloc, "consults_users", False):
            remaining = None
            if self.accountant is not None and len(batch):
                remaining = self.accountant.remaining_many(batch.user_ids, t)
            return alloc.propose_for(t, self.context, remaining)
        return alloc.propose(t, self.context)

    def _collect(self, t, chosen: ReportBatch, eps_used):
        if len(chosen) == 0:
            return None
        oracle = OptimizedUnaryEncoding(
            self.space.size, eps_used, rng=self.rng, mode=self.config.oracle_mode
        )
        tic = time.perf_counter()
        ones = oracle.simulate_ones(chosen.state_idx)
        self.timings["user_side"] += time.perf_counter() - tic

        tic = time.perf_counter()
        counts = oracle.debias(ones, len(chosen))
        collected = counts / len(chosen)
        self.timings["model_construction"] += time.perf_counter() - tic

        if self.accountant is not None:
            self.accountant.spend_many(chosen.user_ids, t, eps_used)
        if self._tracker is not None:
            self._tracker.mark_reported(chosen.user_ids, t)
        if self.config.dmu_prefilter:
            self._dmu_candidates |= support_mask(ones, len(chosen), oracle.q)
        self.context.record_collection(collected)
        return collected

    def _update_model(self, collected, eps_used, n_reporters) -> int:
        tic = time.perf_counter()
        n_significant = 0
        if collected is not None:
            if not self._model_initialized or self.config.update_strategy == "all":
                self.model.set_all(collected)
                n_significant = self.space.size
                self._model_initialized = True
            else:
                candidates = (
                    self._dmu_candidates if self.config.dmu_prefilter else None
                )
                decision = self.selector.select(
                    self.model.frequencies, collected, eps_used, n_reporters,
                    candidates=candidates,
                )
                self.model.update_selected(decision.selected, collected)
                n_significant = decision.n_selected
            self.context.record_significant_ratio(n_significant / self.space.size)
        self.timings["dmu"] += time.perf_counter() - tic
        return n_significant

    def _synthesize(self, t, n_real_active) -> None:
        cfg = self.config
        tic = time.perf_counter()
        if t == 0:
            if cfg.model_entering_quitting:
                self.synthesizer.spawn_from_entering(0, n_real_active)
            else:
                self.synthesizer.spawn_uniform(0, n_real_active)
        else:
            target = n_real_active if cfg.model_entering_quitting else None
            self.synthesizer.step(t, target)
        self.timings["synthesis"] += time.perf_counter() - tic

    # ------------------------------------------------------------------ #
    # checkpointing (see repro.core.persistence)
    # ------------------------------------------------------------------ #
    def checkpoint_state(self) -> dict:
        """Everything needed to resume this curator bit-for-bit.

        The whole attribute graph (rng, model, synthesizer, tracker,
        allocators, accountant, feedback context, …) is returned as one
        dict so that shared references — e.g. the synthesizer drawing from
        the curator's rng — survive a pickle round trip intact.
        """
        return dict(self.__dict__)

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state` on a freshly built curator."""
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #
    def live_snapshot(self) -> np.ndarray:
        """Current cells of all live synthetic streams.

        Served straight from the trajectory store's cell buffer — no
        ``CellTrajectory`` objects are materialised.
        """
        return self.synthesizer.live_last_cells()

    def synthetic_dataset(self, n_timestamps: int, name: str = "online"):
        """Everything synthesized so far, as a store-backed StreamDataset.

        No ``CellTrajectory`` objects are materialised here: the dataset's
        trajectory sequence is a lazy view over the columnar store (built
        per stream only if a consumer indexes it), and the per-timestamp
        count matrix — what the streaming metrics actually consume — is
        primed from the store arrays directly.
        """
        from repro.stream.stream import StreamDataset

        dataset = StreamDataset.from_store(
            self.grid,
            self.synthesizer.store,
            rows=self.synthesizer.all_rows(),
            n_timestamps=n_timestamps,
            name=name,
        )
        dataset.prime_cell_counts(
            self.synthesizer.store.counts_matrix(
                dataset.n_timestamps, self.grid.n_cells
            )
        )
        return dataset

    def result(self, n_timestamps: int, name: str = "online", total_runtime: float = 0.0):
        """Package the curator's state as a finished SynthesisRun."""
        from repro.core.retrasyn import SynthesisRun

        return SynthesisRun(
            synthetic=self.synthetic_dataset(n_timestamps, name=name),
            config=self.config,
            accountant=self.accountant,
            timings=self.timings,
            reporters_per_timestamp=self.reporters_per_timestamp,
            significant_per_timestamp=self.significant_per_timestamp,
            total_runtime=total_runtime or sum(self.timings.values()),
        )
