"""Persistence for mobility models and pipeline configurations.

A deployed curator needs to survive restarts: the learned global mobility
model (frequencies over the transition-state space) and the pipeline
configuration are saved together so a new process can resume synthesis with
the same state.  Models are stored as npz (frequencies + the grid geometry
and state-space flags needed to rebuild the space); configurations as JSON.

Restoring a model is pure post-processing of already-released statistics
(paper Theorem 2), so persistence never touches the privacy budget.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import RetraSynConfig
from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox
from repro.stream.state_space import TransitionStateSpace

_MODEL_FORMAT_VERSION = 1


def save_model(model: GlobalMobilityModel, path: Union[str, Path]) -> None:
    """Write a mobility model (and its space geometry) to ``path``."""
    space = model.space
    grid = space.grid
    np.savez_compressed(
        Path(path),
        version=np.asarray([_MODEL_FORMAT_VERSION]),
        frequencies=model.frequencies,
        grid_k=np.asarray([grid.k]),
        bbox=np.asarray(
            [grid.bbox.min_x, grid.bbox.min_y, grid.bbox.max_x, grid.bbox.max_y]
        ),
        include_eq=np.asarray([int(space.include_eq)]),
    )


def load_model(path: Union[str, Path]) -> GlobalMobilityModel:
    """Rebuild a mobility model saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _MODEL_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported model format version {version} "
                f"(expected {_MODEL_FORMAT_VERSION})"
            )
        freqs = archive["frequencies"]
        k = int(archive["grid_k"][0])
        bx = archive["bbox"]
        include_eq = bool(int(archive["include_eq"][0]))
    grid = Grid(
        BoundingBox(float(bx[0]), float(bx[1]), float(bx[2]), float(bx[3])), k
    )
    space = TransitionStateSpace(grid, include_entering_quitting=include_eq)
    if freqs.shape != (space.size,):
        raise DatasetError(
            f"frequency vector of length {freqs.shape} does not match the "
            f"reconstructed state space of size {space.size}"
        )
    model = GlobalMobilityModel(space)
    model.set_all(freqs)
    return model


def config_to_dict(config: RetraSynConfig) -> dict:
    """JSON-safe dictionary form of a pipeline configuration."""
    out = dataclasses.asdict(config)
    seed = out.get("seed")
    if seed is not None and not isinstance(seed, int):
        # Generators are process-local state; persist only reproducible seeds.
        out["seed"] = None
    return out


def config_from_dict(data: dict) -> RetraSynConfig:
    """Inverse of :func:`config_to_dict` (validates via the dataclass)."""
    known = {f.name for f in dataclasses.fields(RetraSynConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown config fields: {sorted(unknown)}")
    return RetraSynConfig(**data)


def save_config(config: RetraSynConfig, path: Union[str, Path]) -> None:
    """Write a configuration as pretty-printed JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: Union[str, Path]) -> RetraSynConfig:
    """Read a configuration written by :func:`save_config`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"config file not found: {path}")
    return config_from_dict(json.loads(path.read_text()))
