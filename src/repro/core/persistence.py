"""Persistence for mobility models, configurations and curator checkpoints.

A deployed curator needs to survive restarts.  Three artefact shapes:

* **models** (npz): the learned global mobility model — frequencies plus
  the grid geometry and state-space flags needed to rebuild the space;
* **configurations** (JSON): the full pipeline tuning;
* **checkpoints** (pickle): a *running curator's* complete state — rng,
  model, synthesizer (live synthetic streams), user trackers (including
  per-shard trackers fetched from worker processes), allocator feedback
  context and the privacy-accountant ledger.  The columnar accounting
  plane checkpoints as plain numpy state: the shared
  :class:`~repro.stream.slots.UserSlotTable` and the accountant's spend
  ring buffer are ordinary arrays, and pickle's reference sharing keeps
  the tracker and accountant pointing at the *same* table after a
  restore.  The synthesis plane checkpoints the same way: the
  :class:`~repro.core.trajectory_store.TrajectoryStore` cell buffer,
  compiled-model arrays and per-shard generation rngs are plain state
  (the vectorized synthesizer drops only its process-local thread pool,
  rebuilt lazily on the next step).  A curator restored from a checkpoint continues the stream
  bit-for-bit identically to one that was never interrupted; the
  ingestion service (:mod:`repro.stream.ingest`) checkpoints on this API.

Checkpoints use :mod:`pickle` because they capture an arbitrary live
object graph; load them only from paths you wrote yourself (same trust
model as any process state file).  Restoring any artefact is pure
post-processing of already-released statistics (paper Theorem 2), so
persistence never touches the privacy budget.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import warnings
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import RetraSynConfig
from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.grid import Grid
from repro.geo.point import BoundingBox
from repro.stream.state_space import TransitionStateSpace

_MODEL_FORMAT_VERSION = 1
# v2: synthesizers keep their streams in a columnar TrajectoryStore (plus
# ordered row-id lists for the object engine) instead of CellTrajectory
# object lists; v1 checkpoints would restore a pre-store attribute layout
# and are refused.
# v3: the payload additionally carries the layered SessionSpec (the
# canonical config surface since the unified curator API), so a resumed
# service restores its deployment shape — transport, lateness bound,
# checkpoint cadence — not just the engine state.  v2 checkpoints load
# through a migration shim (the spec is lifted from the stored flat
# config) and emit a DeprecationWarning; re-saving writes v3.
_CHECKPOINT_FORMAT_VERSION = 3
_MIGRATABLE_CHECKPOINT_VERSIONS = (2,)


def save_model(model: GlobalMobilityModel, path: Union[str, Path]) -> None:
    """Write a mobility model (and its space geometry) to ``path``."""
    space = model.space
    grid = space.grid
    np.savez_compressed(
        Path(path),
        version=np.asarray([_MODEL_FORMAT_VERSION]),
        frequencies=model.frequencies,
        grid_k=np.asarray([grid.k]),
        bbox=np.asarray(
            [grid.bbox.min_x, grid.bbox.min_y, grid.bbox.max_x, grid.bbox.max_y]
        ),
        include_eq=np.asarray([int(space.include_eq)]),
    )


def load_model(path: Union[str, Path]) -> GlobalMobilityModel:
    """Rebuild a mobility model saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _MODEL_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported model format version {version} "
                f"(expected {_MODEL_FORMAT_VERSION})"
            )
        freqs = archive["frequencies"]
        k = int(archive["grid_k"][0])
        bx = archive["bbox"]
        include_eq = bool(int(archive["include_eq"][0]))
    grid = Grid(
        BoundingBox(float(bx[0]), float(bx[1]), float(bx[2]), float(bx[3])), k
    )
    space = TransitionStateSpace(grid, include_entering_quitting=include_eq)
    if freqs.shape != (space.size,):
        raise DatasetError(
            f"frequency vector of length {freqs.shape} does not match the "
            f"reconstructed state space of size {space.size}"
        )
    model = GlobalMobilityModel(space)
    model.set_all(freqs)
    return model


def config_to_dict(config: RetraSynConfig) -> dict:
    """JSON-safe dictionary form of a pipeline configuration."""
    out = dataclasses.asdict(config)
    seed = out.get("seed")
    if seed is not None and not isinstance(seed, int):
        # Generators are process-local state; persist only reproducible seeds.
        out["seed"] = None
    return out


def config_from_dict(data: dict) -> RetraSynConfig:
    """Inverse of :func:`config_to_dict` (validates via the dataclass)."""
    known = {f.name for f in dataclasses.fields(RetraSynConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown config fields: {sorted(unknown)}")
    return RetraSynConfig(**data)


def _generation_files(path: Path) -> list[Path]:
    """Rotated generation files for ``path``, newest first.

    Generations are named ``<name>.g<stamp>`` next to the base path; the
    stamp is a zero-padded nanosecond timestamp, so lexicographic order
    is chronological order.
    """
    prefix = path.name + ".g"
    found = [
        p for p in path.parent.glob(prefix + "*")
        if p.name[len(prefix):].isdigit()
    ]
    return sorted(found, reverse=True)


def checkpoint_candidates(path: Union[str, Path]) -> list[Path]:
    """Existing checkpoint files for ``path``, newest first.

    Rotated generations come first (newest stamp leading); the bare path
    itself — the non-rotated layout, ``checkpoint_keep=1`` — is last.
    """
    path = Path(path)
    candidates = _generation_files(path)
    if path.exists():
        candidates.append(path)
    return candidates


def checkpoint_exists(path: Union[str, Path]) -> bool:
    """True if any checkpoint file (rotated or not) exists for ``path``."""
    return bool(checkpoint_candidates(path))


def save_checkpoint(curator, path: Union[str, Path], spec=None, keep: int = 1) -> None:
    """Freeze a running curator (online or sharded) to ``path``.

    Captures everything :meth:`~repro.core.online.OnlineRetraSyn
    .checkpoint_state` returns, plus the grid / config / λ needed to
    rebuild the curator object itself.  For the process shard executor the
    per-shard states are fetched from the worker processes first, so the
    checkpoint is complete even though the workers hold the trackers.

    ``spec`` is the session's :class:`~repro.api.specs.SessionSpec`; when
    omitted it is lifted from the curator's flat config (losing only the
    service layer, which defaults).

    ``keep`` enables rotation: with ``keep > 1`` each save writes a new
    timestamped generation (``<path>.g<stamp>``) and prunes the oldest
    beyond ``keep``, so a checkpoint torn by a crash mid-write — or
    corrupted afterwards — still leaves the previous generation for
    :func:`load_checkpoint` to fall back to.  Every write remains atomic
    (tmp file + rename) in both layouts.
    """
    import time

    from repro.core.sharded import ShardedOnlineRetraSyn

    payload = {
        "version": _CHECKPOINT_FORMAT_VERSION,
        "kind": (
            "sharded" if isinstance(curator, ShardedOnlineRetraSyn) else "online"
        ),
        "grid": curator.grid,
        "config": curator.config,
        "spec": spec if spec is not None else curator.config.to_spec(),
        "lam": curator.lam,
        "state": curator.checkpoint_state(),
    }
    path = Path(path)
    if keep <= 1:
        target = path
    else:
        existing = _generation_files(path)
        # Rotation stamps order checkpoint *files* on disk; they never
        # enter the checkpointed state, so replay stays bit-identical.
        stamp = time.time_ns()  # repro-lint: disable=wall-clock
        if existing:
            # Guarantee strictly increasing stamps even on coarse clocks.
            prev = int(existing[0].name[len(path.name) + 2:])
            stamp = max(stamp, prev + 1)
        target = path.with_name(f"{path.name}.g{stamp:020d}")
    tmp = Path(str(target) + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(target)  # atomic: a crash mid-write never corrupts
    if keep > 1:
        for stale in _generation_files(path)[keep:]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass


def _read_checkpoint_payload(path: Union[str, Path]) -> dict:
    """Load and version-check one checkpoint file (v2 migrates, warns).

    Callers resolving a rotated set use :func:`_read_newest_valid` — this
    reads exactly the file it is given.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"checkpoint file not found: {path}")
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict):
        raise DatasetError(f"checkpoint {path} does not contain a payload dict")
    version = int(payload.get("version", -1))
    if version in _MIGRATABLE_CHECKPOINT_VERSIONS:
        warnings.warn(
            f"checkpoint format v{version} is deprecated; it loads through "
            f"a migration shim (session spec lifted from the stored flat "
            f"config) — re-save to write "
            f"v{_CHECKPOINT_FORMAT_VERSION}",
            DeprecationWarning,
            stacklevel=3,
        )
        payload = dict(payload)
        payload["spec"] = None  # derived lazily from the flat config
        payload["version"] = _CHECKPOINT_FORMAT_VERSION
    elif version != _CHECKPOINT_FORMAT_VERSION:
        raise DatasetError(
            f"unsupported checkpoint format version {version} "
            f"(expected {_CHECKPOINT_FORMAT_VERSION})"
        )
    return payload


def _read_newest_valid(path: Union[str, Path]) -> dict:
    """Payload of the newest *readable* checkpoint for ``path``.

    Walks the rotated generations newest-first (then the bare path), so a
    torn or corrupted newest file — the crash-mid-rotation case — falls
    back to the previous generation with a warning instead of failing the
    resume outright.
    """
    candidates = checkpoint_candidates(path)
    if not candidates:
        raise DatasetError(f"checkpoint file not found: {path}")
    failures = []
    for candidate in candidates:
        try:
            return _read_checkpoint_payload(candidate)
        except Exception as exc:  # torn write, truncation, bad version...
            failures.append(f"{candidate.name}: {exc}")
            if len(candidates) > 1:
                warnings.warn(
                    f"skipping unreadable checkpoint {candidate} ({exc}); "
                    f"falling back to an older generation",
                    RuntimeWarning,
                    stacklevel=3,
                )
    raise DatasetError(
        f"no valid checkpoint for {path}; tried {len(candidates)} file(s): "
        + "; ".join(failures)
    )


def load_checkpoint(path: Union[str, Path]):
    """Rebuild the curator saved by :func:`save_checkpoint`.

    Returns an :class:`~repro.core.online.OnlineRetraSyn` or
    :class:`~repro.core.sharded.ShardedOnlineRetraSyn` whose next
    ``process_timestep`` continues exactly where the saved one stopped
    (``curator._last_t + 1``).  v2 checkpoints migrate transparently (with
    a :class:`DeprecationWarning`); resume stays bit-for-bit identical
    because the migration touches only metadata, never engine state.
    Only load checkpoints you wrote: the format is pickle.
    """
    return load_checkpoint_with_spec(path)[0]


def load_checkpoint_with_spec(path: Union[str, Path]):
    """One-read variant of :func:`load_checkpoint` + :func:`peek_checkpoint_spec`.

    Returns ``(curator, spec)``; ``spec`` is ``None`` for migrated v2
    checkpoints, which predate the layered specs.  Session resume
    (:func:`repro.api.session.load_session`) uses this so large payloads
    — the full trajectory store, model and ledgers — are unpickled once.
    """
    from repro.core.online import OnlineRetraSyn
    from repro.core.sharded import ShardedOnlineRetraSyn

    payload = _read_newest_valid(path)
    cls = ShardedOnlineRetraSyn if payload["kind"] == "sharded" else OnlineRetraSyn
    curator = cls(payload["grid"], payload["config"], lam=payload["lam"])
    curator.restore_state(payload["state"])
    return curator, payload["spec"]


def peek_checkpoint_spec(path: Union[str, Path]):
    """The :class:`~repro.api.specs.SessionSpec` stored in a checkpoint.

    Returns ``None`` for migrated v2 checkpoints (which predate specs);
    callers fall back to lifting the flat config of the loaded curator.
    """
    return _read_newest_valid(path)["spec"]


def save_config(config: RetraSynConfig, path: Union[str, Path]) -> None:
    """Write a configuration as pretty-printed JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: Union[str, Path]) -> RetraSynConfig:
    """Read a configuration written by :func:`save_config`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"config file not found: {path}")
    return config_from_dict(json.loads(path.read_text()))
