"""Dynamic Mobility Update: significant-transition selection (Eq. 7).

At each timestamp the curator must decide, per transition state, whether to

* **update** it with the freshly collected (perturbed) frequency — paying
  the perturbation error ``Err_upd = Var_OUE(ε_t, n_t)`` (paper Eq. 3), or
* **approximate** it with the extant model value — paying the approximation
  error ``Err_app = |f̃_ij − f_ij|²``, estimated as ``|f̃_ij − f̂_ij|²``
  because the true frequency is unavailable under LDP.

Equation 7 minimises the total error ``Σ x·Err_upd + Σ (1−x)·Err_app`` over
binary indicators ``x``.  The objective is separable per state, so the exact
optimum is the simple rule *select iff the estimated approximation error
exceeds the perturbation variance*; :meth:`DMUSelector.select` implements
that closed form and a brute-force optimiser is kept for verification in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.ldp.oue import oue_variance


@dataclass(frozen=True)
class DMUDecision:
    """Outcome of one DMU round."""

    selected: np.ndarray  # dense indices of significant transitions
    mask: np.ndarray  # boolean mask over the full state space
    err_update: float  # per-state perturbation variance used for the rule
    total_error: float  # value of the Eq. 7 objective at the optimum

    @property
    def n_selected(self) -> int:
        return int(self.mask.sum())


class DMUSelector:
    """Selects significant transitions given model and fresh estimates."""

    def select(
        self,
        model_freqs: np.ndarray,
        collected_freqs: np.ndarray,
        epsilon_t: float,
        n_reporters: int,
        candidates: np.ndarray | None = None,
    ) -> DMUDecision:
        """Solve Eq. 7 exactly.

        Parameters
        ----------
        model_freqs:
            Extant model frequencies ``f̃`` over the full state space.
        collected_freqs:
            Freshly collected (debiased) frequency estimates ``f̂``.
        epsilon_t:
            Privacy budget used for this collection round.
        n_reporters:
            Number of users whose reports back the estimates.
        candidates:
            Optional boolean mask restricting the scan: states outside it
            are never selected for update and do not enter the objective.
            Supplied by the shard-local prefilter
            (``RetraSynConfig.dmu_prefilter``), which drops transitions no
            shard has plausibly observed so the selector scans a much
            smaller candidate set.
        """
        model_freqs = np.asarray(model_freqs, dtype=float)
        collected_freqs = np.asarray(collected_freqs, dtype=float)
        if model_freqs.shape != collected_freqs.shape:
            raise ValueError(
                f"shape mismatch: model {model_freqs.shape} vs "
                f"collected {collected_freqs.shape}"
            )
        err_upd = oue_variance(epsilon_t, n_reporters)
        if candidates is None:
            err_app = (model_freqs - collected_freqs) ** 2
            mask = err_app > err_upd
            total = float(np.where(mask, err_upd, err_app).sum())
        else:
            cand = np.asarray(candidates, dtype=bool)
            if cand.shape != model_freqs.shape:
                raise ValueError(
                    f"candidate mask shape {cand.shape} does not match "
                    f"state space {model_freqs.shape}"
                )
            rows = np.flatnonzero(cand)
            err_app_c = (model_freqs[rows] - collected_freqs[rows]) ** 2
            sub = err_app_c > err_upd
            mask = np.zeros(model_freqs.shape, dtype=bool)
            mask[rows[sub]] = True
            total = float(np.where(sub, err_upd, err_app_c).sum())
        return DMUDecision(
            selected=np.flatnonzero(mask),
            mask=mask,
            err_update=float(err_upd),
            total_error=total,
        )

    def brute_force(
        self,
        model_freqs: np.ndarray,
        collected_freqs: np.ndarray,
        epsilon_t: float,
        n_reporters: int,
    ) -> DMUDecision:
        """Exhaustive minimiser of Eq. 7 — test oracle for tiny spaces only."""
        model_freqs = np.asarray(model_freqs, dtype=float)
        collected_freqs = np.asarray(collected_freqs, dtype=float)
        d = model_freqs.size
        if d > 16:
            raise ValueError("brute force is exponential; use select() instead")
        err_upd = oue_variance(epsilon_t, n_reporters)
        err_app = (model_freqs - collected_freqs) ** 2
        best_mask: np.ndarray | None = None
        best_total = np.inf
        for bits in product((False, True), repeat=d):
            mask = np.asarray(bits)
            total = float(np.where(mask, err_upd, err_app).sum())
            if total < best_total:
                best_total = total
                best_mask = mask
        assert best_mask is not None
        return DMUDecision(
            selected=np.flatnonzero(best_mask),
            mask=best_mask,
            err_update=float(err_upd),
            total_error=best_total,
        )
