"""Real-time trajectory synthesis (paper Section III-D).

The synthesizer keeps a set of *live* synthetic streams and, at every
timestamp, performs:

1. **New point generation** — each live stream either terminates with the
   length-reweighted quit probability (Eq. 8)::

       Pr(quit | c_i) = (ℓ / λ) · f_iQ / (Σ_{x ∈ N_ci} f_ix + f_iQ)

   (``ℓ`` = current stream length, ``λ`` = termination restriction factor,
   set to the dataset's average trajectory length in the experiments) or
   extends by one cell sampled from the movement distribution.

2. **Size adjustment** — the number of live synthetic streams is matched to
   the real active-user count: shortfalls are filled with fresh streams
   whose start cell is sampled from the entering distribution ``E``;
   excesses are terminated with probability proportional to the quitting
   distribution ``Q`` evaluated at each stream's last cell.

Every stream ever created is retained, so the synthesizer's output doubles
as a complete historical database for trajectory-level metrics.

This is the *reference* engine: its per-cell grouping logic is the
readable statement of the algorithm, and its RNG consumption order defines
the semantics the vectorized engine is property-tested against.  Storage,
however, is columnar: streams live in a shared
:class:`~repro.core.trajectory_store.TrajectoryStore` (the engine keeps
only ordered row-id lists), and ``CellTrajectory`` objects are lazy views
materialised at API boundaries — so metrics and snapshots can use the
store's array accessors even against the reference engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.trajectory_store import TrajectoryStore
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng


class Synthesizer:
    """Maintains the evolving synthetic database ``T_syn``.

    Parameters
    ----------
    model:
        The global mobility model distributions are read from.
    lam:
        Termination restriction factor λ of Eq. 8.  Larger values delay
        termination; the paper sets λ to the dataset's average length.
    enable_termination:
        ``False`` disables quit sampling and size-down adjustment — used by
        the NoEQ ablation and the LDP-IDS baselines.
    rng:
        Randomness for all sampling.
    """

    def __init__(
        self,
        model: GlobalMobilityModel,
        lam: float,
        enable_termination: bool = True,
        rng: RngLike = None,
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        self.model = model
        self.lam = float(lam)
        self.enable_termination = bool(enable_termination)
        self.rng = ensure_rng(rng)
        self.store = TrajectoryStore()
        # Ordered row ids; the order defines RNG consumption (grouping) and
        # matches the historical _live / _finished object-list semantics.
        self._live: list[int] = []
        self._finished: list[int] = []

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def live_streams(self) -> list[CellTrajectory]:
        return self.store.views(self._live)

    @property
    def n_live(self) -> int:
        return len(self._live)

    def all_trajectories(self) -> list[CellTrajectory]:
        """Every synthetic stream ever created (finished + still live)."""
        return self.store.views(self._finished + self._live)

    def all_rows(self) -> np.ndarray:
        """Store rows of every stream, in the historical output order."""
        return np.asarray(self._finished + self._live, dtype=np.int64)

    def live_last_cells(self) -> np.ndarray:
        """Current cell of every live stream — no object materialisation."""
        return self.store.last_cells(np.asarray(self._live, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # stream creation / termination
    # ------------------------------------------------------------------ #
    def _new_streams(self, t: int, start_cells) -> None:
        self._live.extend(self.store.append_streams(t, start_cells).tolist())

    def spawn_from_entering(self, t: int, count: int) -> None:
        """Append ``count`` fresh streams with start cells sampled from E."""
        if count <= 0:
            return
        probs = self.model.enter_distribution()
        self._new_streams(t, self.rng.choice(probs.size, size=count, p=probs))

    def spawn_uniform(self, t: int, count: int) -> None:
        """Seed streams uniformly at random (NoEQ / baseline initialisation)."""
        if count <= 0:
            return
        self._new_streams(
            t, self.rng.integers(0, self.model.space.n_cells, size=count)
        )

    def spawn_from_distribution(self, t: int, count: int, probs: np.ndarray) -> None:
        """Seed streams from an explicit start-cell distribution.

        Used by the LDP-IDS baselines, which have no entering distribution
        and instead seed from the origin marginal of their released model.
        """
        if count <= 0:
            return
        probs = np.asarray(probs, dtype=float)
        if probs.size != self.model.space.n_cells:
            raise ConfigurationError(
                f"expected {self.model.space.n_cells} start-cell probabilities, "
                f"got {probs.size}"
            )
        total = probs.sum()
        if total <= 0:
            self.spawn_uniform(t, count)
            return
        self._new_streams(
            t, self.rng.choice(probs.size, size=count, p=probs / total)
        )

    # ------------------------------------------------------------------ #
    # the per-timestamp generative step
    # ------------------------------------------------------------------ #
    def step(self, t: int, target_size: Optional[int] = None) -> None:
        """Advance every live stream to timestamp ``t`` and adjust the size.

        ``target_size`` is the real active-user count at ``t``; ``None``
        skips size adjustment entirely (NoEQ / baselines).
        """
        self._generate_new_points(t)
        if target_size is not None:
            self._adjust_size(t, int(target_size))

    def _generate_new_points(self, t: int) -> None:
        if not self._live:
            return
        space = self.model.space
        survivors: list[int] = []
        quitters: list[int] = []
        # Group live streams by current cell so each row's distribution is
        # computed once and destinations are sampled in a single draw.
        live = np.asarray(self._live, dtype=np.int64)
        last = self.store.last_cells(live)
        by_cell: dict[int, list[int]] = {}
        for row, cell in zip(self._live, last.tolist()):
            by_cell.setdefault(cell, []).append(row)

        for cell, rows in by_cell.items():
            move_probs, quit_raw = self.model.row_distribution(cell)
            destinations = space.out_destinations(cell)
            rows_arr = np.asarray(rows, dtype=np.int64)
            lengths = self.store.lengths_of(rows_arr).astype(float)
            if self.enable_termination and quit_raw > 0.0:
                quit_probs = np.minimum(lengths / self.lam * quit_raw, 1.0)
            else:
                quit_probs = np.zeros(len(rows))
            draws = self.rng.random(len(rows))
            quit_mask = draws < quit_probs
            stay = rows_arr[~quit_mask]
            quitters.extend(rows_arr[quit_mask].tolist())
            if stay.size:
                total = move_probs.sum()
                if total <= 0.0:
                    # All of the row's mass sits on quitting but the stream
                    # survived the quit draw: move uniformly over legal
                    # destinations rather than stalling the stream.
                    norm = np.full(len(destinations), 1.0 / len(destinations))
                else:
                    norm = move_probs / total
                next_cells = self.rng.choice(
                    len(destinations), size=stay.size, p=norm
                )
                self.store.append_cells(
                    stay,
                    np.asarray(destinations, dtype=np.int64)[
                        np.atleast_1d(next_cells)
                    ],
                )
                survivors.extend(stay.tolist())

        self.store.kill(np.asarray(quitters, dtype=np.int64))
        self._finished.extend(quitters)
        self._live = survivors

    def _adjust_size(self, t: int, target: int) -> None:
        if target < 0:
            raise ConfigurationError(f"target size must be >= 0, got {target}")
        deficit = target - len(self._live)
        if deficit > 0:
            self.spawn_from_entering(t, deficit)
            return
        if deficit == 0:
            return
        # Excess: terminate |deficit| streams, weighted by Q at last cells.
        n_drop = -deficit
        if not self.enable_termination:
            return
        quit_dist = self.model.quit_distribution()
        weights = quit_dist[self.live_last_cells()]
        # Blend in a tiny uniform component so the weight vector always has
        # enough non-zero entries for replacement-free sampling.
        weights = weights + 1e-9
        weights = weights / weights.sum()
        drop_idx = self.rng.choice(
            len(self._live), size=n_drop, replace=False, p=weights
        )
        for i in sorted(np.atleast_1d(drop_idx).tolist(), reverse=True):
            row = self._live.pop(int(i))
            # Quitting at t means the final report happened at t-1, so the
            # cell just generated for t is withdrawn; this keeps the
            # synthetic active count equal to the target at every t.
            row_arr = np.asarray([row], dtype=np.int64)
            length = int(self.store.lengths_of(row_arr)[0])
            if int(self.store.births_of(row_arr)[0]) + length - 1 == t and length > 1:
                self.store.pop_last(row_arr)
            self.store.kill(row_arr)
            self._finished.append(row)
