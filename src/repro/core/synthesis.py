"""Real-time trajectory synthesis (paper Section III-D).

The synthesizer keeps a set of *live* synthetic streams and, at every
timestamp, performs:

1. **New point generation** — each live stream either terminates with the
   length-reweighted quit probability (Eq. 8)::

       Pr(quit | c_i) = (ℓ / λ) · f_iQ / (Σ_{x ∈ N_ci} f_ix + f_iQ)

   (``ℓ`` = current stream length, ``λ`` = termination restriction factor,
   set to the dataset's average trajectory length in the experiments) or
   extends by one cell sampled from the movement distribution.

2. **Size adjustment** — the number of live synthetic streams is matched to
   the real active-user count: shortfalls are filled with fresh streams
   whose start cell is sampled from the entering distribution ``E``;
   excesses are terminated with probability proportional to the quitting
   distribution ``Q`` evaluated at each stream's last cell.

Every stream ever created is retained, so the synthesizer's output doubles
as a complete historical database for trajectory-level metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng


class Synthesizer:
    """Maintains the evolving synthetic database ``T_syn``.

    Parameters
    ----------
    model:
        The global mobility model distributions are read from.
    lam:
        Termination restriction factor λ of Eq. 8.  Larger values delay
        termination; the paper sets λ to the dataset's average length.
    enable_termination:
        ``False`` disables quit sampling and size-down adjustment — used by
        the NoEQ ablation and the LDP-IDS baselines.
    rng:
        Randomness for all sampling.
    """

    def __init__(
        self,
        model: GlobalMobilityModel,
        lam: float,
        enable_termination: bool = True,
        rng: RngLike = None,
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        self.model = model
        self.lam = float(lam)
        self.enable_termination = bool(enable_termination)
        self.rng = ensure_rng(rng)
        self._live: list[CellTrajectory] = []
        self._finished: list[CellTrajectory] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def live_streams(self) -> list[CellTrajectory]:
        return list(self._live)

    @property
    def n_live(self) -> int:
        return len(self._live)

    def all_trajectories(self) -> list[CellTrajectory]:
        """Every synthetic stream ever created (finished + still live)."""
        return self._finished + self._live

    # ------------------------------------------------------------------ #
    # stream creation / termination
    # ------------------------------------------------------------------ #
    def _new_stream(self, t: int, start_cell: int) -> None:
        traj = CellTrajectory(t, [int(start_cell)], user_id=self._next_id)
        self._next_id += 1
        self._live.append(traj)

    def spawn_from_entering(self, t: int, count: int) -> None:
        """Append ``count`` fresh streams with start cells sampled from E."""
        if count <= 0:
            return
        probs = self.model.enter_distribution()
        cells = self.rng.choice(probs.size, size=count, p=probs)
        for c in np.atleast_1d(cells):
            self._new_stream(t, int(c))

    def spawn_uniform(self, t: int, count: int) -> None:
        """Seed streams uniformly at random (NoEQ / baseline initialisation)."""
        if count <= 0:
            return
        cells = self.rng.integers(0, self.model.space.n_cells, size=count)
        for c in cells:
            self._new_stream(t, int(c))

    def spawn_from_distribution(self, t: int, count: int, probs: np.ndarray) -> None:
        """Seed streams from an explicit start-cell distribution.

        Used by the LDP-IDS baselines, which have no entering distribution
        and instead seed from the origin marginal of their released model.
        """
        if count <= 0:
            return
        probs = np.asarray(probs, dtype=float)
        if probs.size != self.model.space.n_cells:
            raise ConfigurationError(
                f"expected {self.model.space.n_cells} start-cell probabilities, "
                f"got {probs.size}"
            )
        total = probs.sum()
        if total <= 0:
            self.spawn_uniform(t, count)
            return
        cells = self.rng.choice(probs.size, size=count, p=probs / total)
        for c in np.atleast_1d(cells):
            self._new_stream(t, int(c))

    def _terminate(self, index: int) -> None:
        traj = self._live.pop(index)
        traj.terminate()
        self._finished.append(traj)

    # ------------------------------------------------------------------ #
    # the per-timestamp generative step
    # ------------------------------------------------------------------ #
    def step(self, t: int, target_size: Optional[int] = None) -> None:
        """Advance every live stream to timestamp ``t`` and adjust the size.

        ``target_size`` is the real active-user count at ``t``; ``None``
        skips size adjustment entirely (NoEQ / baselines).
        """
        self._generate_new_points(t)
        if target_size is not None:
            self._adjust_size(t, int(target_size))

    def _generate_new_points(self, t: int) -> None:
        if not self._live:
            return
        space = self.model.space
        survivors: list[CellTrajectory] = []
        quitters: list[CellTrajectory] = []
        # Group live streams by current cell so each row's distribution is
        # computed once and destinations are sampled in a single draw.
        by_cell: dict[int, list[CellTrajectory]] = {}
        for traj in self._live:
            by_cell.setdefault(traj.last_cell, []).append(traj)

        for cell, trajs in by_cell.items():
            move_probs, quit_raw = self.model.row_distribution(cell)
            destinations = space.out_destinations(cell)
            lengths = np.asarray([len(tr) for tr in trajs], dtype=float)
            if self.enable_termination and quit_raw > 0.0:
                quit_probs = np.minimum(lengths / self.lam * quit_raw, 1.0)
            else:
                quit_probs = np.zeros(len(trajs))
            draws = self.rng.random(len(trajs))
            quit_mask = draws < quit_probs
            stay = [tr for tr, q in zip(trajs, quit_mask) if not q]
            quitters.extend(tr for tr, q in zip(trajs, quit_mask) if q)
            if stay:
                total = move_probs.sum()
                if total <= 0.0:
                    # All of the row's mass sits on quitting but the stream
                    # survived the quit draw: move uniformly over legal
                    # destinations rather than stalling the stream.
                    norm = np.full(len(destinations), 1.0 / len(destinations))
                else:
                    norm = move_probs / total
                next_cells = self.rng.choice(
                    len(destinations), size=len(stay), p=norm
                )
                for tr, j in zip(stay, np.atleast_1d(next_cells)):
                    tr.append(destinations[int(j)])
                survivors.extend(stay)

        for tr in quitters:
            tr.terminate()
            self._finished.append(tr)
        self._live = survivors

    def _adjust_size(self, t: int, target: int) -> None:
        if target < 0:
            raise ConfigurationError(f"target size must be >= 0, got {target}")
        deficit = target - len(self._live)
        if deficit > 0:
            self.spawn_from_entering(t, deficit)
            return
        if deficit == 0:
            return
        # Excess: terminate |deficit| streams, weighted by Q at last cells.
        n_drop = -deficit
        if not self.enable_termination:
            return
        quit_dist = self.model.quit_distribution()
        weights = np.asarray([quit_dist[tr.last_cell] for tr in self._live])
        # Blend in a tiny uniform component so the weight vector always has
        # enough non-zero entries for replacement-free sampling.
        weights = weights + 1e-9
        weights = weights / weights.sum()
        drop_idx = self.rng.choice(
            len(self._live), size=n_drop, replace=False, p=weights
        )
        for i in sorted(np.atleast_1d(drop_idx), reverse=True):
            traj = self._live.pop(int(i))
            # Quitting at t means the final report happened at t-1, so the
            # cell just generated for t is withdrawn; this keeps the
            # synthetic active count equal to the target at every t.
            if traj.end_time == t and len(traj) > 1:
                traj.cells.pop()
            traj.terminate()
            self._finished.append(traj)
