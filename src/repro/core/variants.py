"""Ablation variants of Table IV and convenience constructors.

* **AllUpdate** — replaces the DMU mechanism with a full-model overwrite at
  every collection timestamp (``update_strategy="all"``), accumulating the
  full perturbation noise each round.
* **NoEQ** — drops entering/quitting transitions entirely: the state space
  contains only movements, the synthetic database is seeded uniformly at
  random, streams never terminate and no size adjustment happens
  (``model_entering_quitting=False``).
"""

from __future__ import annotations


from repro.core.retrasyn import RetraSyn, RetraSynConfig
from repro.rng import RngLike


def make_retrasyn(
    division: str = "population",
    epsilon: float = 1.0,
    w: int = 20,
    allocator: str = "adaptive",
    seed: RngLike = None,
    **overrides,
) -> RetraSyn:
    """The full method: RetraSyn_p (default) or RetraSyn_b."""
    cfg = RetraSynConfig(
        epsilon=epsilon,
        w=w,
        division=division,
        allocator=allocator,
        seed=seed,
        **overrides,
    )
    return RetraSyn(cfg)


def make_all_update(
    division: str = "population",
    epsilon: float = 1.0,
    w: int = 20,
    seed: RngLike = None,
    **overrides,
) -> RetraSyn:
    """Table IV's AllUpdate_b / AllUpdate_p: no significant-transition
    selection, the whole model is overwritten every collection round."""
    cfg = RetraSynConfig(
        epsilon=epsilon,
        w=w,
        division=division,
        update_strategy="all",
        seed=seed,
        **overrides,
    )
    return RetraSyn(cfg)


def make_no_eq(
    division: str = "population",
    epsilon: float = 1.0,
    w: int = 20,
    seed: RngLike = None,
    **overrides,
) -> RetraSyn:
    """Table IV's NoEQ_b / NoEQ_p: movement-only modelling, random
    initialisation, perpetual streams, no size adjustment."""
    cfg = RetraSynConfig(
        epsilon=epsilon,
        w=w,
        division=division,
        model_entering_quitting=False,
        seed=seed,
        **overrides,
    )
    return RetraSyn(cfg)
