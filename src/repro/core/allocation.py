"""Allocation strategies (paper Section III-E, Eqs. 9–10).

w-event LDP caps the budget spent inside any sliding window of ``w``
timestamps at ``ε``.  Two division styles are supported:

* **budget division** — every reporting timestamp uses a fraction of the
  remaining window budget ``ε_rm = ε − Σ_{i=t-w+1}^{t-1} ε_i``;
* **population division** — a fraction ``p_t`` of the *active* user set
  reports with the full ``ε`` and is then rested for ``w`` timestamps.

Three allocators are provided per style:

* **Adaptive** — the paper's portion rule (Eq. 10)::

      p_t = min{ (α/w) · (1 − mean_{κ} |S*_i|/|S|) · ln(Dev_t + 1), p_max }

  where ``Dev_t`` (Eq. 9) measures how far the latest collected statistics
  drifted from the recent average.  Equation 9 is written as a signed sum in
  the paper; because collected frequency vectors each sum to (approximately)
  one, the signed sum telescopes toward zero, so — like the authors'
  implementation — we accumulate absolute deviations.
* **Uniform** — ``ε_i = ε/w`` (budget) or ``p = 1/w`` (population).
* **Sample** — the entire budget / population is spent on the first
  timestamp of each window; nothing happens in between.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ldp.accountant import SlidingBudgetTracker

#: Paper defaults (Section V-A).
DEFAULT_ALPHA = 8.0
DEFAULT_KAPPA = 5
DEFAULT_P_MAX = 0.6


@dataclass
class AllocationContext:
    """Rolling statistics shared between the pipeline and the allocators.

    The pipeline appends one entry per *collection* round:

    * ``collected`` — the debiased frequency vector ``f^t`` gathered at a
      reporting timestamp (used for ``Dev_t``);
    * ``significant_ratio`` — ``|S*_t| / |S|`` from the DMU round.
    """

    kappa: int = DEFAULT_KAPPA
    _freq_history: deque = field(init=False)
    _ratio_history: deque = field(init=False)

    def __post_init__(self) -> None:
        if self.kappa < 1:
            raise ConfigurationError(f"kappa must be >= 1, got {self.kappa}")
        # One extra slot: Dev compares the latest vector against the mean of
        # the κ vectors preceding it.
        self._freq_history = deque(maxlen=self.kappa + 1)
        self._ratio_history = deque(maxlen=self.kappa)

    def record_collection(self, collected_freqs: np.ndarray) -> None:
        self._freq_history.append(np.asarray(collected_freqs, dtype=float))

    def record_significant_ratio(self, ratio: float) -> None:
        self._ratio_history.append(float(np.clip(ratio, 0.0, 1.0)))

    def deviation(self) -> float:
        """``Dev_t`` (Eq. 9): drift of the latest stats from the recent mean.

        Returns 0 until at least two collection rounds exist.
        """
        if len(self._freq_history) < 2:
            return 0.0
        latest = self._freq_history[-1]
        past = list(self._freq_history)[:-1]
        mean_past = np.mean(np.stack(past, axis=0), axis=0)
        return float(np.abs(latest - mean_past).sum())

    def mean_significant_ratio(self) -> float:
        """Mean of the last κ values of ``|S*_i| / |S|``; 0 when empty."""
        if not self._ratio_history:
            return 0.0
        return float(np.mean(self._ratio_history))


def adaptive_portion(
    context: AllocationContext,
    w: int,
    alpha: float = DEFAULT_ALPHA,
    p_max: float = DEFAULT_P_MAX,
    p_floor: Optional[float] = None,
) -> float:
    """Eq. 10 with a bootstrap floor.

    The raw Eq. 10 portion vanishes when ``Dev_t = 0`` — which is always the
    case before two collection rounds exist, and whenever the model went
    stale (no fresh statistics ⇒ Dev stays 0 ⇒ no statistics ever again, an
    absorbing state).  A small floor of ``1/(2w)`` — half the uniform
    allocation, configurable — keeps the deviation signal fed while still
    letting the adaptive rule spend well below Uniform on steady streams.
    """
    if p_floor is None:
        p_floor = 1.0 / (2.0 * w)
    dev = context.deviation()
    ratio = context.mean_significant_ratio()
    p = (alpha / w) * (1.0 - ratio) * math.log(dev + 1.0)
    return float(min(max(p, p_floor), p_max))


# ---------------------------------------------------------------------- #
# budget division
# ---------------------------------------------------------------------- #
class BudgetAllocator(abc.ABC):
    """Chooses the per-timestamp budget ``ε_t`` under budget division."""

    name = "base"

    def __init__(self, epsilon: float, w: int) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self.tracker = SlidingBudgetTracker(epsilon, w)

    @abc.abstractmethod
    def propose(self, t: int, context: AllocationContext) -> float:
        """Budget to spend at timestamp ``t`` (0 means skip the collection)."""

    def commit(self, epsilon_t: float) -> None:
        """Record the actually spent budget and slide the window."""
        self.tracker.commit(epsilon_t)


class AdaptiveBudgetAllocator(BudgetAllocator):
    """Portion-based adaptive allocation over the remaining window budget."""

    name = "adaptive"

    def __init__(
        self,
        epsilon: float,
        w: int,
        alpha: float = DEFAULT_ALPHA,
        p_max: float = DEFAULT_P_MAX,
        p_floor: Optional[float] = None,
    ) -> None:
        super().__init__(epsilon, w)
        self.alpha = float(alpha)
        self.p_max = float(p_max)
        self.p_floor = p_floor

    def propose(self, t: int, context: AllocationContext) -> float:
        if t == 0:
            # Initialisation round mirrors Algorithm 1: spend 1/w of ε.
            return self.epsilon / self.w
        p = adaptive_portion(context, self.w, self.alpha, self.p_max, self.p_floor)
        return p * self.tracker.remaining


class AdaptiveUserBudgetAllocator(AdaptiveBudgetAllocator):
    """Adaptive allocation over the *participants'* remaining budgets.

    The plain adaptive allocator scales the Eq. 10 portion by the curator's
    schedule-level remaining window budget — which assumes every user
    participated in every collection of the window.  Under churn that is
    pessimistic: a user who entered mid-window has spent nothing in the
    rounds before their arrival.  This allocator instead consults the
    privacy ledger's :meth:`~repro.ldp.accountant.ColumnarPrivacyAccountant
    .remaining_many` for the current participant batch and scales the
    portion by the batch's *minimum* per-user remaining budget.

    Safety: every spend is capped at ``p ≤ p_max < 1`` times the tightest
    participant's remaining window budget, so no user's w-event bound can
    be exceeded — the strict accountant double-checks each round.  The
    schedule-level window cap does not apply (different rounds may bill
    different populations), so commits bypass the
    :class:`~repro.ldp.accountant.SlidingBudgetTracker` check while still
    recording the schedule for the feedback signal.

    Select via ``RetraSynConfig(division="budget", allocator="adaptive-user")``.
    """

    name = "adaptive-user"
    #: The engine passes ``accountant.remaining_many`` over the candidate
    #: batch to :meth:`propose_for` when this is set.
    consults_users = True

    def propose(self, t: int, context: AllocationContext) -> float:
        return self.propose_for(t, context, None)

    def propose_for(
        self,
        t: int,
        context: AllocationContext,
        remaining: Optional[np.ndarray],
    ) -> float:
        """Budget for ``t`` given the participants' remaining window budgets.

        ``remaining`` is ``accountant.remaining_many(batch.user_ids, t)``
        (or ``None`` when auditing is off / the batch is empty), computed
        *before* this round's spend.  Falls back to the schedule-level
        remaining budget exactly like the plain adaptive allocator when no
        per-user information is available.
        """
        if t == 0:
            # Initialisation round mirrors Algorithm 1: spend 1/w of ε.
            return self.epsilon / self.w
        p = adaptive_portion(context, self.w, self.alpha, self.p_max, self.p_floor)
        if remaining is None or remaining.size == 0:
            return p * self.tracker.remaining
        return p * float(np.min(remaining))

    def commit(self, epsilon_t: float) -> None:
        # Record the schedule (the Dev_t feedback loop reads it) without the
        # schedule-level window check: per-user safety is enforced by the
        # proposal cap above plus the strict accountant.
        self.tracker.commit(epsilon_t, checked=False)


class UniformBudgetAllocator(BudgetAllocator):
    """``ε_i = ε / w`` at every timestamp."""

    name = "uniform"

    def propose(self, t: int, context: AllocationContext) -> float:
        return self.epsilon / self.w


class SampleBudgetAllocator(BudgetAllocator):
    """Entire budget on the first timestamp of each window, 0 elsewhere."""

    name = "sample"

    def propose(self, t: int, context: AllocationContext) -> float:
        if t % self.w == 0:
            return self.epsilon
        return 0.0


# ---------------------------------------------------------------------- #
# population division
# ---------------------------------------------------------------------- #
class PopulationAllocator(abc.ABC):
    """Chooses the reporting fraction ``p_t`` of the active-user set."""

    name = "base"

    def __init__(self, w: int) -> None:
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.w = int(w)

    @abc.abstractmethod
    def propose(self, t: int, context: AllocationContext) -> float:
        """Fraction of active users to sample at ``t`` (in [0, 1])."""


class AdaptivePopulationAllocator(PopulationAllocator):
    """Eq. 10 applied to the active-user population (RetraSyn_p)."""

    name = "adaptive"

    def __init__(
        self,
        w: int,
        alpha: float = DEFAULT_ALPHA,
        p_max: float = DEFAULT_P_MAX,
        p_floor: Optional[float] = None,
    ) -> None:
        super().__init__(w)
        self.alpha = float(alpha)
        self.p_max = float(p_max)
        self.p_floor = p_floor

    def propose(self, t: int, context: AllocationContext) -> float:
        if t == 0:
            # Algorithm 1 line 2: sample 1/w of the users to initialise.
            return 1.0 / self.w
        return adaptive_portion(context, self.w, self.alpha, self.p_max, self.p_floor)


class UniformPopulationAllocator(PopulationAllocator):
    """``p = 1 / w`` at every timestamp."""

    name = "uniform"

    def propose(self, t: int, context: AllocationContext) -> float:
        return 1.0 / self.w


class SamplePopulationAllocator(PopulationAllocator):
    """All active users report on the first timestamp of each window."""

    name = "sample"

    def propose(self, t: int, context: AllocationContext) -> float:
        if t % self.w == 0:
            return 1.0
        return 0.0


def make_budget_allocator(
    name: str, epsilon: float, w: int, **kwargs
) -> BudgetAllocator:
    """Factory for budget-division allocators by name."""
    table = {
        "adaptive": AdaptiveBudgetAllocator,
        "adaptive-user": AdaptiveUserBudgetAllocator,
        "uniform": UniformBudgetAllocator,
        "sample": SampleBudgetAllocator,
    }
    if name not in table:
        raise ConfigurationError(f"unknown budget allocator {name!r}")
    if name not in ("adaptive", "adaptive-user"):
        kwargs = {}
    return table[name](epsilon, w, **kwargs)


def make_population_allocator(name: str, w: int, **kwargs) -> PopulationAllocator:
    """Factory for population-division allocators by name."""
    table = {
        "adaptive": AdaptivePopulationAllocator,
        "uniform": UniformPopulationAllocator,
        "sample": SamplePopulationAllocator,
    }
    if name not in table:
        raise ConfigurationError(f"unknown population allocator {name!r}")
    if name != "adaptive":
        kwargs = {}
    return table[name](w, **kwargs)
