"""Sharded collection engine: hash-partitioned parallel curator.

:class:`ShardedOnlineRetraSyn` scales the *collection* half of the pipeline
the way :class:`~repro.core.fast_synthesis.VectorizedSynthesizer` scaled the
synthesis half.  Users are hash-partitioned across ``K`` independent
collection shards, each owning its own :class:`~repro.stream.user_tracker
.UserTracker`, :class:`~repro.stream.encoder.UserSideEncoder` and per-round
frequency oracle.  Every timestamp each shard runs selection + perturbation
on its partition only and returns raw per-position one-counts; the parent
merges them with a single vector add and debiases once **before**
mobility-model construction, so the model, DMU and synthesizer remain
global and unchanged.

Why this is statistically equivalent to the unsharded curator:

* the hash partition is a fixed disjoint cover of the user population, so
  each user lives in exactly one shard and can never be sampled twice in a
  window — w-event accounting is preserved per user, not per shard;
* every shard perturbs with the same ``(p, q)`` OUE parameters, and the sum
  of independent per-shard one-count vectors has exactly the distribution
  of the one-count vector over the union of reporters;
* the sampling rate ``p_t`` (population division) or budget ``ε_t`` (budget
  division) is proposed *globally* from the merged collection feedback, so
  allocation adapts on the same signal as the unsharded engine.

Shard rounds are embarrassingly parallel.  Two executors are provided:

* ``executor="serial"`` — rounds run in-process, one shard after another
  (no IPC overhead; the default and the reference semantics);
* ``executor="process"`` — each shard lives in a persistent worker process
  connected by a pipe, for true multi-core collection.  Both executors
  draw shard randomness from the same per-shard seeds, so they produce
  identical outputs for a fixed configuration.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Optional, Sequence

import numpy as np

from repro.core.online import (
    _MIN_EPSILON,
    OnlineRetraSyn,
    sample_population_reporters,
)
from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.stream.encoder import UserSideEncoder
from repro.stream.state_space import TransitionStateSpace
from repro.stream.user_tracker import UserTracker

#: Knuth multiplicative hash, so shard assignment is uncorrelated with any
#: arithmetic structure in the user-id space (parity, contiguous ranges, …).
_HASH_MULT = 2654435761


def shard_of(user_id: int, n_shards: int) -> int:
    """Stable hash partition of a user id into ``[0, n_shards)``.

    The xor-fold mixes the multiplied high bits back into the low bits —
    a bare ``% n_shards`` of the product would preserve arithmetic
    structure (e.g. parity) of the id space.
    """
    h = (int(user_id) * _HASH_MULT) & 0xFFFFFFFF
    h ^= h >> 16
    return h % n_shards


class CollectionShard:
    """One partition's tracker + encoder + oracle; no model, no synthesis."""

    def __init__(self, grid: Grid, config, seed: int) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.space = TransitionStateSpace(
            grid, include_entering_quitting=config.model_entering_quitting
        )
        self.encoder = UserSideEncoder(self.space)
        self.tracker = (
            UserTracker(config.w) if config.division == "population" else None
        )
        self._report_phase: dict[int, int] = {}

    def round(
        self,
        t: int,
        participants: Sequence[tuple],
        newly_entered: Sequence[int],
        quitted: Sequence[int],
        rate: Optional[float],
        eps_used: float,
    ) -> tuple[np.ndarray, list[int], float]:
        """One timestamp on this shard's partition.

        ``rate`` is the globally proposed sampling fraction ``p_t``
        (population division, ``None`` for the user-driven "random"
        strategy); ``eps_used`` the per-report budget.  Returns the raw
        per-position one-counts, the reporter ids, and the seconds spent
        in the perturbation itself (the user-side cost, excluding
        selection bookkeeping, so timings stay comparable with the
        unsharded engine).

        Selection reuses :func:`~repro.core.online
        .sample_population_reporters` with stochastic rounding: each
        partition samples ``rate``·eligible in *expectation*, so the total
        reporter volume is unbiased for any shard count (deterministic
        per-shard rounding would collapse to zero when partitions are
        small).
        """
        cfg = self.config
        if cfg.division == "population":
            chosen = sample_population_reporters(
                self.tracker, self._report_phase, self.rng, cfg,
                t, participants, newly_entered, rate,
                stochastic_round=True,
            )
        else:
            chosen = list(participants) if eps_used > 0.0 else []

        uids = [uid for uid, _s in chosen]
        user_seconds = 0.0
        if chosen:
            oracle = OptimizedUnaryEncoding(
                self.space.size, eps_used, rng=self.rng, mode=cfg.oracle_mode
            )
            states = [s for _uid, s in chosen]
            encoded = self.encoder.encode(states)
            tic = time.perf_counter()
            ones = oracle.simulate_ones(encoded)
            user_seconds = time.perf_counter() - tic
        else:
            ones = np.zeros(self.space.size)
        if self.tracker is not None:
            self.tracker.mark_reported(uids, t)
            self.tracker.mark_quitted(quitted)
        return ones, uids, user_seconds


def _shard_worker(conn, grid: Grid, config, seed: int) -> None:
    """Process-executor loop: build the shard, answer rounds until EOF.

    Exceptions are shipped back as ``("err", traceback)`` so the parent can
    re-raise with shard context instead of dying on a bare ``EOFError``.
    """
    import traceback

    shard = CollectionShard(grid, config, seed)
    while True:
        msg = conn.recv()
        if msg is None:
            conn.close()
            return
        try:
            conn.send(("ok", shard.round(*msg)))
        except Exception:
            conn.send(("err", traceback.format_exc()))


class ShardedOnlineRetraSyn(OnlineRetraSyn):
    """Drop-in :class:`OnlineRetraSyn` with a hash-partitioned collector.

    Exposes the same ``process_timestep`` / ``live_snapshot`` / ``result``
    surface; only the selection + collection phases differ.  ``n_shards``
    and ``executor`` default to the values in ``config`` (``n_shards``,
    ``shard_executor``) so :class:`~repro.core.retrasyn.RetraSyn` can route
    through this engine on configuration alone.
    """

    def __init__(
        self,
        grid: Grid,
        config,
        lam: float,
        n_shards: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> None:
        super().__init__(grid, config, lam)
        self.n_shards = int(
            n_shards if n_shards is not None else getattr(config, "n_shards", 1)
        )
        self.executor = (
            executor
            if executor is not None
            else getattr(config, "shard_executor", "serial")
        )
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.executor not in ("serial", "process"):
            raise ConfigurationError(
                f"shard executor must be 'serial' or 'process', got {self.executor!r}"
            )
        # The parent never tracks users itself — shards own their partitions.
        self._tracker = None
        seeds = [
            int(s) for s in self.rng.integers(0, 2**63 - 1, size=self.n_shards)
        ]
        self._procs: list = []
        self._pipes: list = []
        if self.executor == "process":
            ctx = mp.get_context()
            for seed in seeds:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, grid, config, seed),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._procs.append(proc)
            self._shards = None
        else:
            self._shards = [CollectionShard(grid, config, s) for s in seeds]

    # ------------------------------------------------------------------ #
    # the sharded collection round
    # ------------------------------------------------------------------ #
    def _collect_round(self, t, participants, newly_entered, quitted):
        cfg = self.config
        K = self.n_shards

        # Globally proposed rate / budget, from the merged feedback context.
        rate: Optional[float] = None
        if cfg.division == "population":
            eps_t = cfg.epsilon
            if cfg.allocator != "random":
                rate = self._pop_alloc.propose(t, self.context)
        else:
            eps_t = self._budget_alloc.propose(t, self.context)
            if eps_t < _MIN_EPSILON:
                eps_t = 0.0
            self._budget_alloc.commit(eps_t)

        # Hash-partition this timestamp's traffic.
        parts: list[list] = [[] for _ in range(K)]
        entered: list[list[int]] = [[] for _ in range(K)]
        quits: list[list[int]] = [[] for _ in range(K)]
        for uid, s in participants:
            parts[shard_of(uid, K)].append((uid, s))
        for uid in newly_entered:
            entered[shard_of(uid, K)].append(uid)
        for uid in quitted:
            quits[shard_of(uid, K)].append(uid)

        rounds = [
            (t, parts[k], entered[k], quits[k], rate, eps_t) for k in range(K)
        ]
        if self.executor == "process":
            for pipe, msg in zip(self._pipes, rounds):
                pipe.send(msg)
            outs = []
            for k, pipe in enumerate(self._pipes):
                status, payload = pipe.recv()
                if status == "err":
                    raise RuntimeError(
                        f"collection shard {k} failed at t={t}:\n{payload}"
                    )
                outs.append(payload)
        else:
            outs = [shard.round(*msg) for shard, msg in zip(self._shards, rounds)]

        # Merge: one vector add per shard, one debias for the union.  Only
        # the perturbation seconds count as user-side cost — the unsharded
        # engine does not time selection either, keeping Table V comparable.
        ones = np.zeros(self.space.size)
        reporter_uids: list[int] = []
        for shard_ones, uids, user_seconds in outs:
            ones += shard_ones
            reporter_uids.extend(uids)
            self.timings["user_side"] += user_seconds
        n_reporters = len(reporter_uids)
        eps_used = eps_t

        collected = None
        if n_reporters:
            tic = time.perf_counter()
            oracle = OptimizedUnaryEncoding(
                self.space.size, eps_used, rng=self.rng, mode=cfg.oracle_mode
            )
            collected = oracle.debias(ones, n_reporters) / n_reporters
            self.timings["model_construction"] += time.perf_counter() - tic
            if self.accountant is not None:
                self.accountant.spend_many(reporter_uids, t, eps_used)
            self.context.record_collection(collected)
        return collected, n_reporters, eps_used

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down worker processes (no-op for the serial executor)."""
        for pipe in self._pipes:
            try:
                pipe.send(None)
                pipe.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._pipes, self._procs = [], []

    def __enter__(self) -> "ShardedOnlineRetraSyn":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
