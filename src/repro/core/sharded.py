"""Sharded collection engine: hash-partitioned parallel curator.

:class:`ShardedOnlineRetraSyn` scales the *collection* half of the pipeline
the way :class:`~repro.core.fast_synthesis.VectorizedSynthesizer` scaled the
synthesis half.  Users are hash-partitioned across ``K`` independent
collection shards, each owning its own :class:`~repro.stream.user_tracker
.UserTracker` and per-round frequency oracle.  Every timestamp each shard
runs selection + perturbation on its partition only and returns raw
per-position one-counts; the parent merges them with a single vector add and
debiases once **before** mobility-model construction, so the model, DMU and
synthesizer remain global and unchanged.

The shard wire format is columnar (:class:`~repro.stream.reports
.ReportBatch`): partitions travel as numpy index arrays — user ids, encoded
state indices, kind codes — never as per-user ``TransitionState`` objects.
For the process executor this is the difference between pickling three flat
arrays per round and pickling tens of thousands of dataclass instances.

Why this is statistically equivalent to the unsharded curator:

* the hash partition is a fixed disjoint cover of the user population, so
  each user lives in exactly one shard and can never be sampled twice in a
  window — w-event accounting is preserved per user, not per shard; the
  parent's (columnar by default) privacy accountant receives the merged
  reporter-id array once per round, never per shard;
* every shard perturbs with the same ``(p, q)`` OUE parameters, and the sum
  of independent per-shard one-count vectors has exactly the distribution
  of the one-count vector over the union of reporters;
* the sampling rate ``p_t`` (population division) or budget ``ε_t`` (budget
  division) is proposed *globally* from the merged collection feedback, so
  allocation adapts on the same signal as the unsharded engine.

Shard rounds are embarrassingly parallel.  Three executors are provided:

* ``executor="serial"`` — rounds run in-process, one shard after another
  (no IPC overhead; the default and the reference semantics);
* ``executor="process"`` — shards live in a persistent
  :class:`ShardWorkerPool`: one worker process per shard, spawned once and
  reused for every round, holding the shard's tracker and rng across the
  whole stream;
* ``executor="distributed"`` — shards are promoted to services: worker
  processes speaking length-prefixed RSF2 binary frames over local
  sockets (:class:`~repro.core.distributed.ShardSocketPool`), each owning
  a **shard-local privacy accountant** so per-shard spends and strict
  refusals never round-trip through the parent; the parent's
  ``accountant`` becomes a merged read-only
  :class:`~repro.core.distributed.DistributedAccountantView`.

All executors draw shard randomness from the same per-shard seeds, so
they produce identical output streams for a fixed configuration.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.core.online import (
    _MIN_EPSILON,
    OnlineRetraSyn,
    TimestepResult,
    sample_population_reporters_batch,
    support_mask,
)
from repro.exceptions import ConfigurationError, ShardWorkerError
from repro.geo.grid import Grid
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.stream.encoder import UserSideEncoder
from repro.stream.reports import ReportBatch, as_report_batch, shard_of_array
from repro.stream.state_space import TransitionStateSpace
from repro.stream.user_tracker import UserTracker

#: Knuth multiplicative hash, so shard assignment is uncorrelated with any
#: arithmetic structure in the user-id space (parity, contiguous ranges, …).
_HASH_MULT = 2654435761


def shard_of(user_id: int, n_shards: int) -> int:
    """Stable hash partition of a user id into ``[0, n_shards)``.

    The xor-fold mixes the multiplied high bits back into the low bits —
    a bare ``% n_shards`` of the product would preserve arithmetic
    structure (e.g. parity) of the id space.  The vectorized twin is
    :func:`repro.stream.reports.shard_of_array`.
    """
    h = (int(user_id) * _HASH_MULT) & 0xFFFFFFFF
    h ^= h >> 16
    return h % n_shards


def _split_ids(ids: np.ndarray, n_shards: int) -> list[np.ndarray]:
    """Partition an id array by shard, preserving order inside each part."""
    ids = np.asarray(ids, dtype=np.int64)
    if n_shards == 1:
        return [ids]
    sid = shard_of_array(ids, n_shards)
    return [ids[sid == k] for k in range(n_shards)]


class CollectionShard:
    """One partition's tracker + oracle; no model, no synthesis.

    The shard consumes columnar :class:`ReportBatch` partitions whose
    states were encoded upstream (at ingestion or by the batch pipeline's
    stream view), so no per-user encoding happens here.  An encoder is
    kept only for the object-path compatibility wrapper :meth:`round`.
    """

    def __init__(self, grid: Grid, config, seed: int) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.space = TransitionStateSpace(
            grid, include_entering_quitting=config.model_entering_quitting
        )
        self.encoder = UserSideEncoder(self.space)
        self.tracker = (
            UserTracker(config.w) if config.division == "population" else None
        )
        self._report_phase: dict[int, int] = {}

    def round_batch(
        self,
        t: int,
        batch: ReportBatch,
        newly_entered: np.ndarray,
        quitted: np.ndarray,
        rate: Optional[float],
        eps_used: float,
    ) -> tuple[np.ndarray, np.ndarray, float, Optional[np.ndarray]]:
        """One timestamp on this shard's partition (columnar).

        ``rate`` is the globally proposed sampling fraction ``p_t``
        (population division, ``None`` for the user-driven "random"
        strategy); ``eps_used`` the per-report budget.  Returns the raw
        per-position one-counts, the reporter id array, the seconds spent
        in the perturbation itself (the user-side cost, excluding
        selection bookkeeping, so timings stay comparable with the
        unsharded engine), and — when ``config.dmu_prefilter`` is on —
        this round's plausibly-observed support mask.

        Selection uses :func:`~repro.core.online
        .sample_population_reporters_batch` with stochastic rounding: each
        partition samples ``rate``·eligible in *expectation*, so the total
        reporter volume is unbiased for any shard count (deterministic
        per-shard rounding would collapse to zero when partitions are
        small).
        """
        cfg = self.config
        if cfg.division == "population":
            rows = sample_population_reporters_batch(
                self.tracker, self._report_phase, self.rng, cfg,
                t, batch, newly_entered, rate,
                stochastic_round=True,
            )
            chosen = batch.take(rows)
        else:
            chosen = batch if eps_used > 0.0 else ReportBatch.empty()

        user_seconds = 0.0
        support: Optional[np.ndarray] = None
        if len(chosen):
            oracle = OptimizedUnaryEncoding(
                self.space.size, eps_used, rng=self.rng, mode=cfg.oracle_mode
            )
            tic = time.perf_counter()
            ones = oracle.simulate_ones(chosen.state_idx)
            user_seconds = time.perf_counter() - tic
            if cfg.dmu_prefilter:
                support = support_mask(ones, len(chosen), oracle.q)
        else:
            ones = np.zeros(self.space.size)
        if self.tracker is not None:
            self.tracker.mark_reported(chosen.user_ids, t)
            self.tracker.mark_quitted(quitted)
        return ones, chosen.user_ids, user_seconds, support

    def round(
        self,
        t: int,
        participants: Sequence[tuple],
        newly_entered: Sequence[int],
        quitted: Sequence[int],
        rate: Optional[float],
        eps_used: float,
    ) -> tuple[np.ndarray, list[int], float]:
        """Object-path compatibility wrapper around :meth:`round_batch`."""
        batch = self.encoder.encode_batch(participants)
        if not self.config.model_entering_quitting:
            batch = batch.moves_only()
        ones, uids, user_seconds, _support = self.round_batch(
            t, batch,
            np.asarray(newly_entered, dtype=np.int64),
            np.asarray(quitted, dtype=np.int64),
            rate, eps_used,
        )
        return ones, uids.tolist(), user_seconds


def _shard_worker(conn, grid: Grid, config, seed: int) -> None:
    """Process-executor loop: build the shard, answer commands until EOF.

    Commands are ``("round", args)``, ``("get_state", None)`` /
    ``("set_state", shard)`` for checkpoint/resume, and ``None`` to exit.
    Exceptions are shipped back as ``("err", traceback)`` so the parent can
    re-raise with shard context instead of dying on a bare ``EOFError``.
    """
    import traceback

    shard = CollectionShard(grid, config, seed)
    while True:
        msg = conn.recv()
        if msg is None:
            conn.close()
            return
        cmd, payload = msg
        try:
            if cmd == "round":
                conn.send(("ok", shard.round_batch(*payload)))
            elif cmd == "get_state":
                conn.send(("ok", shard))
            elif cmd == "set_state":
                shard = payload
                conn.send(("ok", None))
            else:
                conn.send(("err", f"unknown shard command {cmd!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))


class ShardWorkerPool:
    """Persistent worker processes, one per collection shard.

    Workers are spawned once and reused for every round: shard state
    (tracker, rng, report phases) never crosses the pipe during normal
    operation — only the round's columnar index arrays and the returned
    one-count vectors do.  ``get_states`` / ``set_states`` ship whole
    :class:`CollectionShard` objects for checkpoint/resume.
    """

    def __init__(self, grid: Grid, config, seeds: Sequence[int]) -> None:
        ctx = mp.get_context()
        self._procs: list = []
        self._pipes: list = []
        for seed in seeds:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, grid, config, seed),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    def __len__(self) -> int:
        return len(self._pipes)

    def _dead(self, k: int, command: str) -> ShardWorkerError:
        """Typed error for a worker whose pipe broke mid-``command``."""
        proc = self._procs[k]
        proc.join(timeout=1.0)
        return ShardWorkerError(
            f"collection shard {k} worker died during {command!r} "
            f"(exitcode {proc.exitcode})"
        )

    def _call_all(self, command: str, payloads: Sequence) -> list:
        for k, (pipe, payload) in enumerate(zip(self._pipes, payloads)):
            try:
                pipe.send((command, payload))
            except (BrokenPipeError, OSError) as exc:
                raise self._dead(k, command) from exc
        outs = []
        for k, pipe in enumerate(self._pipes):
            try:
                status, payload = pipe.recv()
            except (EOFError, OSError) as exc:
                raise self._dead(k, command) from exc
            if status == "err":
                raise RuntimeError(
                    f"collection shard {k} failed ({command}):\n{payload}"
                )
            outs.append(payload)
        return outs

    def run_rounds(self, rounds: Sequence[tuple]) -> list:
        """One ``round_batch`` per shard; blocks until all K results land."""
        return self._call_all("round", rounds)

    def get_states(self) -> list:
        return self._call_all("get_state", [None] * len(self._pipes))

    def set_states(self, shards: Sequence) -> None:
        self._call_all("set_state", shards)

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(None)
                pipe.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._pipes, self._procs = [], []


class ShardedOnlineRetraSyn(OnlineRetraSyn):
    """Drop-in :class:`OnlineRetraSyn` with a hash-partitioned collector.

    Exposes the same ``process_timestep`` / ``live_snapshot`` / ``result``
    surface; only the selection + collection phases differ.  ``n_shards``
    and ``executor`` default to the values in ``config`` (``n_shards``,
    ``shard_executor``) so :class:`~repro.core.retrasyn.RetraSyn` can route
    through this engine on configuration alone.
    """

    def __init__(
        self,
        grid: Grid,
        config,
        lam: float,
        n_shards: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> None:
        super().__init__(grid, config, lam)
        self.n_shards = int(
            n_shards if n_shards is not None else getattr(config, "n_shards", 1)
        )
        self.executor = (
            executor
            if executor is not None
            else getattr(config, "shard_executor", "serial")
        )
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.executor not in ("serial", "process", "distributed"):
            raise ConfigurationError(
                f"shard executor must be 'serial', 'process' or "
                f"'distributed', got {self.executor!r}"
            )
        # The parent never tracks users itself — shards own their partitions.
        self._tracker = None
        #: Final per-shard ledger stats, cached by :meth:`close` so the
        #: distributed accountant view stays auditable after shutdown.
        self._final_summaries = None
        seeds = [
            int(s) for s in self.rng.integers(0, 2**63 - 1, size=self.n_shards)
        ]
        if self.executor == "process":
            self._pool: Optional[ShardWorkerPool] = ShardWorkerPool(
                grid, config, seeds
            )
            self._shards = None
        elif self.executor == "distributed":
            from repro.core.distributed import (
                DistributedAccountantView,
                ShardSocketPool,
            )

            self._pool = ShardSocketPool(grid, config, seeds)
            self._shards = None
            # The workers own the ledgers; the parent exposes a merged
            # read-only view so stats()/result()/audits work unchanged.
            if self.accountant is not None:
                self.accountant = DistributedAccountantView(self)
        else:
            self._pool = None
            self._shards = [CollectionShard(grid, config, s) for s in seeds]

    # ------------------------------------------------------------------ #
    # the sharded collection round
    # ------------------------------------------------------------------ #
    def _partition(self, batch: ReportBatch, newly_entered, quitted):
        """Hash-partition one timestamp's traffic: pure array slicing."""
        K = self.n_shards
        return batch.partition(K), _split_ids(newly_entered, K), _split_ids(quitted, K)

    def _propose(self, t, batch: ReportBatch, global_min: Optional[float]):
        """The round's globally proposed ``(rate, ε_t)``.

        Exactly the per-timestamp proposal sequence — including the budget
        allocators' ``commit`` — so the fused paths can replay it upfront
        for schedule-division allocators without changing a single call.
        """
        cfg = self.config
        rate: Optional[float] = None
        if cfg.division == "population":
            eps_t = cfg.epsilon
            if cfg.allocator != "random":
                rate = self._pop_alloc.propose(t, self.context)
        else:
            if self.executor == "distributed" and getattr(
                self._budget_alloc, "consults_users", False
            ):
                remaining = (
                    None if global_min is None else np.asarray([global_min])
                )
                eps_t = self._budget_alloc.propose_for(
                    t, self.context, remaining
                )
            else:
                eps_t = self._propose_budget(t, batch)
            if eps_t < _MIN_EPSILON:
                eps_t = 0.0
            self._budget_alloc.commit(eps_t)
        return rate, eps_t

    def _merge_outs(self, t, outs, eps_t):
        """Merge per-shard round outputs into one debiased collection.

        One vector add per shard, one debias for the union.  Only the
        perturbation seconds count as user-side cost — the unsharded
        engine does not time selection either, keeping Table V comparable.
        """
        cfg = self.config
        ones = np.zeros(self.space.size)
        uid_parts: list[np.ndarray] = []
        for shard_ones, uids, user_seconds, support in outs:
            ones += shard_ones
            uid_parts.append(uids)
            self.timings["user_side"] += user_seconds
            if support is not None:
                self._dmu_candidates |= support
        reporter_uids = np.concatenate(uid_parts) if uid_parts else np.empty(0, np.int64)
        n_reporters = int(reporter_uids.size)
        eps_used = eps_t

        collected = None
        if n_reporters:
            tic = time.perf_counter()
            oracle = OptimizedUnaryEncoding(
                self.space.size, eps_used, rng=self.rng, mode=cfg.oracle_mode
            )
            collected = oracle.debias(ones, n_reporters) / n_reporters
            self.timings["model_construction"] += time.perf_counter() - tic
            # Distributed shards spent their partitions locally already.
            if self.accountant is not None and self.executor != "distributed":
                self.accountant.spend_many(reporter_uids, t, eps_used)
            self.context.record_collection(collected)
        return collected, n_reporters, eps_used

    def _collect_round(self, t, batch: ReportBatch, newly_entered, quitted):
        cfg = self.config
        K = self.n_shards
        distributed = self.executor == "distributed"

        parts, entered, quits = self._partition(batch, newly_entered, quitted)

        # Distributed phase 1: stage the partitions on every shard and,
        # when a per-user allocator needs ledger feedback, collect the
        # global minimum remaining window budget from the shard-local
        # accountants.  ``propose_for`` reduces the whole remaining vector
        # to its minimum, so a min-of-shard-mins is an exact substitute
        # for the parent-ledger query the other executors make.
        global_min: Optional[float] = None
        if distributed:
            want_remaining = (
                cfg.division != "population"
                and getattr(self._budget_alloc, "consults_users", False)
                and getattr(cfg, "track_privacy", True)
            )
            global_min = self._pool.submit(
                t, parts, entered, quits, want_remaining
            )

        # Globally proposed rate / budget, from the merged feedback context.
        rate, eps_t = self._propose(t, batch, global_min)

        if distributed:
            # Phase 2: run the staged round everywhere; workers spend
            # their reporters' budget locally before replying.
            outs = self._pool.advance(t, rate, eps_t)
        elif self._pool is not None:
            rounds = [
                (t, parts[k], entered[k], quits[k], rate, eps_t)
                for k in range(K)
            ]
            outs = self._pool.run_rounds(rounds)
        else:
            outs = [
                shard.round_batch(t, parts[k], entered[k], quits[k], rate, eps_t)
                for k, shard in enumerate(self._shards)
            ]

        return self._merge_outs(t, outs, eps_t)

    # ------------------------------------------------------------------ #
    # the pipelined multi-timestamp round
    # ------------------------------------------------------------------ #
    def _fusion_mode(self) -> Optional[str]:
        """How far the distributed round protocol can be fused.

        ``"full"``   — one ``shard-submit-many`` *and* one
                       ``shard-advance-many`` per group: every per-t rate/ε
                       is computable from the schedule alone (population
                       uniform/sample/random; budget uniform/sample, whose
                       proposals read only the allocator's own commit
                       ledger, replayed here in the exact per-t order).
        ``"submit"`` — fused submit, per-t advance: adaptive allocators
                       read the collection feedback context, so each
                       round's proposal must wait for the previous merge.
        ``None``     — per-t submit *and* advance: ``adaptive-user``
                       proposals need each round's cross-shard minimum
                       remaining budget computed after the previous
                       round's spends.
        """
        cfg = self.config
        if self.executor != "distributed":
            return None
        if cfg.division == "population":
            if cfg.allocator in ("uniform", "sample", "random"):
                return "full"
            return "submit"
        if getattr(self._budget_alloc, "consults_users", False):
            return None
        if cfg.allocator in ("uniform", "sample"):
            return "full"
        return "submit"

    def _launch_synthesis(self, t, n_active, n_rep, eps_used, n_sig):
        """Start round ``t``'s synthesis on a background thread.

        Safe to overlap with the *next* round's collection because the
        sharded collector makes no parent-rng draws (shard randomness
        lives in the shard objects / workers) and never touches the model
        or the trajectory store.  The vectorized engine's compiled model
        is refreshed here, on the caller's thread, so the in-flight step
        reads only the front buffer while the caller's next merge stays
        off the model until :meth:`_join_synthesis`.
        """
        compile_fn = getattr(self.synthesizer, "_compile", None)
        if compile_fn is not None:
            compile_fn()
        holder: dict = {}

        def run() -> None:
            try:
                self._synthesize(t, n_active)
                holder["n_live"] = self.synthesizer.n_live
            except BaseException as exc:  # propagated at join
                holder["exc"] = exc

        thread = threading.Thread(
            target=run, name=f"retrasyn-synthesis-t{t}", daemon=True
        )
        thread.start()
        return thread, holder, t, n_rep, eps_used, n_sig

    def _join_synthesis(self, pending) -> TimestepResult:
        thread, holder, t, n_rep, eps_used, n_sig = pending
        thread.join()
        if "exc" in holder:
            raise holder["exc"]
        return TimestepResult(
            t=t,
            n_reporters=n_rep,
            epsilon_used=eps_used if n_rep else 0.0,
            n_significant=n_sig,
            n_live_synthetic=holder.get("n_live", self.synthesizer.n_live),
        )

    def process_timesteps(self, items) -> list[TimestepResult]:
        """Pipelined group round: fused shard frames + synthesis overlap.

        Bit-identical to running :meth:`process_timestep` per item: rounds
        advance in timestamp order on the same shard states, the proposal
        sequence is replayed exactly (see :meth:`_fusion_mode`), and the
        parent rng is only ever consumed by synthesis, which runs one
        round at a time — merely overlapped with the rng-free collection
        of the next round.
        """
        items = list(items)
        if len(items) <= 1:
            return super().process_timesteps(items)
        cfg = self.config

        prepared = []
        expect = self._last_t
        for t, participants, entered, quitted, n_active in items:
            t = int(t)
            if expect is not None and t != expect + 1:
                raise ConfigurationError(
                    f"timestamps must be consecutive: got {t} after {expect}"
                )
            expect = t
            batch = as_report_batch(self.space, participants)
            if not cfg.model_entering_quitting:
                batch = batch.moves_only()
            prepared.append(
                (
                    t,
                    batch,
                    np.asarray(entered, dtype=np.int64),
                    np.asarray(quitted, dtype=np.int64),
                    int(n_active),
                )
            )

        mode = self._fusion_mode()
        results: list[TimestepResult] = []
        pending = None
        try:
            if mode is None:
                # Per-t protocol (serial/process executors, or distributed
                # adaptive-user): only the synthesis overlap applies.
                for t, batch, entered, quitted, n_active in prepared:
                    self._last_t = t
                    collected, n_rep, eps_used = self._collect_round(
                        t, batch, entered, quitted
                    )
                    pending = self._finish_round(
                        results, pending, t, collected, n_rep, eps_used,
                        n_active,
                    )
            else:
                groups = [
                    (t, *self._partition(batch, entered, quitted))
                    for t, batch, entered, quitted, _n in prepared
                ]
                self._pool.submit_many(groups)
                if mode == "full":
                    proposals = [
                        self._propose(t, batch, None)
                        for t, batch, _e, _q, _n in prepared
                    ]
                    outs_by_t = self._pool.advance_many(
                        [t for t, *_ in prepared],
                        [rate for rate, _eps in proposals],
                        [eps for _rate, eps in proposals],
                    )
                    for i, (t, batch, _e, _q, n_active) in enumerate(prepared):
                        self._last_t = t
                        collected, n_rep, eps_used = self._merge_outs(
                            t, outs_by_t[i], proposals[i][1]
                        )
                        pending = self._finish_round(
                            results, pending, t, collected, n_rep, eps_used,
                            n_active,
                        )
                else:  # fused submit, per-t advance
                    for t, batch, _e, _q, n_active in prepared:
                        self._last_t = t
                        rate, eps_t = self._propose(t, batch, None)
                        outs = self._pool.advance(t, rate, eps_t)
                        collected, n_rep, eps_used = self._merge_outs(
                            t, outs, eps_t
                        )
                        pending = self._finish_round(
                            results, pending, t, collected, n_rep, eps_used,
                            n_active,
                        )
            if pending is not None:
                results.append(self._join_synthesis(pending))
                pending = None
        finally:
            if pending is not None:
                # An earlier phase raised: drain the in-flight synthesis so
                # no background thread outlives the error (its own failure,
                # if any, is secondary).
                try:
                    self._join_synthesis(pending)
                except Exception:
                    pass
        return results

    def _finish_round(
        self, results, pending, t, collected, n_rep, eps_used, n_active
    ):
        """Join the in-flight synthesis, update the model, launch round t's.

        The model (and the allocation context's significant-ratio signal)
        is only ever mutated here, after the previous round's synthesis
        has fully drained — the double-buffer handoff that keeps the
        overlap bit-identical.
        """
        self.reporters_per_timestamp.append(n_rep)
        if pending is not None:
            results.append(self._join_synthesis(pending))
        n_sig = self._update_model(collected, eps_used, n_rep)
        self.significant_per_timestamp.append(n_sig)
        return self._launch_synthesis(t, n_active, n_rep, eps_used, n_sig)
    def checkpoint_state(self) -> dict:
        """Base curator state plus each shard's full state.

        For the process executor the shards live in worker memory, so they
        are fetched over the pipes; the pool itself (pipes, processes,
        sockets) is never part of a checkpoint.  Distributed workers
        additionally serialize their shard-local accountants through the
        coordinator — each ``_shards`` entry is a ``(shard, accountant)``
        pair — so a distributed checkpoint restores into a distributed
        engine (the session spec carried by the v3 format guarantees the
        executor matches).
        """
        state = {k: v for k, v in self.__dict__.items() if k != "_pool"}
        if self._pool is not None:
            state["_shards"] = self._pool.get_states()
        return state

    def restore_state(self, state: dict) -> None:
        state = dict(state)
        shards = state.pop("_shards")
        state.pop("_pool", None)
        self.__dict__.update(state)
        if self._pool is not None:
            self._pool.set_states(shards)
            self._shards = None
        else:
            self._shards = shards
        # The unpickled accountant view is frozen (no engine behind it);
        # re-bind it so it queries the freshly restored worker ledgers.
        if self.executor == "distributed" and self.accountant is not None:
            self.accountant._engine = self

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down worker processes and the synthesizer's thread slabs."""
        if self._pool is not None:
            # Freeze the shard-local ledgers' final summaries so the
            # distributed accountant view answers audits after shutdown.
            if (
                self.executor == "distributed"
                and getattr(self._pool, "alive", False)
                and getattr(self.config, "track_privacy", True)
            ):
                try:
                    self._final_summaries = self._pool.stats()
                except Exception:  # pragma: no cover - dead workers
                    pass
            self._pool.close()
        closer = getattr(self.synthesizer, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ShardedOnlineRetraSyn":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
