"""Columnar (struct-of-arrays) storage for synthetic trajectory streams.

Both synthesis engines used to keep one Python ``CellTrajectory`` object per
synthetic stream (the object engine in ``_live`` / ``_finished`` lists, the
vectorized engine in private padded arrays).  At production populations the
object churn — allocation, append, list reshuffling, and re-materialisation
for every metrics pass — dominates the per-timestamp synthesis cost that
Table V of the paper identifies as the bottleneck.

:class:`TrajectoryStore` replaces both with one append-only columnar layout:

* ``_cells`` — a flat cell buffer, laid out as ``(capacity, horizon)`` rows
  (one row stride per stream) so per-timestamp appends are single fancy
  writes;
* ``_birth`` / ``_length`` / ``_alive`` — per-stream entering timestamp,
  current length and liveness, all dense parallel arrays indexed by the
  stream's creation-order row id.

Growth is by doubling in both dimensions, so appends are amortised O(1).
``CellTrajectory`` objects are *views*: they are materialised only when a
caller crosses an API boundary that genuinely needs objects
(:meth:`view` / :meth:`views`); the hot path and the evaluation plane use
the array accessors (:meth:`cells_at`, :meth:`lengths`,
:meth:`counts_by_cell`, :meth:`counts_matrix`) and never touch objects.

The store is plain numpy state, so it pickles into curator checkpoints
unchanged and is shared safely by the thread-sharded generation path
(workers read disjoint row slabs; all writes happen in the merge step).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DatasetError
from repro.geo.trajectory import CellTrajectory

#: Padding value for never-written cells of the flat buffer.
ABSENT = -1


class TrajectoryStore:
    """Append-only columnar trajectory database keyed by creation order.

    Parameters
    ----------
    initial_capacity:
        Number of stream rows allocated up front (grown by doubling).
    initial_horizon:
        Cells-per-stream allocated up front (grown by doubling).
    """

    def __init__(self, initial_capacity: int = 1024, initial_horizon: int = 64) -> None:
        if initial_capacity < 1 or initial_horizon < 1:
            raise ConfigurationError(
                f"store capacities must be >= 1, got "
                f"({initial_capacity}, {initial_horizon})"
            )
        self._capacity = int(initial_capacity)
        self._horizon = int(initial_horizon)
        self._cells = np.full(
            (self._capacity, self._horizon), ABSENT, dtype=np.int32
        )
        self._birth = np.zeros(self._capacity, dtype=np.int64)
        self._length = np.zeros(self._capacity, dtype=np.int64)
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._n = 0

    # ------------------------------------------------------------------ #
    # sizes / row sets
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def n_total(self) -> int:
        """Streams ever created."""
        return self._n

    @property
    def n_live(self) -> int:
        return int(self._alive[: self._n].sum())

    def live_rows(self) -> np.ndarray:
        """Row ids of live streams, in creation order."""
        return np.flatnonzero(self._alive[: self._n])

    def alive_mask(self) -> np.ndarray:
        """Boolean liveness over all created rows (read-only copy)."""
        return self._alive[: self._n].copy()

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def _grow_rows(self, need_rows: int) -> None:
        if need_rows <= self._capacity:
            return
        new_cap = max(need_rows, 2 * self._capacity)
        cells = np.full((new_cap, self._horizon), ABSENT, dtype=np.int32)
        cells[: self._capacity] = self._cells
        self._cells = cells
        for name in ("_birth", "_length"):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=arr.dtype)
            grown[: self._capacity] = arr
            setattr(self, name, grown)
        alive = np.zeros(new_cap, dtype=bool)
        alive[: self._capacity] = self._alive
        self._alive = alive
        self._capacity = new_cap

    def _grow_horizon(self, need_cols: int) -> None:
        if need_cols <= self._horizon:
            return
        new_h = max(need_cols, 2 * self._horizon)
        cells = np.full((self._capacity, new_h), ABSENT, dtype=np.int32)
        cells[:, : self._horizon] = self._cells
        self._cells = cells
        self._horizon = new_h

    # ------------------------------------------------------------------ #
    # mutation (the synthesizer hot path)
    # ------------------------------------------------------------------ #
    def append_streams(self, t: int, cells) -> np.ndarray:
        """Create one fresh live stream per entry of ``cells``; return rows."""
        cells = np.atleast_1d(np.asarray(cells, dtype=np.int64))
        count = cells.size
        if count == 0:
            return np.empty(0, dtype=np.int64)
        self._grow_rows(self._n + count)
        rows = np.arange(self._n, self._n + count, dtype=np.int64)
        self._cells[rows, 0] = cells
        self._birth[rows] = int(t)
        self._length[rows] = 1
        self._alive[rows] = True
        self._n += count
        return rows

    def append_cells(self, rows: np.ndarray, cells: np.ndarray) -> None:
        """Extend each of ``rows`` by one cell (its next timestamp)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        lengths = self._length[rows]
        self._grow_horizon(int(lengths.max()) + 1)
        self._cells[rows, lengths] = cells
        self._length[rows] = lengths + 1

    def pop_last(self, rows: np.ndarray) -> None:
        """Withdraw the most recent cell of each row (length stays >= 1)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        if (self._length[rows] <= 1).any():
            raise DatasetError("cannot pop the only cell of a stream")
        self._cells[rows, self._length[rows] - 1] = ABSENT
        self._length[rows] -= 1

    def kill(self, rows: np.ndarray) -> None:
        """Terminate the given streams (idempotent)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size:
            self._alive[rows] = False

    # ------------------------------------------------------------------ #
    # per-row array accessors
    # ------------------------------------------------------------------ #
    def last_cells(self, rows: np.ndarray) -> np.ndarray:
        """Current (latest) cell of each requested row."""
        rows = np.asarray(rows, dtype=np.int64)
        return self._cells[rows, self._length[rows] - 1].astype(np.int64)

    def lengths_of(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        return self._length[rows].copy()

    def births_of(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        return self._birth[rows].copy()

    def flat_cells(self, rows) -> np.ndarray:
        """The requested rows' cells concatenated in row order.

        The wire format of result messages (and the dataset npz layout):
        one masked gather over the padded cell buffer, no per-stream
        object or list construction.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        lengths = self._length[rows]
        width = int(lengths.max())
        block = self._cells[rows][:, :width]
        mask = np.arange(width)[None, :] < lengths[:, None]
        return block[mask].astype(np.int64)

    # ------------------------------------------------------------------ #
    # whole-store array accessors (the evaluation plane)
    # ------------------------------------------------------------------ #
    def lengths(self) -> np.ndarray:
        """Length of every stream ever created, in creation order."""
        return self._length[: self._n].copy()

    def cells_at(self, t: int) -> np.ndarray:
        """Cells of every stream (live or finished) active at ``t``.

        Row order is creation order, matching :meth:`all views <views>`.
        """
        t = int(t)
        birth = self._birth[: self._n]
        active = (birth <= t) & (t < birth + self._length[: self._n])
        rows = np.flatnonzero(active)
        return self._cells[rows, t - birth[rows]].astype(np.int64)

    def counts_by_cell(self, t: int, n_cells: int) -> np.ndarray:
        """Histogram of :meth:`cells_at` over ``[0, n_cells)``."""
        return np.bincount(self.cells_at(t), minlength=int(n_cells))

    def counts_matrix(self, n_timestamps: int, n_cells: int) -> np.ndarray:
        """``(n_timestamps, n_cells)`` point-count matrix over all streams.

        Vectorized twin of ``StreamDataset.cell_counts_matrix``'s
        per-trajectory loop: one masked gather over the flat cell buffer
        plus a single ``bincount``.  Points outside ``[0, n_timestamps)``
        are clipped, matching the object implementation.
        """
        n_timestamps = int(n_timestamps)
        n_cells = int(n_cells)
        n = self._n
        if n == 0 or n_timestamps == 0:
            return np.zeros((n_timestamps, n_cells), dtype=np.int64)
        width = int(self._length[:n].max(initial=0))
        if width == 0:
            return np.zeros((n_timestamps, n_cells), dtype=np.int64)
        col = np.arange(width, dtype=np.int64)
        ts = self._birth[:n, None] + col[None, :]
        valid = (col[None, :] < self._length[:n, None]) & (ts >= 0) & (
            ts < n_timestamps
        )
        flat = ts[valid] * n_cells + self._cells[:n, :width][valid]
        counts = np.bincount(flat, minlength=n_timestamps * n_cells)
        return counts.reshape(n_timestamps, n_cells).astype(np.int64)

    # ------------------------------------------------------------------ #
    # object views (API boundaries only)
    # ------------------------------------------------------------------ #
    def view(self, row: int) -> CellTrajectory:
        """Materialise one stream as a :class:`CellTrajectory`.

        ``user_id`` is the creation-order row id; ``terminated`` mirrors
        the store's liveness bit.  The view owns its cell list — mutating
        it does not write back into the store.
        """
        row = int(row)
        if not 0 <= row < self._n:
            raise DatasetError(f"stream row {row} outside [0, {self._n})")
        traj = CellTrajectory(
            int(self._birth[row]),
            self._cells[row, : self._length[row]].tolist(),
            user_id=row,
        )
        traj.terminated = not bool(self._alive[row])
        return traj

    def views(self, rows) -> list[CellTrajectory]:
        return [self.view(int(r)) for r in rows]

    def live_views(self) -> list[CellTrajectory]:
        return self.views(self.live_rows())

    def all_views(self) -> list[CellTrajectory]:
        """Every stream ever created, in creation order."""
        return self.views(range(self._n))


class StoreTrajectories:
    """A lazy, read-only trajectory sequence backed by a :class:`TrajectoryStore`.

    Looks like the ``list[CellTrajectory]`` a
    :class:`~repro.stream.stream.StreamDataset` holds, but materialises a
    :class:`CellTrajectory` view only when a caller actually indexes or
    iterates — so the batch-pipeline boundary
    (``OnlineRetraSyn.synthetic_dataset``) hands evaluation a dataset
    without building one object per synthetic stream up front.  Count-based
    metrics (primed via ``StreamDataset.prime_cell_counts``) never touch
    objects at all; object-consuming metrics pay only for what they read,
    and materialised views are cached for reuse.

    ``rows`` fixes both the sequence order and each view's ``user_id``
    (the store row id), so engines can preserve their historical trajectory
    ordering (e.g. finished-then-live for the object synthesizer).
    """

    def __init__(self, store: TrajectoryStore, rows) -> None:
        self._store = store
        self._rows = np.asarray(rows, dtype=np.int64)
        if self._rows.size != np.unique(self._rows).size:
            raise DatasetError("duplicate store rows in trajectory sequence")
        self._cache: dict[int, CellTrajectory] = {}

    # ------------------------------------------------------------------ #
    # sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._rows.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(index)
        if i not in self._cache:
            self._cache[i] = self._store.view(int(self._rows[i]))
        return self._cache[i]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    # ------------------------------------------------------------------ #
    # array-side accessors (no object materialisation)
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> TrajectoryStore:
        return self._store

    @property
    def rows(self) -> np.ndarray:
        return self._rows

    def user_ids(self) -> list[int]:
        """The views' user ids (= store row ids), without materialising."""
        return self._rows.tolist()

    def index_of_user(self, user_id: int) -> int:
        """Sequence position of the stream with ``user_id`` (a row id)."""
        hits = np.flatnonzero(self._rows == int(user_id))
        if hits.size == 0:
            raise DatasetError(f"unknown user_id {user_id}")
        return int(hits[0])

    def horizon(self) -> int:
        """``max(end_time) + 2`` over the sequence — the stream horizon
        including each stream's quit-report timestamp (matches
        ``StreamDataset``'s derivation from object lists)."""
        if self._rows.size == 0:
            return 0
        ends = self._store.births_of(self._rows) + self._store.lengths_of(
            self._rows
        )
        return int(ends.max()) + 1
