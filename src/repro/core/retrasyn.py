"""The end-to-end RetraSyn pipeline (paper Algorithm 1).

One :class:`RetraSyn` instance processes a full trajectory stream::

    run = RetraSyn(RetraSynConfig(epsilon=1.0, w=20)).run(dataset)
    run.synthetic        # a StreamDataset of synthetic trajectories
    run.accountant       # verified w-event LDP ledger
    run.timings          # per-component wall-clock totals (Table V)

Both division styles are implemented:

* **population division** (``RetraSyn_p``) — Algorithm 1 verbatim: a
  ``p_t``-fraction of the dynamic active-user set reports with the full ε
  and is rested for ``w`` timestamps (recycled at ``t + w``);
* **budget division** (``RetraSyn_b``) — every participating user reports at
  every collection timestamp with a small ``ε_t`` chosen so any window of
  ``w`` timestamps sums to at most ε.

Quitting users report their quit transition at the timestamp immediately
after their final location (the paper's Section V-A inserts quitting events
exactly there when splitting gapped traces) and are marked *quitted*
afterwards, so the quitting distribution Q is learnable while each user
still reports at most once per window under population division.

The batch pipeline drives :class:`~repro.core.online.OnlineRetraSyn`
timestamp by timestamp, so the streaming deployment path and the
experiment path share one implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.geo.trajectory import average_length
from repro.ldp.accountant import ColumnarPrivacyAccountant, PrivacyAccountant
from repro.rng import RngLike
from repro.stream.stream import StreamDataset


@dataclass
class RetraSynConfig:
    """Flat compatibility façade over the layered session specs.

    All tunables of the pipeline; defaults follow Table II / Section V-A.
    The canonical, layered configuration model lives in
    :mod:`repro.api.specs` (``PrivacySpec`` / ``EngineSpec`` /
    ``ShardingSpec`` composed into ``SessionSpec``); this dataclass keeps
    the historical flat keyword surface, and every validation rule is
    enforced by lifting into a :class:`~repro.api.specs.SessionSpec` at
    construction time — so the two surfaces cannot disagree.
    """

    epsilon: float = 1.0
    w: int = 20
    division: str = "population"  # "population" (RetraSyn_p) | "budget" (RetraSyn_b)
    allocator: str = "adaptive"  # "adaptive(-user)" | "uniform" | "sample" | "random"
    update_strategy: str = "dmu"  # "dmu" | "all"  ("all" = AllUpdate variant)
    model_entering_quitting: bool = True  # False = NoEQ variant
    lam: Optional[float] = None  # λ of Eq. 8; None => dataset average length
    alpha: float = 8.0
    kappa: int = 5
    p_max: float = 0.6
    oracle_mode: str = "fast"  # "fast" | "exact" (batched) | "exact-loop"
    engine: str = "object"  # "object" | "vectorized" synthesis engine
    compile_mode: str = "incremental"  # "incremental" | "full" | "full-loop" ref
    synthesis_shards: int = 1  # slabs for parallel vectorized generation
    synthesis_executor: str = "thread"  # "thread" | "process" slab execution
    n_shards: int = 1  # >1 routes collection through ShardedOnlineRetraSyn
    shard_executor: str = "serial"  # "serial" | "process" | "distributed"
    shard_round_timeout: float = 60.0  # distributed recv deadline (0 = none)
    round_batch: int = 1  # timestamps coalesced per shard round (pipelining)
    dmu_prefilter: bool = False  # shard-local never-observed DMU prefilter
    track_privacy: bool = True
    accountant_mode: str = "columnar"  # "columnar" ledger | "object" reference
    seed: RngLike = None

    def __post_init__(self) -> None:
        # Validation lives in the layered spec model: lifting raises
        # ConfigurationError for any bad field or combination.
        self.to_spec()

    def to_spec(self):
        """Lift to the canonical :class:`~repro.api.specs.SessionSpec`."""
        from repro.api.specs import SessionSpec

        return SessionSpec.from_config(self)

    @property
    def label(self) -> str:
        """Human-readable method name in the paper's notation."""
        suffix = "p" if self.division == "population" else "b"
        if self.update_strategy == "all":
            return f"AllUpdate_{suffix}"
        if not self.model_entering_quitting:
            return f"NoEQ_{suffix}"
        return f"RetraSyn_{suffix}"


@dataclass
class SynthesisRun:
    """Everything produced by one pipeline execution."""

    synthetic: StreamDataset
    config: RetraSynConfig
    accountant: Optional["PrivacyAccountant | ColumnarPrivacyAccountant"]
    timings: dict[str, float] = field(default_factory=dict)
    reporters_per_timestamp: list[int] = field(default_factory=list)
    significant_per_timestamp: list[int] = field(default_factory=list)
    total_runtime: float = 0.0

    @property
    def n_timestamps(self) -> int:
        return self.synthetic.n_timestamps

    def avg_time_per_timestamp(self) -> dict[str, float]:
        """Per-timestamp component averages, the shape of Table V."""
        n = max(1, self.n_timestamps)
        out = {k: v / n for k, v in self.timings.items()}
        out["total"] = self.total_runtime / n
        return out


class RetraSyn:
    """Locally differentially private real-time trajectory synthesizer."""

    def __init__(self, config: Optional[RetraSynConfig] = None) -> None:
        self.config = config or RetraSynConfig()

    def run(self, dataset: StreamDataset) -> SynthesisRun:
        """Process the full stream and return the synthetic database."""
        from repro.core.online import OnlineRetraSyn
        from repro.core.sharded import ShardedOnlineRetraSyn

        from repro.stream.reports import ColumnarStreamView

        cfg = self.config
        lam = (
            cfg.lam
            if cfg.lam is not None
            else max(1.0, average_length(dataset.trajectories))
        )
        if cfg.n_shards > 1 or cfg.shard_executor == "distributed":
            curator = ShardedOnlineRetraSyn(dataset.grid, cfg, lam=lam)
        else:
            curator = OnlineRetraSyn(dataset.grid, cfg, lam=lam)

        # The batch pipeline feeds the curator columnar ReportBatches: the
        # per-timestamp views are materialised once as index arrays instead
        # of per-user TransitionState objects every round.  Row order
        # matches participants_at, so this is bit-identical to the object
        # path under a fixed seed.
        view = ColumnarStreamView(dataset, curator.space)
        try:
            start = time.perf_counter()
            depth = max(1, int(cfg.round_batch))
            for lo in range(0, dataset.n_timestamps, depth):
                group = [
                    (
                        t,
                        view.batch_at(t),
                        view.newly_entered_at(t),
                        view.quitted_at(t),
                        view.n_active_at(t),
                    )
                    for t in range(lo, min(lo + depth, dataset.n_timestamps))
                ]
                curator.process_timesteps(group)
            total_runtime = time.perf_counter() - start
        finally:
            if isinstance(curator, ShardedOnlineRetraSyn):
                curator.close()

        return curator.result(
            dataset.n_timestamps,
            name=f"{cfg.label}({dataset.name})",
            total_runtime=total_runtime,
        )
