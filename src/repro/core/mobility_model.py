"""Global mobility model (paper Section III-B, Eq. 6).

The model stores one estimated frequency per transition state.  From these it
derives, on demand:

* the **movement distribution** out of each cell, with the quit mass folded
  into the denominator::

      Pr(m_ij)        = f_ij / (Σ_{x ∈ N_ci} f_ix + f_iQ)
      Pr(quit | c_i)  = f_iQ / (Σ_{x ∈ N_ci} f_ix + f_iQ)

* the **entering distribution** ``Pr(e_i) = f_Ei / Σ f_Ex`` and the
  **quitting distribution** ``Pr(q_j) = f_jQ / Σ f_xQ``.

Frequencies are estimates from a debiased frequency oracle, so they may be
negative; all derivations clip at zero first (post-processing is free,
Theorem 2).  When a row carries no mass the model falls back to the uniform
distribution over that row's legal destinations, which keeps synthesis total.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stream.state_space import TransitionStateSpace

#: How many version bumps of dirty-row provenance are retained.  A compiled
#: model that falls further behind than this simply rebuilds in full; DMU
#: recompiles every round, so in practice the log holds one entry.
_DIRTY_LOG_LIMIT = 64


class GlobalMobilityModel:
    """Frequency store + distribution derivations over a state space."""

    def __init__(self, space: TransitionStateSpace) -> None:
        self.space = space
        self._freqs = np.zeros(space.size, dtype=float)
        self._version = 0
        self._cache: dict = {}
        # (version, dirty-origin array | None) per bump; None = "all rows".
        self._dirty_log: deque[tuple[int, Optional[np.ndarray]]] = deque(
            maxlen=_DIRTY_LOG_LIMIT
        )

    # ------------------------------------------------------------------ #
    # state access / update
    # ------------------------------------------------------------------ #
    @property
    def frequencies(self) -> np.ndarray:
        """Current estimated frequency of every state (read-only copy)."""
        return self._freqs.copy()

    @property
    def version(self) -> int:
        """Bumped on every update; lets callers invalidate derived caches."""
        return self._version

    def set_all(self, freqs: np.ndarray) -> None:
        """Replace the full frequency vector (AllUpdate variant / init)."""
        freqs = np.asarray(freqs, dtype=float)
        if freqs.shape != self._freqs.shape:
            raise ConfigurationError(
                f"expected {self._freqs.shape} frequencies, got {freqs.shape}"
            )
        self._freqs = freqs.copy()
        self._invalidate()
        self._dirty_log.append((self._version, None))

    def update_selected(self, indices: Sequence[int], freqs: np.ndarray) -> None:
        """Overwrite only the selected states (the DMU path, Section III-C).

        ``freqs`` is the full freshly collected frequency vector; only the
        entries listed in ``indices`` are written into the model.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        freqs = np.asarray(freqs, dtype=float)
        if freqs.shape != self._freqs.shape:
            raise ConfigurationError(
                f"expected {self._freqs.shape} frequencies, got {freqs.shape}"
            )
        self._freqs[idx] = freqs[idx]
        self._invalidate()
        self._dirty_log.append((self._version, self.space.origins_of_states(idx)))

    def dirty_origins_since(self, version: int) -> Optional[np.ndarray]:
        """Origin cells whose Eq. 6 row changed after ``version``.

        Returns the distinct dirty origins accumulated over every bump in
        ``(version, current]``, or ``None`` when provenance is unavailable
        (a full :meth:`set_all` happened, or ``version`` predates the
        bounded journal) — callers must then rebuild everything.  An
        up-to-date ``version`` yields an empty array.
        """
        if version == self._version:
            return np.empty(0, dtype=np.int64)
        if version > self._version:
            return None
        entries = [(v, d) for v, d in self._dirty_log if v > version]
        # Every bump in (version, current] must be covered by the journal.
        if len(entries) != self._version - version:
            return None
        if any(d is None for _, d in entries):
            return None
        return np.unique(np.concatenate([d for _, d in entries]))

    def _invalidate(self) -> None:
        self._version += 1
        self._cache.clear()

    def _clipped(self) -> np.ndarray:
        cached = self._cache.get("clipped")
        if cached is None:
            cached = np.clip(self._freqs, 0.0, None)
            self._cache["clipped"] = cached
        return cached

    def clipped_frequencies(self) -> np.ndarray:
        """The zero-clipped frequency vector (cached; treat as read-only).

        The synthesis plane's compiled-model assembly reads this directly
        so row recompilation is pure array gathering.
        """
        return self._clipped()

    # ------------------------------------------------------------------ #
    # derived distributions (Eq. 6)
    # ------------------------------------------------------------------ #
    def row_distribution(self, origin: int) -> tuple[np.ndarray, float]:
        """Movement probabilities out of ``origin`` plus the raw quit prob.

        Returns ``(move_probs, quit_prob)`` where ``move_probs`` aligns with
        :meth:`TransitionStateSpace.out_destinations` and
        ``move_probs.sum() + quit_prob == 1`` whenever the row has mass.  For
        a massless row the movement part is uniform and ``quit_prob`` is 0.
        """
        key = ("row", origin)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        f = self._clipped()
        out_idx = self.space.out_move_indices(origin)
        moves = f[out_idx]
        quit_mass = 0.0
        if self.space.include_eq:
            quit_mass = f[self.space.index_of_quit(origin)]
        denom = moves.sum() + quit_mass
        if denom <= 0.0:
            probs = np.full(out_idx.size, 1.0 / out_idx.size)
            result = (probs, 0.0)
        else:
            result = (moves / denom, float(quit_mass / denom))
        self._cache[key] = result
        return result

    def movement_probs(self, origin: int) -> np.ndarray:
        """``Pr(m_ij)`` over destinations of ``origin`` (Eq. 6, first line)."""
        return self.row_distribution(origin)[0]

    def quit_prob(self, origin: int) -> float:
        """Raw (un-reweighted) ``Pr(quit | c_i)``; see Eq. 8 for reweighting."""
        return self.row_distribution(origin)[1]

    def enter_distribution(self) -> np.ndarray:
        """``Pr(e_i)`` over all cells (Eq. 6, second line).

        Falls back to uniform when the entering states carry no mass so the
        synthesizer can always seed new streams.
        """
        cached = self._cache.get("enter")
        if cached is None:
            f = self._clipped()[self.space.enter_indices]
            total = f.sum()
            cached = f / total if total > 0 else np.full(f.size, 1.0 / f.size)
            self._cache["enter"] = cached
        return cached

    def quit_distribution(self) -> np.ndarray:
        """``Pr(q_j)`` over all cells (Eq. 6, second line)."""
        cached = self._cache.get("quit")
        if cached is None:
            f = self._clipped()[self.space.quit_indices]
            total = f.sum()
            cached = f / total if total > 0 else np.full(f.size, 1.0 / f.size)
            self._cache["quit"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # matrix views (used by metrics and reports)
    # ------------------------------------------------------------------ #
    def transition_matrix(self) -> np.ndarray:
        """Dense ``|C| x |C|`` first-order Markov matrix (zero off-domain).

        Rows are origins; each row sums to ``1 − Pr(quit | origin)`` for
        rows with mass (the missing mass is the termination probability).
        Assembled over the space's padded row structure in one shot — no
        per-origin loop (``tests/core/test_mobility_model.py`` pins it to
        the :meth:`row_distribution` reference).
        """
        space = self.space
        n = space.n_cells
        out_pad, dest_pad, deg = space.padded_out_structure()
        width = out_pad.shape[1]
        mask = np.arange(width) < deg[:, None]
        f = self._clipped()
        moves = f[out_pad] * mask
        quit_mass = f[space.quit_indices] if space.include_eq else np.zeros(n)
        denom = moves.sum(axis=1) + quit_mass
        has_mass = denom > 0.0
        probs = np.where(
            has_mass[:, None],
            moves / np.where(has_mass, denom, 1.0)[:, None],
            mask / deg[:, None],
        )
        mat = np.zeros((n, n), dtype=float)
        mat[np.repeat(np.arange(n), deg), dest_pad[mask]] = probs[mask]
        return mat
