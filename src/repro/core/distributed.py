"""Distributed shard plane: per-shard worker services over binary sockets.

The process executor of :class:`~repro.core.sharded.ShardedOnlineRetraSyn`
ships each round's partitions through ``multiprocessing`` pipes — pickled
tuples, with every privacy spend still executed by the parent.  This module
promotes each collection shard to a *service*: a worker process speaking
the versioned RSF2 frame protocol (:mod:`repro.api.schema`) over a local
``socketpair``, owning its partition's

* :class:`~repro.core.sharded.CollectionShard` (tracker + frequency
  oracle + optional DMU support mask), and
* a **shard-local privacy accountant** — per-shard spends and strict
  refusals never round-trip through the parent.

The coordinator side is :class:`ShardSocketPool`, a drop-in replacement
for the pipe pool with two extra verbs (``submit`` and ``stats``) and the
same merge contract: per-shard one-counts come back as raw ``float64``
columns and are summed and debiased once by the parent, exactly as the
in-process executors do.

Shard RPC (all messages are v2 binary frames; see ``docs/API.md``):

====================  ===================================================
``shard-submit``      One partition of a timestamp's traffic (the five
                      report columns).  The worker stages it and acks
                      with its partition's minimum remaining window
                      budget (when asked), which is all the per-user
                      budget allocator needs from the whole batch.
``shard-advance``     ``(t, rate, eps)`` — run the staged round:
                      selection, perturbation, tracker bookkeeping and
                      the shard-local budget spend.
``shard-merge``       The advance reply: raw one-counts, reporter ids,
                      user-side seconds, optional DMU support mask.
``shard-checkpoint``  Serialize (``op="get"``) or restore (``op="set"``)
                      the shard's full state — tracker, rng, ledger — as
                      an opaque pickle ``blob`` column.  Trusted local
                      transport only; never accepted from an ingress.
``shard-stats``       The shard ledger's audit summary and violations.
``shard-exit``        Orderly shutdown.
====================  ===================================================

Why the output is bit-identical to the in-process executors: the parent
draws the same per-shard seeds, each worker's :class:`CollectionShard`
consumes its rng in exactly the same sequence as the serial executor's
shard object, and accountant operations never touch any rng.  Moving the
spend into the worker changes *where* the ledger rows live, not a single
random draw — and because the hash partition is a disjoint cover of the
user population, per-user window totals (and therefore audit verdicts and
``adaptive-user`` budget proposals, which reduce to a batch-wide min) are
identical to the parent-ledger layout.  The one observable difference is
post-refusal ledger state: a strict refusal aborts the parent ledger
mid-batch, while shard ledgers beyond the offending shard still record
their rounds — the refusal itself (type, first offending shard) matches.

Dead workers are detected on every send/recv: a broken or EOF'd channel
raises :class:`~repro.exceptions.ShardWorkerError` naming the shard and
its exit code instead of hanging the coordinator.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import socket
import struct
import time
from typing import Optional, Sequence

import numpy as np

from repro.api import schema
from repro.exceptions import (
    ConfigurationError,
    PrivacyBudgetError,
    ShardWorkerError,
)
from repro.geo.grid import Grid
from repro.ldp.accountant import make_accountant
from repro.stream.reports import ReportBatch

_PREFIX = struct.Struct("<II")
_PREFIX_LEN = len(schema.FRAME_MAGIC) + _PREFIX.size


# ---------------------------------------------------------------------- #
# socket framing
# ---------------------------------------------------------------------- #
def _recv_exact(sock: socket.socket, n: int, allow_eof: bool = False):
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a boundary."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if allow_eof and not buf:
                return None
            raise ConnectionError(
                f"peer closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf += chunk
    return bytes(buf)


def send_frame(sock: socket.socket, msg: dict) -> int:
    """Serialize one v2 frame and write it fully; returns bytes sent.

    The frame's segments — length prefix + JSON header, then each raw
    column buffer — go out through one vectored ``sendmsg`` instead of
    being copied into a contiguous bytes object first, so a megabyte
    round's columns are never materialised twice on the send path.
    """
    parts = [memoryview(p).cast("B") for p in schema.dump_frame_parts(msg)]
    total = sum(p.nbytes for p in parts)
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - platforms without sendmsg
        sock.sendall(b"".join(parts))
        return total
    while parts:
        sent = sendmsg(parts)
        while parts and sent >= parts[0].nbytes:
            sent -= parts[0].nbytes
            parts.pop(0)
        if parts and sent:
            parts[0] = parts[0][sent:]
    return total


def recv_frame_sized(sock: socket.socket) -> tuple[Optional[dict], int]:
    """:func:`recv_frame` plus the frame's on-wire byte count."""
    prefix = _recv_exact(sock, _PREFIX_LEN, allow_eof=True)
    if prefix is None:
        return None, 0
    if prefix[: len(schema.FRAME_MAGIC)] != schema.FRAME_MAGIC:
        raise schema.SchemaError("not a binary frame (bad magic)")
    header_len, payload_len = _PREFIX.unpack(prefix[len(schema.FRAME_MAGIC):])
    body = _recv_exact(sock, header_len + payload_len)
    msg, _end = schema.load_frame(prefix + body)
    return msg, len(prefix) + len(body)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one length-prefixed frame; ``None`` when the peer closed.

    Raises :class:`ConnectionError` on a mid-frame EOF and
    :class:`~repro.api.schema.SchemaError` on malformed framing.
    """
    msg, _nbytes = recv_frame_sized(sock)
    return msg


# ---------------------------------------------------------------------- #
# the worker service
# ---------------------------------------------------------------------- #
class _ShardService:
    """One worker's state machine: a shard plus its local privacy ledger."""

    def __init__(self, grid: Grid, config, seed: int) -> None:
        from repro.core.sharded import CollectionShard

        self.config = config
        self.shard = CollectionShard(grid, config, seed)
        self.accountant = (
            make_accountant(
                config.epsilon,
                config.w,
                mode=getattr(config, "accountant_mode", "columnar"),
            )
            if getattr(config, "track_privacy", True)
            else None
        )
        # Staged rounds keyed by timestamp: a fused shard-submit-many may
        # park several consecutive rounds before their advances arrive.
        self._staged: dict[int, tuple] = {}

    def handle(self, msg: dict) -> dict:
        type_ = msg["type"]
        if type_ == "shard-submit":
            return self._submit(msg)
        if type_ == "shard-advance":
            return self._advance(msg)
        if type_ == "shard-submit-many":
            return self._submit_many(msg)
        if type_ == "shard-advance-many":
            return self._advance_many(msg)
        if type_ == "shard-checkpoint":
            return self._checkpoint(msg)
        if type_ == "shard-stats":
            return self._stats()
        raise ConfigurationError(f"unexpected shard-RPC message {type_!r}")

    def _submit(self, msg: dict) -> dict:
        t = int(msg["t"])
        batch = ReportBatch(
            np.asarray(msg["user_ids"]),
            np.asarray(msg["state_idx"]),
            np.asarray(msg["kinds"]),
        )
        entered = np.asarray(msg["newly_entered"])
        quitted = np.asarray(msg["quitted"])
        self._staged[t] = (batch, entered, quitted)
        min_remaining = None
        if msg.get("want_remaining") and self.accountant is not None and len(batch):
            min_remaining = float(
                np.min(self.accountant.remaining_many(batch.user_ids, t))
            )
        return schema.message("ack", t=t, min_remaining=min_remaining)

    def _submit_many(self, msg: dict) -> dict:
        """Stage several consecutive rounds carried by one fused frame.

        The frame flattens every round's five report columns back to back;
        the header's per-timestamp counts recover the slices.  Per-user
        budget consultation has no fused form (the coordinator needs each
        round's minimum *after* the previous round's spends), so
        ``want_remaining`` is rejected here — adaptive-user configurations
        stay on the per-timestamp verbs.
        """
        if msg.get("want_remaining"):
            raise ConfigurationError(
                "shard-submit-many does not support want_remaining; "
                "per-user budget consultation requires per-timestamp rounds"
            )
        ts = [int(t) for t in msg["ts"]]
        counts = [int(c) for c in msg["counts"]]
        e_counts = [int(c) for c in msg["entered_counts"]]
        q_counts = [int(c) for c in msg["quitted_counts"]]
        if not (len(ts) == len(counts) == len(e_counts) == len(q_counts)):
            raise ConfigurationError(
                "shard-submit-many header lists disagree on length"
            )
        uids = np.asarray(msg["user_ids"])
        states = np.asarray(msg["state_idx"])
        kinds = np.asarray(msg["kinds"])
        entered = np.asarray(msg["newly_entered"])
        quitted = np.asarray(msg["quitted"])
        pos = e_pos = q_pos = 0
        for i, t in enumerate(ts):
            n, ne, nq = counts[i], e_counts[i], q_counts[i]
            batch = ReportBatch(
                uids[pos : pos + n],
                states[pos : pos + n],
                kinds[pos : pos + n],
            )
            self._staged[t] = (
                batch,
                entered[e_pos : e_pos + ne],
                quitted[q_pos : q_pos + nq],
            )
            pos, e_pos, q_pos = pos + n, e_pos + ne, q_pos + nq
        return schema.message("ack", ts=ts)

    def _run_round(self, t: int, rate: Optional[float], eps: float):
        """Advance one staged round; shared by both advance verbs."""
        staged = self._staged.pop(t, None)
        if staged is None:
            raise ConfigurationError(
                f"shard-advance for t={t} without a matching shard-submit"
            )
        batch, entered, quitted = staged
        tic = time.perf_counter()
        ones, uids, user_seconds, support = self.shard.round_batch(
            t, batch, entered, quitted, rate, eps
        )
        # The shard-local spend: same uids, same eps, same round — only
        # the ledger's location differs from the parent-accounted pools.
        if self.accountant is not None and uids.size:
            self.accountant.spend_many(uids, t, eps)
        return ones, uids, user_seconds, time.perf_counter() - tic, support

    def _advance(self, msg: dict) -> dict:
        t = int(msg["t"])
        rate = msg.get("rate")
        rate = None if rate is None else float(rate)
        ones, uids, user_seconds, round_seconds, support = self._run_round(
            t, rate, float(msg["eps"])
        )
        reply = {
            "t": t,
            "n": int(uids.size),
            "user_seconds": float(user_seconds),
            # Wall-clock of the shard's whole round (selection, oracle,
            # ledger spend) — scraped as the per-shard /metrics gauge.
            "round_seconds": float(round_seconds),
            "has_support": support is not None,
            "ones": np.asarray(ones, dtype=np.float64),
            "user_ids": np.asarray(uids, dtype=np.int64),
        }
        if support is not None:
            reply["support"] = np.asarray(support, dtype=np.int8)
        return schema.message("shard-merge", **reply)

    def _advance_many(self, msg: dict) -> dict:
        """Run several staged rounds in timestamp order; one merged reply.

        Rounds execute strictly in the order the header lists them — the
        same shard-object call sequence the per-timestamp protocol makes —
        so every rng draw and ledger row is identical to depth 1.
        """
        ts = [int(t) for t in msg["ts"]]
        rates = msg["rates"]
        epss = msg["eps"]
        if not (len(ts) == len(rates) == len(epss)):
            raise ConfigurationError(
                "shard-advance-many header lists disagree on length"
            )
        ones_parts: list[np.ndarray] = []
        uid_parts: list[np.ndarray] = []
        support_parts: list[np.ndarray] = []
        ns: list[int] = []
        user_secs: list[float] = []
        round_secs: list[float] = []
        has_support: list[bool] = []
        for t, rate, eps in zip(ts, rates, epss):
            rate = None if rate is None else float(rate)
            ones, uids, user_seconds, dt, support = self._run_round(
                t, rate, float(eps)
            )
            ones_parts.append(np.asarray(ones, dtype=np.float64))
            uid_parts.append(np.asarray(uids, dtype=np.int64))
            ns.append(int(uids.size))
            user_secs.append(float(user_seconds))
            round_secs.append(float(dt))
            has_support.append(support is not None)
            if support is not None:
                support_parts.append(np.asarray(support, dtype=np.int8))
        reply = {
            "ts": ts,
            "ns": ns,
            "user_seconds": user_secs,
            "round_seconds": round_secs,
            "has_support": has_support,
            "ones_len": int(ones_parts[0].size) if ones_parts else 0,
            "ones": (
                np.concatenate(ones_parts)
                if ones_parts
                else np.empty(0, dtype=np.float64)
            ),
            "user_ids": (
                np.concatenate(uid_parts)
                if uid_parts
                else np.empty(0, dtype=np.int64)
            ),
        }
        if support_parts:
            reply["support"] = np.concatenate(support_parts)
        return schema.message("shard-merge-many", **reply)

    def _checkpoint(self, msg: dict) -> dict:
        if msg.get("op") == "get":
            blob = pickle.dumps(
                (self.shard, self.accountant), protocol=pickle.HIGHEST_PROTOCOL
            )
            return schema.message(
                "shard-checkpoint", op="state",
                blob=np.frombuffer(blob, dtype=np.uint8),
            )
        if msg.get("op") == "set":
            self.shard, self.accountant = pickle.loads(
                np.asarray(msg["blob"]).tobytes()
            )
            self._staged = {}
            return schema.message("ack")
        raise ConfigurationError(
            f"shard-checkpoint op must be 'get' or 'set', got {msg.get('op')!r}"
        )

    def _stats(self) -> dict:
        summary = violations = None
        if self.accountant is not None:
            s = self.accountant.summary()
            # Frame headers are JSON: strip numpy scalar types.
            summary = {
                "epsilon": float(s["epsilon"]),
                "w": int(s["w"]),
                "n_users": int(s["n_users"]),
                "max_window_spend": float(s["max_window_spend"]),
                "n_violations": int(s["n_violations"]),
                "satisfied": bool(s["satisfied"]),
                # Operational counters ride alongside the audit summary so
                # the merged view can expose spend/refusal totals without
                # changing the pinned summary() keys.
                "n_spend_events": int(
                    getattr(self.accountant, "n_spend_events", 0)
                ),
                "n_refusals": int(getattr(self.accountant, "n_refusals", 0)),
            }
            violations = [
                [int(uid), int(t), float(total)]
                for uid, t, total in self.accountant.violations
            ]
        return schema.message(
            "shard-stats", summary=summary, violations=violations
        )


def _socket_shard_worker(sock: socket.socket, grid: Grid, config, seed: int) -> None:
    """Worker main loop: answer shard-RPC frames until exit or EOF."""
    service = _ShardService(grid, config, seed)
    try:
        while True:
            try:
                msg = recv_frame(sock)
            except (ConnectionError, OSError, schema.SchemaError):
                return
            if msg is None or msg["type"] == "shard-exit":
                return
            try:
                reply = service.handle(msg)
            except Exception as exc:
                reply = schema.error_message(exc)
            try:
                send_frame(sock, reply)
            except OSError:
                return
    finally:
        sock.close()


# ---------------------------------------------------------------------- #
# the coordinator-side pool
# ---------------------------------------------------------------------- #
class ShardSocketPool:
    """Persistent shard worker services, one socket per shard.

    Mirrors :class:`~repro.core.sharded.ShardWorkerPool`'s lifecycle
    surface (``get_states`` / ``set_states`` / ``close``) and replaces
    ``run_rounds`` with the two-phase ``submit`` / ``advance`` protocol,
    so the budget proposal can consult the shard-local ledgers between
    the phases.  All traffic is RSF2 binary frames: the round's columns
    move as raw little-endian buffers, never as pickles.
    """

    def __init__(
        self,
        grid: Grid,
        config,
        seeds: Sequence[int],
        round_timeout: Optional[float] = None,
    ) -> None:
        if round_timeout is None:
            round_timeout = float(
                getattr(config, "shard_round_timeout", 60.0) or 0.0
            )
        # 0 = wait forever (socket timeout None); otherwise every blocking
        # send/recv on a worker channel has a deadline, so a hung (stopped,
        # not dead) worker surfaces as a typed error instead of a freeze.
        self._round_timeout = round_timeout if round_timeout > 0 else None
        ctx = mp.get_context()
        self._procs: list = []
        self._socks: list[socket.socket] = []
        #: Last advance's per-shard wall-clock seconds (metrics surface).
        self.shard_round_seconds: dict[int, float] = {}
        #: Frame-level transport counters (scraped by /metrics).
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Optional callback observing each round-trip's wall seconds
        #: (submit/advance verbs, fused or not); the session binds it to
        #: a latency histogram's ``observe``.
        self.latency_observer = None
        # Reusable flat-column scratch of the fused submit path: one
        # buffer per wire column, grown geometrically, refilled per shard
        # instead of reallocating a concatenation every frame.
        self._scratch: dict[str, np.ndarray] = {}
        for seed in seeds:
            parent_sock, child_sock = socket.socketpair()
            proc = ctx.Process(
                target=_socket_shard_worker,
                args=(child_sock, grid, config, int(seed)),
                daemon=True,
            )
            proc.start()
            child_sock.close()
            parent_sock.settimeout(self._round_timeout)
            self._socks.append(parent_sock)
            self._procs.append(proc)

    def __len__(self) -> int:
        return len(self._socks)

    @property
    def alive(self) -> bool:
        return bool(self._socks)

    # -------------------------------------------------------------- #
    # channel plumbing with dead-worker detection
    # -------------------------------------------------------------- #
    def _dead(self, k: int, op: str) -> ShardWorkerError:
        proc = self._procs[k]
        proc.join(timeout=1.0)
        code = proc.exitcode
        return ShardWorkerError(
            f"collection shard {k} worker died during {op!r} "
            f"(exitcode {code})"
        )

    def _hung(self, k: int, op: str) -> ShardWorkerError:
        return ShardWorkerError(
            f"collection shard {k} worker did not answer {op!r} within "
            f"{self._round_timeout}s (process alive but unresponsive)"
        )

    def _send(self, k: int, msg: dict, op: str) -> None:
        try:
            self.bytes_sent += send_frame(self._socks[k], msg)
            self.frames_sent += 1
        except socket.timeout as exc:
            # Must precede OSError: socket.timeout is an OSError subclass,
            # and a stopped worker is a different diagnosis from a dead one.
            raise self._hung(k, op) from exc
        except OSError as exc:
            raise self._dead(k, op) from exc

    def _recv(self, k: int, op: str, expect: str) -> dict:
        try:
            msg, nbytes = recv_frame_sized(self._socks[k])
            self.bytes_received += nbytes
            if msg is not None:
                self.frames_received += 1
        except socket.timeout as exc:
            raise self._hung(k, op) from exc
        except (OSError, schema.SchemaError) as exc:
            raise self._dead(k, op) from exc
        if msg is None:
            raise self._dead(k, op)
        if msg["type"] == "error":
            raise self._worker_error(k, op, msg)
        if msg["type"] != expect:
            raise ShardWorkerError(
                f"collection shard {k}: expected a {expect!r} reply to "
                f"{op!r}, got {msg['type']!r}"
            )
        return msg

    @staticmethod
    def _worker_error(k: int, op: str, msg: dict) -> Exception:
        """Re-raise a worker-reported failure with its original type.

        Privacy refusals and configuration errors keep their classes so
        callers' ``except`` clauses behave exactly as with the in-process
        executors; anything else surfaces as the pools' usual
        ``RuntimeError`` with shard context.
        """
        error, detail = msg.get("error", "Exception"), msg.get("detail", "")
        if error == "PrivacyBudgetError":
            return PrivacyBudgetError(detail)
        if error == "ConfigurationError":
            return ConfigurationError(detail)
        return RuntimeError(
            f"collection shard {k} failed ({op}):\n{error}: {detail}"
        )

    # -------------------------------------------------------------- #
    # the round protocol
    # -------------------------------------------------------------- #
    def submit(
        self,
        t: int,
        parts: Sequence[ReportBatch],
        entered: Sequence[np.ndarray],
        quits: Sequence[np.ndarray],
        want_remaining: bool,
    ) -> Optional[float]:
        """Stage one timestamp's partitions on every shard.

        Returns the global minimum remaining window budget over all
        staged participants (``None`` when not requested or no shard has
        participants) — sufficient for ``adaptive-user`` proposals, which
        reduce the whole remaining vector to its minimum.
        """
        tic = time.perf_counter()
        for k in range(len(self._socks)):
            self._send(
                k,
                schema.message(
                    "shard-submit",
                    t=int(t),
                    want_remaining=bool(want_remaining),
                    user_ids=np.asarray(parts[k].user_ids),
                    state_idx=np.asarray(parts[k].state_idx),
                    kinds=np.asarray(parts[k].kinds),
                    newly_entered=np.asarray(entered[k]),
                    quitted=np.asarray(quits[k]),
                ),
                "submit",
            )
        mins = []
        for k in range(len(self._socks)):
            ack = self._recv(k, "submit", expect="ack")
            if ack.get("min_remaining") is not None:
                mins.append(float(ack["min_remaining"]))
        self._observe(time.perf_counter() - tic)
        return min(mins) if mins else None

    def advance(self, t: int, rate: Optional[float], eps: float) -> list:
        """Run the staged round everywhere; one merge tuple per shard.

        The tuples match ``ShardWorkerPool.run_rounds`` output —
        ``(ones, reporter_uids, user_seconds, support)`` — so the
        coordinator's merge code is shared across all executors.
        """
        tic = time.perf_counter()
        for k in range(len(self._socks)):
            self._send(
                k,
                schema.message(
                    "shard-advance",
                    t=int(t),
                    rate=None if rate is None else float(rate),
                    eps=float(eps),
                ),
                "advance",
            )
        outs = []
        for k in range(len(self._socks)):
            rep = self._recv(k, "advance", expect="shard-merge")
            self.shard_round_seconds[k] = float(rep.get("round_seconds", 0.0))
            support = (
                np.asarray(rep["support"], dtype=bool).copy()
                if rep.get("has_support")
                else None
            )
            outs.append(
                (
                    np.asarray(rep["ones"], dtype=np.float64),
                    np.asarray(rep["user_ids"], dtype=np.int64),
                    float(rep["user_seconds"]),
                    support,
                )
            )
        self._observe(time.perf_counter() - tic)
        return outs

    # -------------------------------------------------------------- #
    # the fused (multi-timestamp) round protocol
    # -------------------------------------------------------------- #
    def _observe(self, seconds: float) -> None:
        if self.latency_observer is not None:
            self.latency_observer(float(seconds))

    def _concat(self, name: str, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate into the reusable per-column scratch buffer.

        The returned view is only valid until the next ``_concat`` on the
        same column — safe here because each shard's frame is fully sent
        (blocking ``sendmsg``) before the next shard's is built.
        """
        dtype = schema._COLUMN_DTYPES[name]
        total = int(sum(a.size for a in arrays))
        buf = self._scratch.get(name)
        if buf is None or buf.size < total:
            grown = max(total, 1024, 2 * (buf.size if buf is not None else 0))
            buf = np.empty(grown, dtype=dtype)
            self._scratch[name] = buf
        out = buf[:total]
        pos = 0
        for a in arrays:
            out[pos : pos + a.size] = a
            pos += a.size
        return out

    def submit_many(self, items: Sequence[tuple]) -> None:
        """Stage several consecutive timestamps with one frame per shard.

        ``items`` holds ``(t, parts, entered, quits)`` tuples in timestamp
        order, each carrying the usual per-shard partitions.  There is no
        ``want_remaining`` form — per-user budget consultation needs each
        round's minimum after the previous round's spends, which only the
        per-timestamp protocol provides.
        """
        tic = time.perf_counter()
        ts = [int(t) for (t, _, _, _) in items]
        for k in range(len(self._socks)):
            parts = [item[1][k] for item in items]
            entered = [np.asarray(item[2][k]) for item in items]
            quits = [np.asarray(item[3][k]) for item in items]
            self._send(
                k,
                schema.message(
                    "shard-submit-many",
                    ts=ts,
                    counts=[len(p) for p in parts],
                    entered_counts=[int(e.size) for e in entered],
                    quitted_counts=[int(q.size) for q in quits],
                    user_ids=self._concat(
                        "user_ids", [p.user_ids for p in parts]
                    ),
                    state_idx=self._concat(
                        "state_idx", [p.state_idx for p in parts]
                    ),
                    kinds=self._concat("kinds", [p.kinds for p in parts]),
                    newly_entered=self._concat("newly_entered", entered),
                    quitted=self._concat("quitted", quits),
                ),
                "submit-many",
            )
        for k in range(len(self._socks)):
            self._recv(k, "submit-many", expect="ack")
        self._observe(time.perf_counter() - tic)

    def advance_many(
        self,
        ts: Sequence[int],
        rates: Sequence[Optional[float]],
        epss: Sequence[float],
    ) -> list[list[tuple]]:
        """Run the staged rounds everywhere with one round-trip per shard.

        Returns one merge-tuple list per *timestamp* (in ``ts`` order),
        each holding the per-shard ``(ones, reporter_uids, user_seconds,
        support)`` tuples the shared merge code consumes.
        """
        tic = time.perf_counter()
        for k in range(len(self._socks)):
            self._send(
                k,
                schema.message(
                    "shard-advance-many",
                    ts=[int(t) for t in ts],
                    rates=[None if r is None else float(r) for r in rates],
                    eps=[float(e) for e in epss],
                ),
                "advance-many",
            )
        outs: list[list[tuple]] = [[] for _ in ts]
        for k in range(len(self._socks)):
            rep = self._recv(k, "advance-many", expect="shard-merge-many")
            ns = [int(n) for n in rep["ns"]]
            user_secs = [float(s) for s in rep["user_seconds"]]
            round_secs = [float(s) for s in rep["round_seconds"]]
            has_support = [bool(h) for h in rep["has_support"]]
            width = int(rep["ones_len"])
            ones_all = np.asarray(rep["ones"], dtype=np.float64)
            uids_all = np.asarray(rep["user_ids"], dtype=np.int64)
            support_all = (
                np.asarray(rep["support"], dtype=np.int8)
                if any(has_support)
                else None
            )
            self.shard_round_seconds[k] = float(sum(round_secs))
            uid_off = sup_off = 0
            for i in range(len(ts)):
                support = None
                if has_support[i]:
                    support = np.asarray(
                        support_all[sup_off : sup_off + width], dtype=bool
                    ).copy()
                    sup_off += width
                outs[i].append(
                    (
                        ones_all[i * width : (i + 1) * width],
                        uids_all[uid_off : uid_off + ns[i]],
                        user_secs[i],
                        support,
                    )
                )
                uid_off += ns[i]
        self._observe(time.perf_counter() - tic)
        return outs

    # -------------------------------------------------------------- #
    # checkpoint / audit verbs
    # -------------------------------------------------------------- #
    def get_states(self) -> list:
        """Fetch every shard's ``(CollectionShard, accountant)`` state."""
        for k in range(len(self._socks)):
            self._send(
                k, schema.message("shard-checkpoint", op="get"), "checkpoint"
            )
        states = []
        for k in range(len(self._socks)):
            rep = self._recv(k, "checkpoint", expect="shard-checkpoint")
            states.append(pickle.loads(np.asarray(rep["blob"]).tobytes()))
        return states

    def set_states(self, states: Sequence) -> None:
        """Ship ``(CollectionShard, accountant)`` states back to workers."""
        for k in range(len(self._socks)):
            blob = pickle.dumps(states[k], protocol=pickle.HIGHEST_PROTOCOL)
            self._send(
                k,
                schema.message(
                    "shard-checkpoint", op="set",
                    blob=np.frombuffer(blob, dtype=np.uint8),
                ),
                "checkpoint",
            )
        for k in range(len(self._socks)):
            self._recv(k, "checkpoint", expect="ack")

    def stats(self) -> list[dict]:
        """Per-shard ledger summaries (``summary`` + ``violations``)."""
        for k in range(len(self._socks)):
            self._send(k, schema.message("shard-stats"), "stats")
        return [
            {
                "summary": rep.get("summary"),
                "violations": [
                    tuple(v) for v in (rep.get("violations") or [])
                ],
            }
            for rep in (
                self._recv(k, "stats", expect="shard-stats")
                for k in range(len(self._socks))
            )
        ]

    def close(self) -> None:
        for sock in self._socks:
            try:
                send_frame(sock, schema.message("shard-exit"))
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._socks, self._procs = [], []


# ---------------------------------------------------------------------- #
# the parent-side accountant façade
# ---------------------------------------------------------------------- #
class DistributedAccountantView:
    """Read-only merged view over the shard-local privacy ledgers.

    Bound as the distributed engine's ``accountant`` so every audit
    surface — ``stats()`` privacy blocks, ``SynthesisRun.accountant``,
    the CLI audit exit code — works unchanged.  Queries go to the live
    workers while the pool is open; the engine caches final summaries at
    ``close()`` so a finished run stays auditable.  Shard populations
    are disjoint (hash partition), so the merge is exact: user counts
    add, window maxima take the max, verdicts AND together.
    """

    def __init__(self, engine=None, frozen: Optional[list] = None) -> None:
        self._engine = engine
        self._frozen = frozen

    # -------------------------------------------------------------- #
    def _shard_stats(self) -> list[dict]:
        eng = self._engine
        if eng is not None:
            pool = getattr(eng, "_pool", None)
            if pool is not None and getattr(pool, "alive", False):
                stats = pool.stats()
                self._frozen = stats
                return stats
            final = getattr(eng, "_final_summaries", None)
            if final is not None:
                return final
        if self._frozen is not None:
            return self._frozen
        raise ShardWorkerError(
            "shard ledgers unreachable: the worker pool is closed and no "
            "final summary was cached"
        )

    @property
    def epsilon(self) -> float:
        stats = self._shard_stats()
        for entry in stats:
            if entry.get("summary"):
                return float(entry["summary"]["epsilon"])
        return 0.0

    @property
    def w(self) -> int:
        stats = self._shard_stats()
        for entry in stats:
            if entry.get("summary"):
                return int(entry["summary"]["w"])
        return 0

    def summary(self) -> dict:
        stats = self._shard_stats()
        summaries = [e["summary"] for e in stats if e.get("summary")]
        if not summaries:
            return {
                "epsilon": 0.0, "w": 0, "n_users": 0,
                "max_window_spend": 0.0, "n_violations": 0, "satisfied": True,
            }
        return {
            "epsilon": float(summaries[0]["epsilon"]),
            "w": int(summaries[0]["w"]),
            "n_users": int(sum(s["n_users"] for s in summaries)),
            "max_window_spend": float(
                max(s["max_window_spend"] for s in summaries)
            ),
            "n_violations": int(sum(s["n_violations"] for s in summaries)),
            "satisfied": bool(all(s["satisfied"] for s in summaries)),
        }

    def max_window_spend(self) -> float:
        return self.summary()["max_window_spend"]

    # Operational counters (the /metrics surface; not part of summary(),
    # whose key set is pinned equal across engines by the audit tests).
    def _counter(self, key: str) -> int:
        return int(
            sum(
                (e.get("summary") or {}).get(key, 0)
                for e in self._shard_stats()
            )
        )

    @property
    def n_spend_events(self) -> int:
        return self._counter("n_spend_events")

    @property
    def n_refusals(self) -> int:
        return self._counter("n_refusals")

    @property
    def n_users(self) -> int:
        return self.summary()["n_users"]

    @property
    def violations(self) -> list[tuple]:
        return [
            tuple(v)
            for entry in self._shard_stats()
            for v in (entry.get("violations") or [])
        ]

    def verify(self) -> bool:
        """Whether every shard's ledger satisfied the w-event bound."""
        return self.summary()["satisfied"]

    # -------------------------------------------------------------- #
    # pickling: checkpoints freeze the current summaries; the engine
    # re-binds a live view on restore.
    # -------------------------------------------------------------- #
    def __getstate__(self) -> dict:
        frozen = self._frozen
        if self._engine is not None:
            try:
                frozen = self._shard_stats()
            except Exception:  # pragma: no cover - defensive
                pass
        return {"_engine": None, "_frozen": frozen}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
